//! Superblock formation: profile-driven trace selection, tail duplication,
//! and trace merging (paper §2.1; Chang/Hwu-style, as in IMPACT).
//!
//! Starting from a function of (typically basic) blocks and an execution
//! [`crate::profile::Profile`] of it, formation repeatedly
//!
//! 1. seeds a trace at the hottest unvisited block,
//! 2. grows it along the most likely successor edges,
//! 3. removes *side entrances* into the trace by duplicating the trace
//!    suffix for external predecessors (tail duplication), and
//! 4. merges the trace into a single superblock-shaped block: one entry at
//!    the top, side-exit branches inside, fall-through (or explicit jump)
//!    at the bottom.
//!
//! The result is a function whose hot code consists of superblocks ready
//! for sentinel scheduling.

use std::collections::{HashMap, HashSet};

use sentinel_isa::{BlockId, Insn, InsnId, Opcode};

use crate::profile::Profile;
use crate::Function;

/// Tuning parameters for superblock formation.
#[derive(Debug, Clone)]
pub struct SuperblockConfig {
    /// Minimum probability for a successor edge to extend a trace.
    pub threshold: f64,
    /// Blocks entered fewer times than this are never trace seeds.
    pub min_seed_weight: u64,
    /// Maximum trace length in blocks.
    pub max_trace_len: usize,
}

impl Default for SuperblockConfig {
    fn default() -> Self {
        SuperblockConfig {
            threshold: 0.7,
            min_seed_weight: 1,
            max_trace_len: 64,
        }
    }
}

/// How a trace link leaves the predecessor block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LinkKind {
    /// Via the block's layout fall-through.
    FallThrough,
    /// Via the taken edge of the block's *last* instruction (conditional
    /// branch or jump).
    TakenLast,
}

/// Outcome of superblock formation.
#[derive(Debug, Clone, Default)]
pub struct FormationResult {
    /// Ids of the merged superblocks (heads of the original traces).
    pub superblocks: Vec<BlockId>,
    /// Number of blocks created by tail duplication.
    pub duplicated_blocks: usize,
}

/// Estimated execution count of the edge `from → to`.
///
/// Branch edges use the branch's taken count; the fall-through edge gets
/// the remainder of the block's entry count after all taken side exits.
fn edge_count(func: &Function, profile: &Profile, from: BlockId, to: BlockId) -> u64 {
    let block = func.block(from);
    let mut taken_total = 0u64;
    let mut count = 0u64;
    for insn in &block.insns {
        if let Some(t) = insn.target {
            let taken = profile.branch_taken.get(&insn.id).copied().unwrap_or(0);
            taken_total += taken;
            if t == to {
                count += taken;
            }
        }
    }
    if !block.ends_in_unconditional() && func.fallthrough_of(from) == Some(to) {
        count += profile.entries(from).saturating_sub(taken_total);
    }
    count
}

/// Picks the best (most likely) trace extension from `from`.
fn best_successor(
    func: &Function,
    profile: &Profile,
    from: BlockId,
    cfg: &SuperblockConfig,
) -> Option<(BlockId, LinkKind, f64)> {
    let entries = profile.entries(from);
    if entries == 0 {
        return None;
    }
    let block = func.block(from);
    let mut best: Option<(BlockId, LinkKind, u64)> = None;
    let mut consider = |to: BlockId, kind: LinkKind, count: u64| {
        if count == 0 {
            return;
        }
        if best.is_none_or(|(_, _, c)| count > c) {
            best = Some((to, kind, count));
        }
    };
    if let Some(last) = block.insns.last() {
        if let Some(t) = last.target {
            consider(t, LinkKind::TakenLast, edge_count(func, profile, from, t));
        }
    }
    if !block.ends_in_unconditional() {
        if let Some(ft) = func.fallthrough_of(from) {
            consider(
                ft,
                LinkKind::FallThrough,
                edge_count(func, profile, from, ft),
            );
        }
    }
    let (to, kind, count) = best?;
    let prob = count as f64 / entries as f64;
    (prob >= cfg.threshold).then_some((to, kind, prob))
}

/// Grows a trace from `seed`, returning the trace blocks and the link kind
/// used to reach each non-head block.
fn grow_trace(
    func: &Function,
    profile: &Profile,
    seed: BlockId,
    visited: &HashSet<BlockId>,
    cfg: &SuperblockConfig,
) -> (Vec<BlockId>, Vec<LinkKind>) {
    let mut trace = vec![seed];
    let mut links = Vec::new();
    let mut in_trace: HashSet<BlockId> = HashSet::from([seed]);
    while trace.len() < cfg.max_trace_len {
        let tail = *trace.last().unwrap();
        let Some((next, kind, _)) = best_successor(func, profile, tail, cfg) else {
            break;
        };
        if visited.contains(&next) || in_trace.contains(&next) {
            break;
        }
        // A later merge removes `next` as a standalone block, so nothing in
        // the trace so far (other than `tail`'s terminator for a taken
        // link) may branch to it.
        let internal_ref = trace.iter().any(|&b| {
            func.block(b).insns.iter().enumerate().any(|(pos, i)| {
                if i.target != Some(next) {
                    return false;
                }
                // Allow exactly the link edge itself.
                !(b == tail && kind == LinkKind::TakenLast && pos + 1 == func.block(b).insns.len())
            })
        });
        if internal_ref {
            break;
        }
        // `next` must not branch back into the middle of the trace.
        let back_ref = func
            .block(next)
            .branch_targets()
            .any(|t| t != trace[0] && in_trace.contains(&t));
        if back_ref {
            break;
        }
        in_trace.insert(next);
        trace.push(next);
        links.push(kind);
    }
    (trace, links)
}

/// Removes side entrances into `trace[1..]` by duplicating the trace
/// suffix starting at the first block with external predecessors.
///
/// Returns the number of blocks created.
fn tail_duplicate(func: &mut Function, trace: &[BlockId], links: &[LinkKind]) -> usize {
    // Find the first position i >= 1 whose block has an entry other than
    // the trace link from trace[i-1].
    let in_trace: HashSet<BlockId> = trace.iter().copied().collect();
    let mut first_side_entrance: Option<usize> = None;
    'outer: for (i, &b) in trace.iter().enumerate().skip(1) {
        let link_pred = trace[i - 1];
        let link_kind = links[i - 1];
        // Branch edges into b:
        for p in func.blocks() {
            if !func.in_layout(p.id) {
                continue;
            }
            for (pos, insn) in p.insns.iter().enumerate() {
                if insn.target == Some(b) {
                    let is_link = p.id == link_pred
                        && link_kind == LinkKind::TakenLast
                        && pos + 1 == p.insns.len();
                    if !is_link {
                        first_side_entrance = Some(i);
                        break 'outer;
                    }
                }
            }
            // Fall-through edges into b:
            if !p.ends_in_unconditional() && func.fallthrough_of(p.id) == Some(b) {
                let is_link = p.id == link_pred && link_kind == LinkKind::FallThrough;
                if !is_link && !in_trace.contains(&p.id) {
                    first_side_entrance = Some(i);
                    break 'outer;
                }
                if !is_link && in_trace.contains(&p.id) {
                    // A non-link fall-through from inside the trace: layout
                    // coincidence (p precedes b in layout but the trace
                    // reached b differently). Treat as a side entrance.
                    first_side_entrance = Some(i);
                    break 'outer;
                }
            }
        }
    }
    let Some(start) = first_side_entrance else {
        return 0;
    };

    // Duplicate trace[start..] with fresh ids; remap intra-suffix targets.
    let suffix: Vec<BlockId> = trace[start..].to_vec();
    let mut copy_of: HashMap<BlockId, BlockId> = HashMap::new();
    for &b in &suffix {
        let label = format!("{}.dup", func.block(b).label);
        let c = func.add_block(label);
        copy_of.insert(b, c);
    }
    for (&orig, &copy) in &copy_of.clone() {
        let insns: Vec<Insn> = func.block(orig).insns.clone();
        let needs_tail_jump = {
            let last_falls = !func.block(orig).ends_in_unconditional();
            last_falls
        };
        let ft = func.fallthrough_of(orig);
        for mut insn in insns {
            if let Some(t) = insn.target {
                if let Some(&c) = copy_of.get(&t) {
                    insn.target = Some(c);
                }
            }
            func.push_insn(copy, insn);
        }
        // The copy sits at the end of the layout, so the original's
        // fall-through must become explicit.
        if needs_tail_jump {
            if let Some(ft) = ft {
                let t = copy_of.get(&ft).copied().unwrap_or(ft);
                func.push_insn(copy, Insn::jump(t));
            }
        }
    }

    // Retarget every external entry into the suffix toward the copies.
    let all_ids: Vec<BlockId> = func.blocks().map(|b| b.id).collect();
    for p in all_ids {
        if !func.in_layout(p) || copy_of.values().any(|&c| c == p) {
            continue;
        }
        let p_pos_in_trace = trace.iter().position(|&t| t == p);
        // Branch retargeting.
        let n = func.block(p).insns.len();
        for pos in 0..n {
            let target = func.block(p).insns[pos].target;
            let Some(t) = target else { continue };
            let Some(idx) = suffix.iter().position(|&s| s == t) else {
                continue;
            };
            let j = start + idx;
            let is_link = p_pos_in_trace == Some(j - 1)
                && links[j - 1] == LinkKind::TakenLast
                && pos + 1 == n;
            if !is_link {
                let c = copy_of[&t];
                func.block_mut(p).insns[pos].target = Some(c);
            }
        }
        // Fall-through retargeting: append an explicit jump to the copy.
        if !func.block(p).ends_in_unconditional() {
            if let Some(ft) = func.fallthrough_of(p) {
                if let Some(idx) = suffix.iter().position(|&s| s == ft) {
                    let j = start + idx;
                    let is_link =
                        p_pos_in_trace == Some(j - 1) && links[j - 1] == LinkKind::FallThrough;
                    if !is_link {
                        let c = copy_of[&ft];
                        func.push_insn(p, Insn::jump(c));
                    }
                }
            }
        }
    }
    suffix.len()
}

/// Merges a (side-entrance-free) trace into its head block.
fn merge_trace(func: &mut Function, trace: &[BlockId], links: &[LinkKind]) {
    let head = trace[0];
    for (i, &b) in trace.iter().enumerate().skip(1) {
        let link = links[i - 1];
        // Fix up the terminator of the previous trace block, which now
        // falls into `b`'s instructions inside the superblock.
        let prev_last = func.block(head).insns.last().cloned();
        match link {
            LinkKind::FallThrough => {
                // Nothing to remove; the previous block simply fell through.
            }
            LinkKind::TakenLast => {
                let last = prev_last.expect("taken link implies a terminator");
                match last.op {
                    Opcode::Jump => {
                        // `jump b` becomes pure fall-through inside the
                        // superblock.
                        func.block_mut(head).insns.pop();
                    }
                    op if op.is_cond_branch() => {
                        // The branch is taken onto the trace; invert it so
                        // the trace becomes the fall-through path and the
                        // old fall-through becomes the side-exit target.
                        let prev_block = trace[i - 1];
                        let ft = func
                            .fallthrough_of(prev_block)
                            .expect("conditional trace link requires a fall-through");
                        let last_mut = func.block_mut(head).insns.last_mut().unwrap();
                        last_mut.op = invert_branch(last_mut.op);
                        last_mut.target = Some(ft);
                    }
                    _ => unreachable!("taken link from non-control terminator"),
                }
            }
        }
        // Splice `b`'s instructions into the head.
        let moved: Vec<Insn> = std::mem::take(&mut func.block_mut(b).insns);
        func.block_mut(head).insns.extend(moved);
    }
    // The merged block must not rely on layout adjacency for its final
    // fall-through (the old tail's layout successor may be far away).
    let tail = *trace.last().unwrap();
    if !func.block(head).ends_in_unconditional() {
        if let Some(ft) = func.fallthrough_of(tail) {
            let id = func.fresh_insn_id();
            func.block_mut(head).insns.push(Insn::jump(ft).with_id(id));
        }
    }
    // Remove the merged-away blocks from the layout.
    for &b in &trace[1..] {
        func.remove_from_layout(b);
    }
}

/// Splits every layout block into *basic blocks*: control-transfer
/// instructions only at block ends. The inverse-ish of formation, used to
/// measure how much of a superblock schedule's benefit formation recovers
/// from basic-block code (ablation A4) and by formation tests.
///
/// Instruction ids are preserved; semantics are identical (each split
/// point becomes a fall-through edge).
pub fn split_at_branches(func: &mut Function) {
    let mut work: Vec<BlockId> = func.layout().to_vec();
    let mut counter = 0usize;
    while let Some(bid) = work.pop() {
        let split_pos = {
            let insns = &func.block(bid).insns;
            (0..insns.len().saturating_sub(1)).find(|&p| insns[p].op.is_control())
        };
        let Some(p) = split_pos else { continue };
        let label = format!("{}.bb{}", func.block(bid).label, counter);
        counter += 1;
        let nb = func.add_block(label);
        func.remove_from_layout(nb);
        let moved: Vec<Insn> = func.block_mut(bid).insns.split_off(p + 1);
        func.block_mut(nb).insns = moved;
        func.insert_in_layout_after(bid, nb);
        // The new block may itself still contain internal branches.
        work.push(nb);
    }
}

/// Unrolls a self-looping superblock `factor` times, in place.
///
/// Superblock loop unrolling is how IMPACT exposed inter-iteration ILP to
/// the (acyclic) superblock scheduler: the body is replicated inside one
/// superblock, each intermediate latch becoming a rarely-taken side exit,
/// so speculation can hoist iteration *k+1*'s loads above iteration *k*'s
/// branches.
///
/// The block must end with `bne/beq cond, …, self` followed by an
/// unconditional `jump exit` (the shape the workload generator and
/// [`form_superblocks`] produce). Returns `true` if unrolling applied;
/// blocks of other shapes are left untouched.
///
/// The transformation is purely structural (each copy still evaluates the
/// latch condition), so it is correct for any trip count.
pub fn unroll_superblock_loop(func: &mut Function, block: BlockId, factor: usize) -> bool {
    if factor < 2 {
        return false;
    }
    let insns = func.block(block).insns.clone();
    let n = insns.len();
    if n < 2 {
        return false;
    }
    // Shape check: [... body ..., latch cond-branch -> self, jump exit].
    let latch = &insns[n - 2];
    let tail = &insns[n - 1];
    if !(latch.op.is_cond_branch() && latch.target == Some(block)) {
        return false;
    }
    if !(tail.op == Opcode::Jump) {
        return false;
    }
    let exit_target = tail.target.expect("jump target");

    let body: Vec<Insn> = insns[..n - 1].to_vec(); // includes the latch branch
    let mut new_insns: Vec<Insn> = Vec::with_capacity(body.len() * factor + 1);
    for copy in 0..factor {
        for insn in &body {
            let mut i = insn.clone();
            let is_latch = std::ptr::eq(insn, &body[body.len() - 1]);
            if is_latch && copy + 1 < factor {
                // Intermediate latch: exit when the loop would NOT
                // continue — invert the branch toward the exit.
                i.op = invert_branch(i.op);
                i.target = Some(exit_target);
            }
            // Final copy keeps the back edge to `block`.
            i.id = InsnId::UNASSIGNED;
            new_insns.push(i);
        }
    }
    new_insns.push(Insn::jump(exit_target));
    func.block_mut(block).insns.clear();
    for i in new_insns {
        func.push_insn(block, i);
    }
    true
}

/// Unrolls every self-looping superblock in the layout. Returns how many
/// loops were unrolled.
pub fn unroll_all_loops(func: &mut Function, factor: usize) -> usize {
    let blocks: Vec<BlockId> = func.layout().to_vec();
    blocks
        .into_iter()
        .filter(|&b| unroll_superblock_loop(func, b, factor))
        .count()
}

/// The inverse conditional branch opcode.
pub fn invert_branch(op: Opcode) -> Opcode {
    match op {
        Opcode::Beq => Opcode::Bne,
        Opcode::Bne => Opcode::Beq,
        Opcode::Blt => Opcode::Bge,
        Opcode::Bge => Opcode::Blt,
        other => panic!("{other} is not an invertible conditional branch"),
    }
}

/// Runs superblock formation over a function, in place.
///
/// Blocks are visited hottest-first; each trace is tail-duplicated free of
/// side entrances and merged into a single superblock. Zombie blocks left
/// behind by merging are removed from the layout but keep their ids.
///
/// # Examples
///
/// ```
/// use sentinel_prog::{superblock::{form_superblocks, SuperblockConfig}, profile::Profile, ProgramBuilder};
/// use sentinel_isa::Insn;
///
/// let mut b = ProgramBuilder::new("f");
/// let entry = b.block("entry");
/// b.push(Insn::halt());
/// let mut f = b.finish();
/// let mut p = Profile::new();
/// p.enter_block(entry);
/// let result = form_superblocks(&mut f, &p, &SuperblockConfig::default());
/// assert_eq!(result.superblocks, vec![entry]); // single-block trace
/// ```
pub fn form_superblocks(
    func: &mut Function,
    profile: &Profile,
    cfg: &SuperblockConfig,
) -> FormationResult {
    let mut result = FormationResult::default();
    let mut visited: HashSet<BlockId> = HashSet::new();
    loop {
        // Hottest unvisited block still in the layout.
        let seed = func
            .blocks()
            .filter(|b| func.in_layout(b.id) && !visited.contains(&b.id))
            .map(|b| (profile.entries(b.id), b.id))
            .filter(|(w, _)| *w >= cfg.min_seed_weight)
            .max_by_key(|(w, id)| (*w, std::cmp::Reverse(id.0)))
            .map(|(_, id)| id);
        let Some(seed) = seed else { break };
        let (trace, links) = grow_trace(func, profile, seed, &visited, cfg);
        for &b in &trace {
            visited.insert(b);
        }
        if trace.len() > 1 {
            result.duplicated_blocks += tail_duplicate(func, &trace, &links);
            merge_trace(func, &trace, &links);
        }
        result.superblocks.push(seed);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::Cfg;
    use crate::{validate, ProgramBuilder};
    use sentinel_isa::Reg;

    /// entry(hot) -fallthrough-> body(hot) -fallthrough-> exit
    /// with a cold side exit entry->cold, cold->body (side entrance).
    fn side_entrance_fn() -> (Function, BlockId, BlockId, BlockId, BlockId) {
        let mut b = ProgramBuilder::new("f");
        let entry = b.block("entry");
        let cold = b.block("cold");
        let body = b.block("body");
        let exit = b.block("exit");
        b.switch_to(entry);
        b.push(Insn::branch(Opcode::Beq, Reg::int(1), Reg::ZERO, cold)); // rare
        b.push(Insn::jump(body));
        b.switch_to(cold);
        b.push(Insn::addi(Reg::int(2), Reg::int(2), 1));
        b.push(Insn::jump(body)); // side entrance into the hot trace
        b.switch_to(body);
        b.push(Insn::addi(Reg::int(3), Reg::int(3), 1));
        b.switch_to(exit);
        b.push(Insn::halt());
        (b.finish(), entry, cold, body, exit)
    }

    fn hot_profile(f: &Function, entry: BlockId, cold: BlockId) -> Profile {
        let mut p = Profile::new();
        for b in f.blocks() {
            if b.id == cold {
                p.block_entries.insert(b.id, 1);
            } else {
                p.block_entries.insert(b.id, 100);
            }
        }
        // entry's branch to cold: taken once out of 100.
        let branch_id = f.block(entry).insns[0].id;
        p.branch_executed.insert(branch_id, 100);
        p.branch_taken.insert(branch_id, 1);
        // entry's jump to body: always taken when reached.
        let jump_id = f.block(entry).insns[1].id;
        p.branch_executed.insert(jump_id, 99);
        p.branch_taken.insert(jump_id, 99);
        p
    }

    #[test]
    fn forms_superblock_and_duplicates_side_entrance() {
        let (mut f, entry, cold, body, _exit) = side_entrance_fn();
        let p = hot_profile(&f, entry, cold);
        let r = form_superblocks(&mut f, &p, &SuperblockConfig::default());
        assert!(r.superblocks.contains(&entry));
        assert!(r.duplicated_blocks >= 1, "body suffix must be duplicated");
        assert!(
            validate(&f).is_empty(),
            "formation output must validate: {:?}",
            validate(&f)
        );
        // body was merged into entry and removed from the layout.
        assert!(!f.in_layout(body));
        // cold now jumps to the duplicate, not into the middle of the trace.
        let cold_jump = f.block(cold).insns.last().unwrap();
        assert_ne!(cold_jump.target, Some(body));
        // The merged superblock contains body's add.
        let merged = f.block(entry);
        assert!(merged
            .insns
            .iter()
            .any(|i| i.op == Opcode::AddI && i.dest == Some(Reg::int(3))));
    }

    #[test]
    fn taken_trace_link_drops_jump() {
        let (mut f, entry, cold, _body, _exit) = side_entrance_fn();
        let p = hot_profile(&f, entry, cold);
        form_superblocks(&mut f, &p, &SuperblockConfig::default());
        // The `jump body` trace link inside the superblock is gone.
        let merged = f.block(entry);
        let jumps: Vec<_> = merged
            .insns
            .iter()
            .filter(|i| i.op == Opcode::Jump)
            .collect();
        // Only the final explicit fall-through jump (to exit or its copy) remains.
        assert!(jumps.len() <= 1);
    }

    #[test]
    fn branch_inversion_when_trace_follows_taken_edge() {
        // entry ends with `beq r1, r0, hot`; fall-through goes to coldexit.
        // The hot path is the taken edge, so merging must invert the branch.
        let mut b = ProgramBuilder::new("f");
        let entry = b.block("entry");
        let coldexit = b.block("coldexit");
        let hot = b.block("hot");
        b.switch_to(entry);
        b.push(Insn::branch(Opcode::Beq, Reg::int(1), Reg::ZERO, hot));
        b.switch_to(coldexit);
        b.push(Insn::halt());
        b.switch_to(hot);
        b.push(Insn::addi(Reg::int(2), Reg::int(2), 1));
        b.push(Insn::halt());
        let mut f = b.finish();
        let mut p = Profile::new();
        p.block_entries.insert(entry, 100);
        p.block_entries.insert(hot, 95);
        p.block_entries.insert(coldexit, 5);
        let br = f.block(entry).insns[0].id;
        p.branch_executed.insert(br, 100);
        p.branch_taken.insert(br, 95);
        form_superblocks(&mut f, &p, &SuperblockConfig::default());
        assert!(validate(&f).is_empty());
        let merged = f.block(entry);
        // Branch is now inverted (bne) and targets the old fall-through.
        assert_eq!(merged.insns[0].op, Opcode::Bne);
        assert_eq!(merged.insns[0].target, Some(coldexit));
        // hot's body follows inside the superblock.
        assert!(merged.insns.iter().any(|i| i.op == Opcode::AddI));
        assert!(!f.in_layout(hot));
    }

    #[test]
    fn low_probability_edges_do_not_extend_traces() {
        let (mut f, entry, cold, body, _) = side_entrance_fn();
        let mut p = hot_profile(&f, entry, cold);
        // Make the entry->body edge 50/50: below the 0.7 threshold.
        let jump_id = f.block(entry).insns[1].id;
        p.branch_executed.insert(jump_id, 100);
        p.branch_taken.insert(jump_id, 50);
        let branch_id = f.block(entry).insns[0].id;
        p.branch_taken.insert(branch_id, 50);
        form_superblocks(&mut f, &p, &SuperblockConfig::default());
        // No merging happened: body is still separate.
        assert!(f.in_layout(body));
    }

    #[test]
    fn invert_branch_covers_all_conditionals() {
        assert_eq!(invert_branch(Opcode::Beq), Opcode::Bne);
        assert_eq!(invert_branch(Opcode::Bne), Opcode::Beq);
        assert_eq!(invert_branch(Opcode::Blt), Opcode::Bge);
        assert_eq!(invert_branch(Opcode::Bge), Opcode::Blt);
    }

    #[test]
    #[should_panic(expected = "not an invertible")]
    fn invert_branch_rejects_non_branches() {
        invert_branch(Opcode::Add);
    }

    #[test]
    fn formation_is_idempotent_on_superblocks() {
        let (mut f, entry, cold, _, _) = side_entrance_fn();
        let p = hot_profile(&f, entry, cold);
        form_superblocks(&mut f, &p, &SuperblockConfig::default());
        let before = f.to_string();
        // A second pass with the same profile finds no new hot traces to merge.
        form_superblocks(&mut f, &p, &SuperblockConfig::default());
        assert_eq!(before, f.to_string());
    }

    #[test]
    fn unroll_replicates_body_with_inverted_latches() {
        // loop: r8 += r1 ; r1 -= 1 ; bne r1, r0, loop ; jump exit
        let mut b = ProgramBuilder::new("u");
        let body = b.block("loop");
        let exit = b.block("exit");
        b.switch_to(body);
        b.push(Insn::alu(
            Opcode::Add,
            Reg::int(8),
            Reg::int(8),
            Reg::int(1),
        ));
        b.push(Insn::addi(Reg::int(1), Reg::int(1), -1));
        b.push(Insn::branch(Opcode::Bne, Reg::int(1), Reg::ZERO, body));
        b.push(Insn::jump(exit));
        b.switch_to(exit);
        b.push(Insn::halt());
        let mut f = b.finish();
        assert!(unroll_superblock_loop(&mut f, body, 4));
        assert!(validate(&f).is_empty(), "{:?}", validate(&f));
        let insns = &f.block(body).insns;
        // 3 insns per copy × 4 copies + final jump.
        assert_eq!(insns.len(), 13);
        // Three inverted intermediate latches exiting to `exit`…
        let inverted = insns
            .iter()
            .filter(|i| i.op == Opcode::Beq && i.target == Some(exit))
            .count();
        assert_eq!(inverted, 3);
        // …and one back edge at the end.
        let back = insns
            .iter()
            .filter(|i| i.op == Opcode::Bne && i.target == Some(body))
            .count();
        assert_eq!(back, 1);
    }

    #[test]
    fn unroll_rejects_non_loop_shapes() {
        let mut b = ProgramBuilder::new("u");
        let e = b.block("e");
        b.push(Insn::nop());
        b.push(Insn::halt());
        let mut f = b.finish();
        assert!(!unroll_superblock_loop(&mut f, e, 4));
        assert!(!unroll_superblock_loop(&mut f, e, 1));
    }

    #[test]
    fn split_at_branches_produces_basic_blocks() {
        let (mut f, entry, cold, _, _) = side_entrance_fn();
        let p = hot_profile(&f, entry, cold);
        form_superblocks(&mut f, &p, &SuperblockConfig::default());
        // The merged superblock has internal branches; split them back out.
        split_at_branches(&mut f);
        assert!(validate(&f).is_empty(), "{:?}", validate(&f));
        for bid in f.layout().to_vec() {
            let b = f.block(bid);
            for (pos, insn) in b.insns.iter().enumerate() {
                if insn.op.is_control() {
                    assert_eq!(
                        pos + 1,
                        b.insns.len(),
                        "{}: control insn not at block end",
                        b.label
                    );
                }
            }
        }
    }

    #[test]
    fn split_preserves_instruction_ids_and_count() {
        let (mut f, entry, cold, _, _) = side_entrance_fn();
        let p = hot_profile(&f, entry, cold);
        form_superblocks(&mut f, &p, &SuperblockConfig::default());
        let before: Vec<_> = f
            .blocks_in_layout()
            .flat_map(|b| b.insns.iter().map(|i| i.id))
            .collect();
        split_at_branches(&mut f);
        let after: Vec<_> = f
            .blocks_in_layout()
            .flat_map(|b| b.insns.iter().map(|i| i.id))
            .collect();
        assert_eq!(before, after, "layout-order instruction stream unchanged");
    }

    #[test]
    fn loop_trace_stops_at_back_edge() {
        // head: r1 -= 1; bne r1, r0, head   (0.9 taken)
        // done: halt
        let mut b = ProgramBuilder::new("loop");
        let head = b.block("head");
        let done = b.block("done");
        b.switch_to(head);
        b.push(Insn::addi(Reg::int(1), Reg::int(1), -1));
        b.push(Insn::branch(Opcode::Bne, Reg::int(1), Reg::ZERO, head));
        b.switch_to(done);
        b.push(Insn::halt());
        let mut f = b.finish();
        let mut p = Profile::new();
        p.block_entries.insert(head, 100);
        p.block_entries.insert(done, 10);
        let br = f.block(head).insns[1].id;
        p.branch_executed.insert(br, 100);
        p.branch_taken.insert(br, 90);
        let r = form_superblocks(&mut f, &p, &SuperblockConfig::default());
        // The back edge cannot extend the trace into its own head.
        assert!(f.in_layout(head) && f.in_layout(done));
        assert_eq!(r.duplicated_blocks, 0);
        assert!(validate(&f).is_empty());
        let cfg = Cfg::build(&f);
        assert!(cfg.successors(head).contains(&head));
    }
}
