//! Live-variable analysis (backward dataflow).
//!
//! Liveness drives two parts of the paper:
//!
//! * **Dependence graph reduction** (§2.1 restriction (1), Appendix): a
//!   control dependence from branch `BR` to a later instruction `I` can be
//!   removed iff `dest(I)` is *not live* when `BR` is taken — i.e. not in
//!   the live-in set of `BR`'s target.
//! * **Uninitialized data handling** (§3.5): registers live into the
//!   function entry may carry stale exception tags, so the compiler inserts
//!   `clear_tag` instructions for them.
//!
//! Because blocks are superblock-shaped (side exits in the middle), the
//! analysis is *per-point* within a block: a register defined below a side
//! exit is not live above that definition merely because the side exit's
//! target uses it. The block-level fixpoint therefore rescans each block
//! backwards, adding the target's live-in set at each branch.

use std::collections::{HashMap, HashSet};

use sentinel_isa::{BlockId, Reg};

use crate::cfg::Cfg;
use crate::Function;

/// A set of registers. Deterministic iteration is provided by
/// [`RegSet::iter_sorted`].
pub type RegSet = HashSet<Reg>;

/// Extension helpers for [`RegSet`].
pub trait RegSetExt {
    /// Registers in ascending `(class, index)` order.
    fn iter_sorted(&self) -> Vec<Reg>;
}

impl RegSetExt for RegSet {
    fn iter_sorted(&self) -> Vec<Reg> {
        let mut v: Vec<Reg> = self.iter().copied().collect();
        v.sort();
        v
    }
}

/// Result of live-variable analysis over a [`Function`].
#[derive(Debug, Clone)]
pub struct Liveness {
    live_in: HashMap<BlockId, RegSet>,
    live_out: HashMap<BlockId, RegSet>,
}

impl Liveness {
    /// Runs the analysis to fixpoint.
    ///
    /// # Examples
    ///
    /// ```
    /// use sentinel_prog::{cfg::Cfg, liveness::Liveness, ProgramBuilder};
    /// use sentinel_isa::{Insn, Reg};
    ///
    /// let mut b = ProgramBuilder::new("f");
    /// let entry = b.block("entry");
    /// b.push(Insn::addi(Reg::int(2), Reg::int(1), 1)); // reads r1
    /// b.push(Insn::halt());
    /// let f = b.finish();
    /// let lv = Liveness::compute(&f, &Cfg::build(&f));
    /// assert!(lv.live_in(entry).contains(&Reg::int(1)));
    /// ```
    pub fn compute(func: &Function, cfg: &Cfg) -> Liveness {
        let mut live_in: HashMap<BlockId, RegSet> = HashMap::new();
        let mut live_out: HashMap<BlockId, RegSet> = HashMap::new();
        for b in func.blocks() {
            live_in.insert(b.id, RegSet::new());
            live_out.insert(b.id, RegSet::new());
        }

        // Iterate blocks in post-order-ish sequence until stable. Order
        // only affects convergence speed, not the result.
        let mut order = cfg.reverse_post_order();
        order.reverse();
        loop {
            let mut changed = false;
            for &bid in &order {
                // live_out = live_in of the layout fall-through (side-exit
                // targets are added during the in-block scan).
                let block = func.block(bid);
                let mut out = RegSet::new();
                if !block.ends_in_unconditional() {
                    if let Some(ft) = func.fallthrough_of(bid) {
                        out.extend(live_in[&ft].iter().copied());
                    }
                }
                let inn = scan_block(func, &live_in, bid, &out);
                if out != live_out[&bid] {
                    live_out.insert(bid, out);
                    changed = true;
                }
                if inn != live_in[&bid] {
                    live_in.insert(bid, inn);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        Liveness { live_in, live_out }
    }

    /// Registers live at the top of a block.
    pub fn live_in(&self, b: BlockId) -> &RegSet {
        &self.live_in[&b]
    }

    /// Registers live at the bottom of a block (i.e. into the layout
    /// fall-through; side-exit liveness is position-dependent — see
    /// [`Liveness::live_before`]).
    pub fn live_out(&self, b: BlockId) -> &RegSet {
        &self.live_out[&b]
    }

    /// Registers live immediately *before* the instruction at `pos` in
    /// block `b` (position `insns.len()` gives the live-out set).
    pub fn live_before(&self, func: &Function, b: BlockId, pos: usize) -> RegSet {
        let block = func.block(b);
        assert!(pos <= block.insns.len(), "position out of bounds");
        let mut live = self.live_out[&b].clone();
        for insn in block.insns[pos..].iter().rev() {
            if let Some(d) = insn.def() {
                live.remove(&d);
            }
            live.extend(insn.uses());
            if let Some(t) = insn.target {
                live.extend(self.live_in[&t].iter().copied());
            }
        }
        live
    }
}

/// Backward scan of one block from a given live-out set, producing live-in.
fn scan_block(
    func: &Function,
    live_in: &HashMap<BlockId, RegSet>,
    b: BlockId,
    out: &RegSet,
) -> RegSet {
    let mut live = out.clone();
    for insn in func.block(b).insns.iter().rev() {
        if let Some(d) = insn.def() {
            live.remove(&d);
        }
        live.extend(insn.uses());
        if let Some(t) = insn.target {
            live.extend(live_in[&t].iter().copied());
        }
    }
    live
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProgramBuilder;
    use sentinel_isa::{Insn, Opcode, Reg};

    fn analyze(f: &Function) -> Liveness {
        let cfg = Cfg::build(f);
        Liveness::compute(f, &cfg)
    }

    #[test]
    fn straight_line_liveness() {
        // entry: r2 = r1 + 1; st r2, 0(r3); halt
        let mut b = ProgramBuilder::new("f");
        let e = b.block("entry");
        b.push(Insn::addi(Reg::int(2), Reg::int(1), 1));
        b.push(Insn::st_w(Reg::int(2), Reg::int(3), 0));
        b.push(Insn::halt());
        let f = b.finish();
        let lv = analyze(&f);
        let li = lv.live_in(e);
        assert!(li.contains(&Reg::int(1)));
        assert!(li.contains(&Reg::int(3)));
        assert!(!li.contains(&Reg::int(2)), "r2 is defined before use");
        assert!(lv.live_out(e).is_empty());
    }

    #[test]
    fn side_exit_target_liveness_is_positional() {
        // entry: beq r1, r0, other ; r5 = 1 ; halt
        // other: uses r5
        // r5 is live at the branch point (other uses it) but NOT live-in to
        // entry, because on the fall-through path it is defined before any
        // use, and a taken branch at the top means the *old* r5 flows to
        // `other`.
        let mut b = ProgramBuilder::new("f");
        let e = b.block("entry");
        let o = b.block("other");
        b.switch_to(e);
        b.push(Insn::branch(Opcode::Beq, Reg::int(1), Reg::ZERO, o));
        b.push(Insn::li(Reg::int(5), 1));
        b.push(Insn::halt());
        b.switch_to(o);
        b.push(Insn::st_w(Reg::int(5), Reg::int(6), 0));
        b.push(Insn::halt());
        let f = b.finish();
        let lv = analyze(&f);
        // At the branch (pos 0) r5 is live (target uses it).
        assert!(lv.live_before(&f, e, 0).contains(&Reg::int(5)));
        assert!(lv.live_in(e).contains(&Reg::int(5)));
        // Just after the branch (pos 1), r5 is dead: it is redefined before
        // its only subsequent use.
        assert!(!lv.live_before(&f, e, 1).contains(&Reg::int(5)));
    }

    #[test]
    fn loop_carried_liveness() {
        // head: r1 = r1 - 1; bne r1, r0, head
        // done: halt
        let mut b = ProgramBuilder::new("loop");
        let head = b.block("head");
        let done = b.block("done");
        b.switch_to(head);
        b.push(Insn::addi(Reg::int(1), Reg::int(1), -1));
        b.push(Insn::branch(Opcode::Bne, Reg::int(1), Reg::ZERO, head));
        b.switch_to(done);
        b.push(Insn::halt());
        let f = b.finish();
        let lv = analyze(&f);
        assert!(lv.live_in(head).contains(&Reg::int(1)));
        // r1 is live around the back edge.
        assert!(lv.live_before(&f, head, 1).contains(&Reg::int(1)));
    }

    #[test]
    fn fp_and_int_tracked_separately() {
        let mut b = ProgramBuilder::new("f");
        let e = b.block("entry");
        b.push(Insn::alu(Opcode::FAdd, Reg::fp(1), Reg::fp(2), Reg::fp(3)));
        b.push(Insn::fst(Reg::fp(1), Reg::int(4), 0));
        b.push(Insn::halt());
        let f = b.finish();
        let lv = analyze(&f);
        let li = lv.live_in(e);
        assert!(li.contains(&Reg::fp(2)) && li.contains(&Reg::fp(3)));
        assert!(li.contains(&Reg::int(4)));
        assert!(!li.contains(&Reg::fp(1)));
    }

    #[test]
    fn zero_register_never_live() {
        let mut b = ProgramBuilder::new("f");
        let e = b.block("entry");
        b.push(Insn::branch(Opcode::Beq, Reg::int(1), Reg::ZERO, e));
        b.push(Insn::halt());
        let f = b.finish();
        let lv = analyze(&f);
        assert!(!lv.live_in(e).contains(&Reg::ZERO));
    }

    #[test]
    fn live_before_end_equals_live_out() {
        let mut b = ProgramBuilder::new("f");
        let e = b.block("entry");
        let t = b.block("t");
        b.switch_to(e);
        b.push(Insn::li(Reg::int(1), 1));
        b.switch_to(t);
        b.push(Insn::st_w(Reg::int(1), Reg::int(2), 0));
        b.push(Insn::halt());
        let f = b.finish();
        let lv = analyze(&f);
        let n = f.block(e).insns.len();
        assert_eq!(lv.live_before(&f, e, n), *lv.live_out(e));
        assert!(lv.live_out(e).contains(&Reg::int(1)));
    }

    #[test]
    fn iter_sorted_is_deterministic() {
        let mut s = RegSet::new();
        s.insert(Reg::fp(1));
        s.insert(Reg::int(5));
        s.insert(Reg::int(2));
        assert_eq!(s.iter_sorted(), vec![Reg::int(2), Reg::int(5), Reg::fp(1)]);
    }
}
