//! Program representation for the sentinel scheduling reproduction.
//!
//! Programs are [`Function`]s made of [`Block`]s laid out in program order.
//! A block here is an *extended* basic block: conditional branches may
//! appear anywhere inside it, each being a *side exit*; control falls
//! through past an untaken branch and off the end of the block into the
//! next block in layout order. This is exactly the paper's **superblock**
//! shape (§2.1): "a block of instructions in which control may only enter
//! from the top but may leave at one or more exit points", with
//! instructions placed sequentially so that everything after a conditional
//! branch is on the branch's fall-through path.
//!
//! The crate also provides
//!
//! * [`mod@cfg`] — control-flow graph over blocks,
//! * [`liveness`] — backward live-variable analysis (paper §2.1
//!   restriction (1) and §3.5 uninitialized-register handling),
//! * [`profile`] — execution profiles used by superblock formation,
//! * [`superblock`] — trace selection + tail duplication,
//! * [`ProgramBuilder`] — a programmatic assembler, and
//! * [`asm`] — a textual assembly parser/printer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod block;
mod builder;
mod func;
mod validate;

pub mod asm;
pub mod cfg;
pub mod dominators;
pub mod examples;
pub mod liveness;
pub mod object;
pub mod profile;
pub mod superblock;

pub use block::Block;
pub use builder::ProgramBuilder;
pub use func::Function;
pub use validate::{validate, ValidateError};
