//! Ready-made programs: the paper's worked examples and small kernels.
//!
//! These are used throughout the workspace's tests, doc examples, and the
//! `examples/` binaries.

use sentinel_isa::{Insn, Opcode, Reg};

use crate::{Function, ProgramBuilder};

/// The code fragment of paper **Figure 1(a)**:
///
/// ```text
/// A: if (r2==0) goto L1
/// B: r1 = mem(r2+0)
/// C: r3 = mem(r4+0)
/// D: r4 = r1+1
/// E: r5 = r3+9
/// F: mem(r2+8) = r4     (the paper's +4, scaled to 8-byte words)
/// ```
///
/// laid out as one superblock (`main`) with the side-exit target `l1` and
/// the fall-through continuation `exit`. Instructions `B` and `C` are the
/// potential trap-causing loads; `E` and `F` are their last uses, so after
/// dependence reduction `E` and `F` are the *unprotected* instructions of
/// the paper's walkthrough.
///
/// Registers `r2` and `r4` are live-in (the simulator initializes them).
pub fn figure1() -> Function {
    let mut b = ProgramBuilder::new("figure1");
    let main = b.block("main");
    let l1 = b.block("l1");
    let exit = b.block("exit");
    b.switch_to(main);
    b.push(Insn::branch(Opcode::Beq, Reg::int(2), Reg::ZERO, l1)); // A
    b.push(Insn::ld_w(Reg::int(1), Reg::int(2), 0)); // B
    b.push(Insn::ld_w(Reg::int(3), Reg::int(4), 0)); // C
    b.push(Insn::addi(Reg::int(4), Reg::int(1), 1)); // D
    b.push(Insn::addi(Reg::int(5), Reg::int(3), 9)); // E
    b.push(Insn::st_w(Reg::int(4), Reg::int(2), 8)); // F
    b.push(Insn::jump(exit));
    b.switch_to(l1);
    b.push(Insn::halt());
    b.switch_to(exit);
    b.push(Insn::halt());
    b.finish()
}

/// The code fragment of paper **Figure 3(a)** (recovery example):
///
/// ```text
/// A: jsr
/// B: r5 = mem(r3+0)
/// C: if (r5==0) goto L1
/// D: r1 = mem(r6+0)
/// E: r2 = r2+1
/// F: mem(r4+0) = r7
/// G: r8 = r1+1
/// H: r9 = mem(r2+0)
/// ```
///
/// `A` is irreversible and blocks upward motion of `D`; `F` may alias the
/// input of `B`; `E` overwrites its own input (`r2`), which the renaming
/// transformation splits when recovery constraints are enabled.
pub fn figure3() -> Function {
    let mut b = ProgramBuilder::new("figure3");
    let main = b.block("main");
    let l1 = b.block("l1");
    let exit = b.block("exit");
    b.switch_to(main);
    b.push(Insn::jsr()); // A
    b.push(Insn::ld_w(Reg::int(5), Reg::int(3), 0)); // B
    b.push(Insn::branch(Opcode::Beq, Reg::int(5), Reg::ZERO, l1)); // C
    b.push(Insn::ld_w(Reg::int(1), Reg::int(6), 0)); // D
    b.push(Insn::addi(Reg::int(2), Reg::int(2), 1)); // E
    b.push(Insn::st_w(Reg::int(7), Reg::int(4), 0)); // F
    b.push(Insn::addi(Reg::int(8), Reg::int(1), 1)); // G
    b.push(Insn::ld_w(Reg::int(9), Reg::int(2), 0)); // H
    b.push(Insn::jump(exit));
    b.switch_to(l1);
    b.push(Insn::halt());
    b.switch_to(exit);
    b.push(Insn::halt());
    b.finish()
}

/// A summation kernel: sums `count` 8-byte words starting at `base`,
/// stores the total at `result_addr`, and halts.
///
/// ```text
/// init: r1 = base; r2 = count; r3 = 0
/// loop: r4 = mem(r1); r3 += r4; r1 += 8; r2 -= 1; bne r2, r0, loop
/// done: mem(result_addr) = r3; halt
/// ```
pub fn sum_kernel(base: i64, count: i64, result_addr: i64) -> Function {
    let mut b = ProgramBuilder::new("sum");
    let init = b.block("init");
    let body = b.block("loop");
    let done = b.block("done");
    b.switch_to(init);
    b.push(Insn::li(Reg::int(1), base));
    b.push(Insn::li(Reg::int(2), count));
    b.push(Insn::li(Reg::int(3), 0));
    b.switch_to(body);
    b.push(Insn::ld_w(Reg::int(4), Reg::int(1), 0));
    b.push(Insn::alu(
        Opcode::Add,
        Reg::int(3),
        Reg::int(3),
        Reg::int(4),
    ));
    b.push(Insn::addi(Reg::int(1), Reg::int(1), 8));
    b.push(Insn::addi(Reg::int(2), Reg::int(2), -1));
    b.push(Insn::branch(Opcode::Bne, Reg::int(2), Reg::ZERO, body));
    b.switch_to(done);
    b.push(Insn::li(Reg::int(5), result_addr));
    b.push(Insn::st_w(Reg::int(3), Reg::int(5), 0));
    b.push(Insn::halt());
    b.finish()
}

/// A pointer-chase kernel: follows `count` links of a linked list starting
/// at the word at `head_addr`, storing the final node address at
/// `result_addr`. Every iteration is a load-use chain — the workload shape
/// for which the paper argues speculative loads matter most (§5.2).
pub fn chase_kernel(head_addr: i64, count: i64, result_addr: i64) -> Function {
    let mut b = ProgramBuilder::new("chase");
    let init = b.block("init");
    let body = b.block("loop");
    let done = b.block("done");
    b.switch_to(init);
    b.push(Insn::li(Reg::int(1), head_addr));
    b.push(Insn::ld_w(Reg::int(1), Reg::int(1), 0));
    b.push(Insn::li(Reg::int(2), count));
    b.switch_to(body);
    b.push(Insn::ld_w(Reg::int(1), Reg::int(1), 0));
    b.push(Insn::addi(Reg::int(2), Reg::int(2), -1));
    b.push(Insn::branch(Opcode::Bne, Reg::int(2), Reg::ZERO, body));
    b.switch_to(done);
    b.push(Insn::li(Reg::int(5), result_addr));
    b.push(Insn::st_w(Reg::int(1), Reg::int(5), 0));
    b.push(Insn::halt());
    b.finish()
}

/// A saxpy-like fp kernel: `y[i] = a*x[i] + y[i]` over `count` elements.
pub fn saxpy_kernel(x_base: i64, y_base: i64, count: i64, a: f64) -> Function {
    let mut b = ProgramBuilder::new("saxpy");
    let init = b.block("init");
    let body = b.block("loop");
    let done = b.block("done");
    b.switch_to(init);
    b.push(Insn::li(Reg::int(1), x_base));
    b.push(Insn::li(Reg::int(2), y_base));
    b.push(Insn::li(Reg::int(3), count));
    b.push(Insn::fli(Reg::fp(1), a));
    b.switch_to(body);
    b.push(Insn::fld(Reg::fp(2), Reg::int(1), 0));
    b.push(Insn::fld(Reg::fp(3), Reg::int(2), 0));
    b.push(Insn::alu(Opcode::FMul, Reg::fp(2), Reg::fp(1), Reg::fp(2)));
    b.push(Insn::alu(Opcode::FAdd, Reg::fp(3), Reg::fp(2), Reg::fp(3)));
    b.push(Insn::fst(Reg::fp(3), Reg::int(2), 0));
    b.push(Insn::addi(Reg::int(1), Reg::int(1), 8));
    b.push(Insn::addi(Reg::int(2), Reg::int(2), 8));
    b.push(Insn::addi(Reg::int(3), Reg::int(3), -1));
    b.push(Insn::branch(Opcode::Bne, Reg::int(3), Reg::ZERO, body));
    b.switch_to(done);
    b.push(Insn::halt());
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate;

    #[test]
    fn all_examples_validate() {
        for f in [
            figure1(),
            figure3(),
            sum_kernel(0x1000, 4, 0x2000),
            chase_kernel(0x1000, 3, 0x2000),
            saxpy_kernel(0x1000, 0x2000, 4, 2.0),
        ] {
            let errs = validate(&f);
            assert!(errs.is_empty(), "{}: {errs:?}", f.name());
        }
    }

    #[test]
    fn figure1_shape_matches_paper() {
        let f = figure1();
        let main = f.block(f.entry());
        assert_eq!(main.insns.len(), 7); // A..F + explicit jump
        assert_eq!(main.side_exit_count(), 1);
        assert!(main.insns[1].op.can_trap()); // B
        assert!(main.insns[5].op.is_store()); // F
    }

    #[test]
    fn figure3_has_irreversible_head() {
        let f = figure3();
        let main = f.block(f.entry());
        assert!(main.insns[0].op.is_irreversible()); // A: jsr
        assert_eq!(main.side_exit_count(), 1); // C
    }

    #[test]
    fn examples_roundtrip_through_asm() {
        for f in [figure1(), figure3(), sum_kernel(0, 1, 8)] {
            let text = crate::asm::print(&f);
            let back = crate::asm::parse(&text).expect("reparse");
            assert_eq!(crate::asm::print(&back), text);
        }
    }
}
