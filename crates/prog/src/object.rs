//! Binary object format for whole programs.
//!
//! A simple container around the wide instruction encoding of
//! [`sentinel_isa::encode`]: magic + version, the function name, the
//! `noalias` declarations, every block (label, layout membership,
//! instruction words), and the layout order. Little-endian throughout.
//!
//! Instruction *ids* are compiler-side bookkeeping and are not part of
//! the binary; loading assigns fresh ids in layout order.

use sentinel_isa::encode::{decode_insn, encode_insn, DecodeError, EncodeError};
use sentinel_isa::Reg;

use crate::Function;

const MAGIC: &[u8; 4] = b"SNTL";
const VERSION: u32 = 1;

/// Errors writing an object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WriteError {
    /// An instruction could not be encoded.
    Encode(EncodeError),
}

impl std::fmt::Display for WriteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WriteError::Encode(e) => write!(f, "encode: {e}"),
        }
    }
}

impl std::error::Error for WriteError {}

/// Errors reading an object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadError {
    /// Wrong magic bytes.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// Truncated input.
    Truncated,
    /// Malformed UTF-8 in a name or label.
    BadString,
    /// An instruction word failed to decode.
    Decode(DecodeError),
    /// A layout index referenced a nonexistent block.
    BadLayout(u32),
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::BadMagic => write!(f, "not a sentinel object (bad magic)"),
            ReadError::BadVersion(v) => write!(f, "unsupported object version {v}"),
            ReadError::Truncated => write!(f, "truncated object"),
            ReadError::BadString => write!(f, "malformed string"),
            ReadError::Decode(e) => write!(f, "decode: {e}"),
            ReadError::BadLayout(i) => write!(f, "layout references missing block {i}"),
        }
    }
}

impl std::error::Error for ReadError {}

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ReadError> {
        let end = self.pos.checked_add(n).ok_or(ReadError::Truncated)?;
        if end > self.buf.len() {
            return Err(ReadError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }
    fn u32(&mut self) -> Result<u32, ReadError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, ReadError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn str(&mut self) -> Result<String, ReadError> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ReadError::BadString)
    }
}

/// Serializes a function to the binary object format.
///
/// # Errors
///
/// [`WriteError::Encode`] if any instruction is unencodable (e.g. still
/// carries virtual registers — run register allocation first).
pub fn write_object(func: &Function) -> Result<Vec<u8>, WriteError> {
    let mut w = Writer { buf: Vec::new() };
    w.buf.extend_from_slice(MAGIC);
    w.u32(VERSION);
    w.str(func.name());
    // noalias declarations, as encoded operand bytes.
    let noalias: Vec<&Reg> = func.noalias_bases().iter().collect();
    w.u32(noalias.len() as u32);
    for r in noalias {
        let class = if r.is_fp() { 1u32 } else { 0 };
        w.u32(class << 16 | r.index() as u32);
    }
    w.u32(func.block_count() as u32);
    for b in func.blocks() {
        w.str(&b.label);
        w.u32(b.insns.len() as u32);
        for insn in &b.insns {
            let words = encode_insn(insn).map_err(WriteError::Encode)?;
            w.u64(words[0]);
            w.u64(words[1]);
        }
    }
    w.u32(func.layout().len() as u32);
    for id in func.layout() {
        w.u32(id.0);
    }
    Ok(w.buf)
}

/// Loads a function from the binary object format, assigning fresh
/// instruction ids in layout order.
///
/// # Errors
///
/// See [`ReadError`].
pub fn read_object(bytes: &[u8]) -> Result<Function, ReadError> {
    let mut r = Reader { buf: bytes, pos: 0 };
    if r.take(4)? != MAGIC {
        return Err(ReadError::BadMagic);
    }
    let version = r.u32()?;
    if version != VERSION {
        return Err(ReadError::BadVersion(version));
    }
    let name = r.str()?;
    let mut func = Function::new(name);
    let noalias_count = r.u32()?;
    let mut noalias = Vec::new();
    for _ in 0..noalias_count {
        let v = r.u32()?;
        let idx = (v & 0xFFFF) as u16;
        noalias.push(if v >> 16 == 1 {
            Reg::fp(idx)
        } else {
            Reg::int(idx)
        });
    }
    let block_count = r.u32()?;
    let mut block_insns = Vec::new();
    for _ in 0..block_count {
        let label = r.str()?;
        let id = func.add_block(label);
        let n = r.u32()?;
        let mut insns = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let w0 = r.u64()?;
            let w1 = r.u64()?;
            insns.push(decode_insn([w0, w1]).map_err(ReadError::Decode)?);
        }
        block_insns.push((id, insns));
    }
    let layout_len = r.u32()?;
    let mut layout = Vec::with_capacity(layout_len as usize);
    for _ in 0..layout_len {
        let i = r.u32()?;
        if i as usize >= func.block_count() {
            return Err(ReadError::BadLayout(i));
        }
        layout.push(sentinel_isa::BlockId(i));
    }
    // Push instructions in layout order first so ids are layout-dense,
    // then the zombie blocks.
    for &bid in &layout {
        if let Some((_, insns)) = block_insns.iter().find(|(id, _)| *id == bid) {
            for insn in insns {
                func.push_insn(bid, insn.clone());
            }
        }
    }
    for (bid, insns) in &block_insns {
        if !layout.contains(bid) {
            for insn in insns {
                func.push_insn(*bid, insn.clone());
            }
        }
    }
    // Apply the layout: remove blocks not in it.
    for (bid, _) in &block_insns {
        if !layout.contains(bid) && func.in_layout(*bid) {
            func.remove_from_layout(*bid);
        }
    }
    // Now order the remaining layout to match.
    // (add_block appended in id order == file order; rebuild by removal
    // and reinsertion only when the orders differ.)
    if func.layout() != layout.as_slice() {
        // Remove all but the first layout entry, then insert in order.
        for &bid in func.layout().to_vec().iter().skip(1) {
            func.remove_from_layout(bid);
        }
        let mut prev = func.layout()[0];
        debug_assert_eq!(prev, layout[0], "entry mismatch handled below");
        for &bid in layout.iter().skip(1) {
            func.insert_in_layout_after(prev, bid);
            prev = bid;
        }
    }
    for reg in noalias {
        func.declare_noalias(reg);
    }
    Ok(func)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::{figure1, sum_kernel};
    use crate::{validate, ProgramBuilder};
    use sentinel_isa::Insn;

    fn roundtrip(f: &Function) -> Function {
        let bytes = write_object(f).expect("write");
        read_object(&bytes).expect("read")
    }

    fn same_shape(a: &Function, b: &Function) {
        assert_eq!(a.name(), b.name());
        assert_eq!(a.block_count(), b.block_count());
        assert_eq!(a.layout(), b.layout());
        assert_eq!(a.noalias_bases(), b.noalias_bases());
        for (ba, bb) in a.blocks().zip(b.blocks()) {
            assert_eq!(ba.label, bb.label);
            assert_eq!(ba.insns.len(), bb.insns.len());
            for (ia, ib) in ba.insns.iter().zip(&bb.insns) {
                assert_eq!(ia.op, ib.op, "{ia} vs {ib}");
                assert_eq!(ia.dest, ib.dest);
                assert_eq!(ia.src1, ib.src1);
                assert_eq!(ia.src2, ib.src2);
                assert_eq!(ia.imm, ib.imm);
                assert_eq!(ia.target, ib.target);
                assert_eq!(ia.speculative, ib.speculative);
                assert_eq!(ia.boost, ib.boost);
            }
        }
    }

    #[test]
    fn roundtrips_examples() {
        for f in [figure1(), sum_kernel(0x1000, 4, 0x2000)] {
            let back = roundtrip(&f);
            same_shape(&f, &back);
            assert!(validate(&back).is_empty(), "{:?}", validate(&back));
        }
    }

    #[test]
    fn roundtrips_noalias_declarations() {
        let mut b = ProgramBuilder::new("na");
        b.block("e");
        b.push(Insn::halt());
        let mut f = b.finish();
        f.declare_noalias(sentinel_isa::Reg::int(10));
        f.declare_noalias(sentinel_isa::Reg::fp(11));
        same_shape(&f, &roundtrip(&f));
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(read_object(b"NO"), Err(ReadError::Truncated));
        assert_eq!(read_object(b"XXXXYYYY"), Err(ReadError::BadMagic));
        let mut good = write_object(&figure1()).unwrap();
        good[4] = 99; // version
        assert_eq!(read_object(&good), Err(ReadError::BadVersion(99)));
    }

    #[test]
    fn rejects_truncated() {
        let bytes = write_object(&figure1()).unwrap();
        for cut in [5, 10, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                read_object(&bytes[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn rejects_virtual_registers() {
        let mut b = ProgramBuilder::new("v");
        b.block("e");
        b.push(Insn::addi(
            sentinel_isa::Reg::int(100),
            sentinel_isa::Reg::int(1),
            1,
        ));
        b.push(Insn::halt());
        let f = b.finish();
        assert!(matches!(write_object(&f), Err(WriteError::Encode(_))));
    }
}
