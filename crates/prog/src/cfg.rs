//! Control-flow graph over blocks.

use std::collections::{HashMap, HashSet, VecDeque};

use sentinel_isa::BlockId;

use crate::Function;

/// An edge kind in the control-flow graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// A taken conditional branch or unconditional jump.
    Taken,
    /// Fall-through off the end of the block to the next block in layout.
    FallThrough,
}

/// A control-flow edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Edge {
    /// Source block.
    pub from: BlockId,
    /// Destination block.
    pub to: BlockId,
    /// How control reaches `to`.
    pub kind: EdgeKind,
}

/// The control-flow graph of a [`Function`].
///
/// Successors of a block are the targets of its side-exit branches (in
/// program order) plus the layout fall-through, if the block does not end
/// in `jump` or `halt`.
///
/// # Examples
///
/// ```
/// use sentinel_prog::{cfg::Cfg, ProgramBuilder};
/// use sentinel_isa::{Insn, Opcode, Reg};
///
/// let mut b = ProgramBuilder::new("f");
/// let entry = b.block("entry");
/// let exit = b.block("exit");
/// b.switch_to(entry);
/// b.push(Insn::branch(Opcode::Beq, Reg::int(1), Reg::ZERO, exit));
/// b.push(Insn::halt());
/// b.switch_to(exit);
/// b.push(Insn::halt());
/// let f = b.finish();
/// let cfg = Cfg::build(&f);
/// assert_eq!(cfg.successors(entry), &[exit]); // halt ends the block
/// assert_eq!(cfg.predecessors(exit), &[entry]);
/// ```
#[derive(Debug, Clone)]
pub struct Cfg {
    succs: HashMap<BlockId, Vec<BlockId>>,
    preds: HashMap<BlockId, Vec<BlockId>>,
    edges: Vec<Edge>,
    entry: BlockId,
}

impl Cfg {
    /// Builds the CFG of a function.
    ///
    /// # Panics
    ///
    /// Panics if the function has no blocks.
    pub fn build(func: &Function) -> Cfg {
        let mut succs: HashMap<BlockId, Vec<BlockId>> = HashMap::new();
        let mut preds: HashMap<BlockId, Vec<BlockId>> = HashMap::new();
        let mut edges = Vec::new();
        for b in func.blocks() {
            succs.entry(b.id).or_default();
            preds.entry(b.id).or_default();
        }
        for b in func.blocks() {
            let mut out: Vec<BlockId> = Vec::new();
            for t in b.branch_targets() {
                if !out.contains(&t) {
                    out.push(t);
                }
                edges.push(Edge {
                    from: b.id,
                    to: t,
                    kind: EdgeKind::Taken,
                });
            }
            if !b.ends_in_unconditional() {
                if let Some(ft) = func.fallthrough_of(b.id) {
                    if !out.contains(&ft) {
                        out.push(ft);
                    }
                    edges.push(Edge {
                        from: b.id,
                        to: ft,
                        kind: EdgeKind::FallThrough,
                    });
                }
            }
            for t in &out {
                preds.entry(*t).or_default().push(b.id);
            }
            succs.insert(b.id, out);
        }
        Cfg {
            succs,
            preds,
            edges,
            entry: func.entry(),
        }
    }

    /// The entry block.
    pub fn entry(&self) -> BlockId {
        self.entry
    }

    /// Successor blocks (deduplicated, branch targets first, fall-through
    /// last).
    pub fn successors(&self, b: BlockId) -> &[BlockId] {
        self.succs.get(&b).map_or(&[], |v| v.as_slice())
    }

    /// Predecessor blocks.
    pub fn predecessors(&self, b: BlockId) -> &[BlockId] {
        self.preds.get(&b).map_or(&[], |v| v.as_slice())
    }

    /// All edges, including parallel taken/fall-through edges to the same
    /// target.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Blocks reachable from the entry.
    pub fn reachable(&self) -> HashSet<BlockId> {
        let mut seen = HashSet::new();
        let mut work = VecDeque::from([self.entry]);
        while let Some(b) = work.pop_front() {
            if seen.insert(b) {
                for s in self.successors(b) {
                    work.push_back(*s);
                }
            }
        }
        seen
    }

    /// Reverse post-order over reachable blocks (a topological order when
    /// the graph is acyclic; loops place headers before bodies).
    pub fn reverse_post_order(&self) -> Vec<BlockId> {
        let mut order = Vec::new();
        let mut state: HashMap<BlockId, u8> = HashMap::new(); // 0 unseen, 1 open, 2 done
                                                              // Iterative DFS to avoid recursion depth limits on long chains.
        let mut stack = vec![(self.entry, 0usize)];
        state.insert(self.entry, 1);
        while let Some((b, idx)) = stack.pop() {
            let succs = self.successors(b);
            if idx < succs.len() {
                stack.push((b, idx + 1));
                let s = succs[idx];
                if state.get(&s).copied().unwrap_or(0) == 0 {
                    state.insert(s, 1);
                    stack.push((s, 0));
                }
            } else {
                state.insert(b, 2);
                order.push(b);
            }
        }
        order.reverse();
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProgramBuilder;
    use sentinel_isa::{Insn, Opcode, Reg};

    /// entry -> (branch) b2, fall-through b1; b1 -> b2; b2: halt.
    fn diamondish() -> (crate::Function, BlockId, BlockId, BlockId) {
        let mut b = ProgramBuilder::new("f");
        let e = b.block("entry");
        let m = b.block("mid");
        let x = b.block("exit");
        b.switch_to(e);
        b.push(Insn::branch(Opcode::Beq, Reg::int(1), Reg::ZERO, x));
        b.switch_to(m);
        b.push(Insn::nop());
        b.switch_to(x);
        b.push(Insn::halt());
        (b.finish(), e, m, x)
    }

    #[test]
    fn successors_branch_then_fallthrough() {
        let (f, e, m, x) = diamondish();
        let cfg = Cfg::build(&f);
        assert_eq!(cfg.successors(e), &[x, m]);
        assert_eq!(cfg.successors(m), &[x]);
        assert_eq!(cfg.successors(x), &[] as &[BlockId]);
    }

    #[test]
    fn predecessors_inverse_of_successors() {
        let (f, e, m, x) = diamondish();
        let cfg = Cfg::build(&f);
        assert_eq!(cfg.predecessors(m), &[e]);
        let mut px = cfg.predecessors(x).to_vec();
        px.sort();
        assert_eq!(px, vec![e, m]);
    }

    #[test]
    fn edge_kinds() {
        let (f, e, m, x) = diamondish();
        let cfg = Cfg::build(&f);
        assert!(cfg.edges().contains(&Edge {
            from: e,
            to: x,
            kind: EdgeKind::Taken
        }));
        assert!(cfg.edges().contains(&Edge {
            from: e,
            to: m,
            kind: EdgeKind::FallThrough
        }));
    }

    #[test]
    fn unconditional_end_blocks_fallthrough() {
        let mut b = ProgramBuilder::new("f");
        let e = b.block("entry");
        let dead = b.block("dead");
        let x = b.block("exit");
        b.switch_to(e);
        b.push(Insn::jump(x));
        b.switch_to(dead);
        b.push(Insn::nop());
        b.switch_to(x);
        b.push(Insn::halt());
        let f = b.finish();
        let cfg = Cfg::build(&f);
        assert_eq!(cfg.successors(e), &[x]);
        let reach = cfg.reachable();
        assert!(reach.contains(&e) && reach.contains(&x));
        assert!(!reach.contains(&dead));
    }

    #[test]
    fn rpo_starts_at_entry_and_respects_order() {
        let (f, e, m, x) = diamondish();
        let cfg = Cfg::build(&f);
        let rpo = cfg.reverse_post_order();
        assert_eq!(rpo[0], e);
        let pos = |b: BlockId| rpo.iter().position(|v| *v == b).unwrap();
        assert!(pos(m) < pos(x) || pos(x) < pos(m)); // both present
        assert_eq!(rpo.len(), 3);
    }

    #[test]
    fn loop_cfg_rpo_contains_all_reachable() {
        let mut b = ProgramBuilder::new("loop");
        let head = b.block("head");
        let done = b.block("done");
        b.switch_to(head);
        b.push(Insn::addi(Reg::int(1), Reg::int(1), -1));
        b.push(Insn::branch(Opcode::Bne, Reg::int(1), Reg::ZERO, head));
        b.switch_to(done);
        b.push(Insn::halt());
        let f = b.finish();
        let cfg = Cfg::build(&f);
        assert_eq!(cfg.reverse_post_order().len(), 2);
        assert!(cfg.successors(head).contains(&head));
        assert!(cfg.predecessors(head).contains(&head));
    }
}
