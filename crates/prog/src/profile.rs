//! Execution profiles.
//!
//! Superblock formation (§2.1) is profile-driven: traces follow the most
//! frequently executed control-flow paths. The simulator produces a
//! [`Profile`] as a side effect of execution; the former consumes it.

use std::collections::HashMap;

use sentinel_isa::{BlockId, InsnId};

/// Execution counts gathered from one or more program runs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Profile {
    /// Times each block was entered (from the top).
    pub block_entries: HashMap<BlockId, u64>,
    /// Times each control-transfer instruction executed.
    pub branch_executed: HashMap<InsnId, u64>,
    /// Times each control-transfer instruction was taken.
    pub branch_taken: HashMap<InsnId, u64>,
}

impl Profile {
    /// Creates an empty profile.
    pub fn new() -> Profile {
        Profile::default()
    }

    /// Records a block entry.
    pub fn enter_block(&mut self, b: BlockId) {
        *self.block_entries.entry(b).or_insert(0) += 1;
    }

    /// Records a branch execution and outcome.
    pub fn record_branch(&mut self, id: InsnId, taken: bool) {
        *self.branch_executed.entry(id).or_insert(0) += 1;
        if taken {
            *self.branch_taken.entry(id).or_insert(0) += 1;
        }
    }

    /// Entry count of a block (0 if never entered).
    pub fn entries(&self, b: BlockId) -> u64 {
        self.block_entries.get(&b).copied().unwrap_or(0)
    }

    /// Taken probability of a branch, or `None` if it never executed.
    pub fn taken_prob(&self, id: InsnId) -> Option<f64> {
        let n = self.branch_executed.get(&id).copied()?;
        if n == 0 {
            return None;
        }
        let t = self.branch_taken.get(&id).copied().unwrap_or(0);
        Some(t as f64 / n as f64)
    }

    /// Merges another profile into this one.
    pub fn merge(&mut self, other: &Profile) {
        for (b, n) in &other.block_entries {
            *self.block_entries.entry(*b).or_insert(0) += n;
        }
        for (i, n) in &other.branch_executed {
            *self.branch_executed.entry(*i).or_insert(0) += n;
        }
        for (i, n) in &other.branch_taken {
            *self.branch_taken.entry(*i).or_insert(0) += n;
        }
    }

    /// The hottest block (highest entry count), if any block was entered.
    pub fn hottest_block(&self) -> Option<BlockId> {
        self.block_entries
            .iter()
            .max_by_key(|(b, n)| (**n, std::cmp::Reverse(b.0)))
            .map(|(b, _)| *b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_accumulate() {
        let mut p = Profile::new();
        p.enter_block(BlockId(0));
        p.enter_block(BlockId(0));
        p.enter_block(BlockId(1));
        assert_eq!(p.entries(BlockId(0)), 2);
        assert_eq!(p.entries(BlockId(1)), 1);
        assert_eq!(p.entries(BlockId(9)), 0);
    }

    #[test]
    fn taken_probability() {
        let mut p = Profile::new();
        let id = InsnId(3);
        p.record_branch(id, true);
        p.record_branch(id, false);
        p.record_branch(id, true);
        p.record_branch(id, true);
        assert_eq!(p.taken_prob(id), Some(0.75));
        assert_eq!(p.taken_prob(InsnId(4)), None);
    }

    #[test]
    fn merge_sums_counts() {
        let mut a = Profile::new();
        a.enter_block(BlockId(0));
        a.record_branch(InsnId(1), true);
        let mut b = Profile::new();
        b.enter_block(BlockId(0));
        b.record_branch(InsnId(1), false);
        a.merge(&b);
        assert_eq!(a.entries(BlockId(0)), 2);
        assert_eq!(a.taken_prob(InsnId(1)), Some(0.5));
    }

    #[test]
    fn hottest_block_ties_break_deterministically() {
        let mut p = Profile::new();
        p.enter_block(BlockId(2));
        p.enter_block(BlockId(5));
        // Tie: lowest id wins.
        assert_eq!(p.hottest_block(), Some(BlockId(2)));
        p.enter_block(BlockId(5));
        assert_eq!(p.hottest_block(), Some(BlockId(5)));
        assert_eq!(Profile::new().hottest_block(), None);
    }
}
