//! Structural validation of functions.

use std::collections::HashSet;
use std::fmt;

use sentinel_isa::{BlockId, Insn, InsnId, Opcode, RegClass};

use crate::Function;

/// A structural error found by [`validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateError {
    /// The function has no blocks.
    Empty,
    /// An instruction still carries [`InsnId::UNASSIGNED`].
    UnassignedId(BlockId, usize),
    /// Two instructions share an id.
    DuplicateId(InsnId),
    /// A branch targets a block id that does not exist.
    BadTarget(InsnId, BlockId),
    /// An instruction's operand shape does not match its opcode
    /// (missing/extra operand, wrong register class, missing target).
    BadOperands(InsnId, Opcode, &'static str),
    /// Two blocks share a label (the assembler requires unique labels).
    DuplicateLabel(String),
    /// A speculative modifier is set on an opcode the architecture forbids
    /// from being speculative (control, irreversible, or sentinel opcodes).
    IllegalSpeculation(InsnId, Opcode),
    /// A boosting level is set on an opcode that may not be boosted, or
    /// together with the speculative modifier (the two mechanisms belong
    /// to different architectures).
    IllegalBoost(InsnId, Opcode),
    /// `confirm_store` has a negative index.
    NegativeConfirmIndex(InsnId),
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::Empty => write!(f, "function has no blocks"),
            ValidateError::UnassignedId(b, pos) => {
                write!(f, "instruction at {b}[{pos}] has an unassigned id")
            }
            ValidateError::DuplicateId(id) => write!(f, "duplicate instruction id {id}"),
            ValidateError::BadTarget(id, b) => {
                write!(f, "instruction {id} targets nonexistent block {b}")
            }
            ValidateError::BadOperands(id, op, why) => {
                write!(f, "instruction {id} ({op}): {why}")
            }
            ValidateError::DuplicateLabel(l) => write!(f, "duplicate block label '{l}'"),
            ValidateError::IllegalSpeculation(id, op) => {
                write!(f, "instruction {id} ({op}) may not be speculative")
            }
            ValidateError::IllegalBoost(id, op) => {
                write!(f, "instruction {id} ({op}) carries an illegal boost level")
            }
            ValidateError::NegativeConfirmIndex(id) => {
                write!(f, "confirm_store {id} has a negative index")
            }
        }
    }
}

impl std::error::Error for ValidateError {}

/// Operand-class requirement.
#[derive(Clone, Copy, PartialEq)]
pub(crate) enum Req {
    None,
    Int,
    Fp,
    Any,
}

fn check_req(
    slot: Option<sentinel_isa::Reg>,
    req: Req,
    what: &'static str,
) -> Result<(), &'static str> {
    match (slot, req) {
        (None, Req::None) => Ok(()),
        (Some(_), Req::None) => Err(match what {
            "dest" => "unexpected destination operand",
            "src1" => "unexpected first source operand",
            _ => "unexpected second source operand",
        }),
        (None, _) => Err(match what {
            "dest" => "missing destination operand",
            "src1" => "missing first source operand",
            _ => "missing second source operand",
        }),
        (Some(r), Req::Int) => {
            if r.class() == RegClass::Int {
                Ok(())
            } else {
                Err("expected an integer register")
            }
        }
        (Some(r), Req::Fp) => {
            if r.class() == RegClass::Fp {
                Ok(())
            } else {
                Err("expected a floating-point register")
            }
        }
        (Some(_), Req::Any) => Ok(()),
    }
}

/// (dest, src1, src2, needs_target) requirement per opcode.
pub(crate) fn signature(op: Opcode) -> (Req, Req, Req, bool) {
    use Opcode::*;
    use Req::*;
    match op {
        Nop | Jsr | Io | Halt => (None, None, None, false),
        Li => (Int, None, None, false),
        FLi => (Fp, None, None, false),
        Mov => (Int, Int, None, false),
        FMov => (Fp, Fp, None, false),
        Add | Sub | And | Or | Xor | Sll | Srl | Sra | Slt | Seq | Mul | Div | Rem => {
            (Int, Int, Int, false)
        }
        AddI | AndI | OrI | XorI | SllI | SrlI | SltI => (Int, Int, None, false),
        FAdd | FSub | FMul | FDiv => (Fp, Fp, Fp, false),
        FCvtIF => (Fp, Int, None, false),
        FCvtFI => (Int, Fp, None, false),
        FLt | FEq => (Int, Fp, Fp, false),
        LdW | LdB => (Int, None, Int, false),
        FLd => (Fp, None, Int, false),
        StW | StB => (None, Int, Int, false),
        FSt => (None, Fp, Int, false),
        LdTag => (Any, None, Int, false),
        StTag => (None, Any, Int, false),
        Beq | Bne | Blt | Bge => (None, Int, Int, true),
        Jump => (None, None, None, true),
        CheckExcept => (Any, Any, None, false),
        ConfirmStore => (None, None, None, false),
        ClearTag => (Any, None, None, false),
    }
}

fn check_insn(insn: &Insn) -> Result<(), &'static str> {
    let (d, s1, s2, needs_target) = signature(insn.op);
    check_req(insn.dest, d, "dest")?;
    check_req(insn.src1, s1, "src1")?;
    check_req(insn.src2, s2, "src2")?;
    if needs_target && insn.target.is_none() {
        return Err("missing branch target");
    }
    if !needs_target && insn.target.is_some() {
        return Err("unexpected branch target");
    }
    Ok(())
}

/// Validates a function, returning every structural error found.
///
/// An empty result means the function is well-formed: all ids are assigned
/// and unique, all branch targets exist, all operand shapes and register
/// classes match their opcodes, labels are unique, and the speculative
/// modifier only appears on architecturally speculatable opcodes.
///
/// # Examples
///
/// ```
/// use sentinel_prog::{validate, ProgramBuilder};
/// use sentinel_isa::Insn;
///
/// let mut b = ProgramBuilder::new("ok");
/// b.block("entry");
/// b.push(Insn::halt());
/// assert!(validate(&b.finish()).is_empty());
/// ```
pub fn validate(func: &Function) -> Vec<ValidateError> {
    let mut errs = Vec::new();
    if func.block_count() == 0 {
        errs.push(ValidateError::Empty);
        return errs;
    }

    let mut labels = HashSet::new();
    for b in func.blocks() {
        if !labels.insert(b.label.clone()) {
            errs.push(ValidateError::DuplicateLabel(b.label.clone()));
        }
    }

    let mut ids = HashSet::new();
    for b in func.blocks() {
        for (pos, insn) in b.insns.iter().enumerate() {
            if insn.id == InsnId::UNASSIGNED {
                errs.push(ValidateError::UnassignedId(b.id, pos));
            } else if !ids.insert(insn.id) {
                errs.push(ValidateError::DuplicateId(insn.id));
            }
            if let Some(t) = insn.target {
                if t.index() >= func.block_count() {
                    errs.push(ValidateError::BadTarget(insn.id, t));
                }
            }
            if let Err(why) = check_insn(insn) {
                errs.push(ValidateError::BadOperands(insn.id, insn.op, why));
            }
            if insn.speculative && !insn.op.may_be_speculative() {
                errs.push(ValidateError::IllegalSpeculation(insn.id, insn.op));
            }
            if insn.boost > 0 && (insn.speculative || !insn.op.may_be_speculative()) {
                errs.push(ValidateError::IllegalBoost(insn.id, insn.op));
            }
            if insn.op == Opcode::ConfirmStore && insn.imm < 0 {
                errs.push(ValidateError::NegativeConfirmIndex(insn.id));
            }
        }
    }
    errs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProgramBuilder;
    use sentinel_isa::Reg;

    fn ok_fn() -> Function {
        let mut b = ProgramBuilder::new("f");
        let e = b.block("entry");
        let x = b.block("exit");
        b.switch_to(e);
        b.push(Insn::li(Reg::int(1), 3));
        b.push(Insn::branch(Opcode::Beq, Reg::int(1), Reg::ZERO, x));
        b.push(Insn::fli(Reg::fp(0), 2.0));
        b.push(Insn::alu(Opcode::FAdd, Reg::fp(1), Reg::fp(0), Reg::fp(0)));
        b.switch_to(x);
        b.push(Insn::halt());
        b.finish()
    }

    #[test]
    fn well_formed_passes() {
        assert!(validate(&ok_fn()).is_empty());
    }

    #[test]
    fn empty_function_rejected() {
        assert_eq!(validate(&Function::new("e")), vec![ValidateError::Empty]);
    }

    #[test]
    fn bad_target_detected() {
        let mut f = ok_fn();
        let e = f.entry();
        f.push_insn(e, Insn::jump(BlockId(99)));
        assert!(validate(&f)
            .iter()
            .any(|e| matches!(e, ValidateError::BadTarget(_, BlockId(99)))));
    }

    #[test]
    fn wrong_register_class_detected() {
        let mut f = ok_fn();
        let e = f.entry();
        // fadd with integer sources is ill-formed.
        f.push_insn(
            e,
            Insn::alu(Opcode::FAdd, Reg::fp(2), Reg::int(1), Reg::int(2)),
        );
        assert!(validate(&f)
            .iter()
            .any(|e| matches!(e, ValidateError::BadOperands(_, Opcode::FAdd, _))));
    }

    #[test]
    fn missing_operand_detected() {
        let mut f = ok_fn();
        let e = f.entry();
        f.push_insn(e, Insn::new(Opcode::Add)); // no operands at all
        assert!(validate(&f)
            .iter()
            .any(|e| matches!(e, ValidateError::BadOperands(_, Opcode::Add, _))));
    }

    #[test]
    fn illegal_speculation_detected() {
        let mut f = ok_fn();
        let e = f.entry();
        let mut j = Insn::jsr();
        j.speculative = true;
        f.push_insn(e, j);
        assert!(validate(&f)
            .iter()
            .any(|e| matches!(e, ValidateError::IllegalSpeculation(_, Opcode::Jsr))));
    }

    #[test]
    fn duplicate_label_detected() {
        let mut f = Function::new("f");
        f.add_block("a");
        f.add_block("a");
        assert!(validate(&f)
            .iter()
            .any(|e| matches!(e, ValidateError::DuplicateLabel(_))));
    }

    #[test]
    fn duplicate_id_detected() {
        let mut f = Function::new("f");
        let b = f.add_block("entry");
        f.push_insn(b, Insn::nop());
        // Force a duplicate id by hand.
        let dup = f.block(b).insns[0].clone();
        f.block_mut(b).insns.push(dup);
        assert!(validate(&f)
            .iter()
            .any(|e| matches!(e, ValidateError::DuplicateId(_))));
    }

    #[test]
    fn all_opcodes_have_consistent_signatures() {
        // Every opcode's canonical constructor output must validate.
        let r = Reg::int(1);
        let q = Reg::int(2);
        let fr = Reg::fp(1);
        let fq = Reg::fp(2);
        let t = BlockId(0);
        let samples = vec![
            Insn::nop(),
            Insn::li(r, 1),
            Insn::fli(fr, 1.0),
            Insn::mov(r, q),
            Insn::fmov(fr, fq),
            Insn::alu(Opcode::Add, r, q, q),
            Insn::alu(Opcode::Mul, r, q, q),
            Insn::alu(Opcode::Div, r, q, q),
            Insn::alui(Opcode::AddI, r, q, 1),
            Insn::alu(Opcode::FAdd, fr, fq, fq),
            Insn::alu(Opcode::FLt, r, fq, fq),
            Insn {
                dest: Some(fr),
                src1: Some(r),
                ..Insn::new(Opcode::FCvtIF)
            },
            Insn {
                dest: Some(r),
                src1: Some(fr),
                ..Insn::new(Opcode::FCvtFI)
            },
            Insn::ld_w(r, q, 0),
            Insn::st_w(r, q, 0),
            Insn::ld_b(r, q, 0),
            Insn::st_b(r, q, 0),
            Insn::fld(fr, q, 0),
            Insn::fst(fr, q, 0),
            Insn::ld_tag(fr, q, 0),
            Insn::st_tag(r, q, 0),
            Insn::branch(Opcode::Beq, r, q, t),
            Insn::jump(t),
            Insn::jsr(),
            Insn::io(),
            Insn::halt(),
            Insn::check_exception(r),
            Insn::confirm_store(0),
            Insn::clear_tag(fr),
        ];
        let mut f = Function::new("sig");
        let b = f.add_block("entry");
        for s in samples {
            f.push_insn(b, s);
        }
        let errs = validate(&f);
        assert!(errs.is_empty(), "unexpected errors: {errs:?}");
    }
}
