//! Blocks: superblock-shaped extended basic blocks.

use sentinel_isa::{BlockId, Insn, InsnId};
use std::fmt;

/// An extended basic block in the paper's superblock shape: single entry at
/// the top, one or more exits (side-exit branches anywhere inside, plus the
/// fall-through off the end).
///
/// Instructions appear in sequential program order. After scheduling, the
/// order within a block is the *issue* order produced by the list
/// scheduler; the original sequential order is recoverable through
/// instruction ids.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Stable identifier (never reused within a function).
    pub id: BlockId,
    /// Human-readable label used by the assembler.
    pub label: String,
    /// Instructions in program order.
    pub insns: Vec<Insn>,
}

impl Block {
    /// Creates an empty block.
    pub fn new(id: BlockId, label: impl Into<String>) -> Block {
        Block {
            id,
            label: label.into(),
            insns: Vec::new(),
        }
    }

    /// Returns `true` if the block ends with an instruction that never
    /// falls through (`jump` or `halt`).
    pub fn ends_in_unconditional(&self) -> bool {
        self.insns.last().is_some_and(|i| {
            matches!(
                i.op,
                sentinel_isa::Opcode::Jump | sentinel_isa::Opcode::Halt
            )
        })
    }

    /// Branch targets of all control-transfer instructions in the block,
    /// in program order.
    pub fn branch_targets(&self) -> impl Iterator<Item = BlockId> + '_ {
        self.insns.iter().filter_map(|i| i.target)
    }

    /// Finds the position of an instruction by id.
    pub fn position_of(&self, id: InsnId) -> Option<usize> {
        self.insns.iter().position(|i| i.id == id)
    }

    /// Number of conditional branches in the block (the superblock's side
    /// exits).
    pub fn side_exit_count(&self) -> usize {
        self.insns.iter().filter(|i| i.op.is_cond_branch()).count()
    }
}

impl fmt::Display for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}:", self.label)?;
        for insn in &self.insns {
            writeln!(f, "    {insn}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sentinel_isa::{Opcode, Reg};

    fn sample() -> Block {
        let mut b = Block::new(BlockId(0), "entry");
        b.insns.push(Insn::li(Reg::int(1), 5).with_id(InsnId(0)));
        b.insns
            .push(Insn::branch(Opcode::Beq, Reg::int(1), Reg::ZERO, BlockId(2)).with_id(InsnId(1)));
        b.insns
            .push(Insn::addi(Reg::int(2), Reg::int(1), 1).with_id(InsnId(2)));
        b
    }

    #[test]
    fn side_exits_and_targets() {
        let b = sample();
        assert_eq!(b.side_exit_count(), 1);
        assert_eq!(b.branch_targets().collect::<Vec<_>>(), vec![BlockId(2)]);
        assert!(!b.ends_in_unconditional());
    }

    #[test]
    fn ends_in_unconditional_detects_halt_and_jump() {
        let mut b = sample();
        b.insns.push(Insn::halt().with_id(InsnId(3)));
        assert!(b.ends_in_unconditional());
        b.insns.pop();
        b.insns.push(Insn::jump(BlockId(0)).with_id(InsnId(4)));
        assert!(b.ends_in_unconditional());
    }

    #[test]
    fn position_of_finds_by_id() {
        let b = sample();
        assert_eq!(b.position_of(InsnId(2)), Some(2));
        assert_eq!(b.position_of(InsnId(99)), None);
    }

    #[test]
    fn display_includes_label_and_insns() {
        let s = sample().to_string();
        assert!(s.starts_with("entry:"));
        assert!(s.contains("li r1, 5"));
    }
}
