//! The service itself: acceptor thread, request routing, and lifecycle.
//!
//! One accepted connection is one unit of work, and with HTTP/1.1
//! keep-alive a worker **owns the connection** for its whole lifetime:
//! it loops read → dispatch → write until the client asks to close,
//! the idle timeout expires between requests, or the per-connection
//! request bound is reached. The acceptor owns admission control
//! (counting connections, bouncing to `429` when the worker pool's
//! queue is full); workers own everything else (parse, route, compute
//! or hit the cache, respond). Shutdown stops intake first, then
//! drains the queue, so every admitted connection finishes its
//! in-flight request.
//!
//! `POST /v1/batch` fans its jobs out across the same pool: idle
//! workers pick jobs up as best-effort tasks while the worker that
//! owns the batch's connection keeps executing jobs itself — on a
//! saturated pool a batch degrades to sequential execution on its own
//! worker, never to a deadlock.

use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use sentinel_trace::serve::{
    BATCH_JOBS, BATCH_JOB_ERRORS, CONNECTIONS, KEEPALIVE_REUSED, PANICS, REJECTED, REQUESTS,
    REQUEST_MICROS, RESPONSES_CLIENT_ERROR, RESPONSES_OK, RESPONSES_SERVER_ERROR,
};
use sentinel_trace::{Metrics, SharedMetrics};
use sentinel_workloads::Workload;

use sentinel_sim::ProgramCache;

use crate::api::{ApiError, ApiRequest, ApiResponse, BatchRequest, JobKind, SimProgramCache};
use crate::cache::ResponseCache;
use crate::http::{self, ReadError, Request, Response};
use crate::pool::{Submitter, WorkerPool};
use crate::prom;

/// Test/diagnostic hook run on every parsed request, inside the same
/// `catch_unwind` as the router — a hook that panics exercises the
/// 500-on-this-request-only path.
pub type JobHook = Arc<dyn Fn(&Request) + Send + Sync>;

/// Test/diagnostic hook run on every API job (single-endpoint and
/// batch alike), inside the per-job `catch_unwind` — a panicking hook
/// exercises the error-entry-not-whole-batch path.
pub type ApiHook = Arc<dyn Fn(&ApiRequest) + Send + Sync>;

/// Service tuning knobs.
#[derive(Clone)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Worker threads servicing connections.
    pub workers: usize,
    /// Bounded queue depth between acceptor and workers.
    pub queue_depth: usize,
    /// Response-cache capacity (entries, LRU-bounded).
    pub cache_capacity: usize,
    /// Spill directory for the persistent response cache; `None`
    /// keeps the cache memory-only.
    pub cache_dir: Option<PathBuf>,
    /// Per-request body limit in bytes.
    pub max_body: usize,
    /// How long a kept-alive connection may sit idle between requests
    /// (also bounds reads mid-request).
    pub idle_timeout: Duration,
    /// Per-connection write timeout.
    pub write_timeout: Duration,
    /// Requests served on one connection before the server closes it
    /// (bounds how long one client can monopolize a worker).
    pub max_requests_per_conn: usize,
    /// Upper bound on jobs in one `POST /v1/batch` request.
    pub batch_max_jobs: usize,
    /// Optional per-request hook (tests inject panics through this).
    pub job_hook: Option<JobHook>,
    /// Optional per-API-job hook (tests inject per-job panics).
    pub api_hook: Option<ApiHook>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_depth: 64,
            cache_capacity: 1024,
            cache_dir: None,
            max_body: http::DEFAULT_MAX_BODY_BYTES,
            idle_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(10),
            max_requests_per_conn: 1000,
            batch_max_jobs: crate::api::DEFAULT_MAX_BATCH_JOBS,
            job_hook: None,
            api_hook: None,
        }
    }
}

/// Routes parsed requests to endpoint logic. Public so tests can
/// compare an HTTP response byte-for-byte against the same route
/// evaluated in-process.
pub struct Handler {
    metrics: SharedMetrics,
    cache: Arc<ResponseCache>,
    /// Decoded-program cache shared by every worker, keyed by schedule
    /// hash: each distinct (program, model, width, recovery,
    /// store-buffer) point is compiled — and, for turbo requests,
    /// decoded — exactly once per process, across engines and replays.
    /// Counts `sim.program_cache.{hit,miss,evict}` into `/metrics`.
    programs: SimProgramCache,
    workloads: Arc<Vec<Workload>>,
    batch_max_jobs: usize,
    api_hook: Option<ApiHook>,
    /// Set once the worker pool exists; absent (e.g. in-process
    /// tests), batches run sequentially on the calling thread.
    submitter: OnceLock<Submitter>,
}

/// Entry bound for the handler's decoded-program cache. Prepared
/// programs are heavier than response bodies (a scheduled function
/// plus, lazily, its decode), so the bound is its own knob rather than
/// the response cache's.
const PROGRAM_CACHE_CAPACITY: usize = 512;

impl Handler {
    /// A handler over `cache`, reporting into `metrics`, serving suite
    /// lookups from `workloads`.
    pub fn new(
        metrics: SharedMetrics,
        cache: Arc<ResponseCache>,
        workloads: Arc<Vec<Workload>>,
        batch_max_jobs: usize,
        api_hook: Option<ApiHook>,
    ) -> Handler {
        let programs = ProgramCache::with_metrics(PROGRAM_CACHE_CAPACITY, metrics.clone());
        Handler {
            metrics,
            cache,
            programs,
            workloads,
            batch_max_jobs,
            api_hook,
            submitter: OnceLock::new(),
        }
    }

    /// Wires the worker pool in so batches can fan out. Later calls
    /// are ignored (the pool is created once).
    pub fn set_submitter(&self, submitter: Submitter) {
        let _ = self.submitter.set(submitter);
    }

    /// Dispatches one request to its endpoint.
    pub fn route(&self, req: &Request) -> Response {
        match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/healthz") => Response::json(200, "{\"status\":\"ok\"}".to_string()),
            ("GET", "/metrics") => Response::text(200, prom::render(&self.metrics.snapshot())),
            ("POST", "/v1/compile") => self.single(req, JobKind::Compile),
            ("POST", "/v1/simulate") => self.single(req, JobKind::Simulate),
            ("POST", "/v1/batch") => self.batch(req),
            (_, "/healthz") | (_, "/metrics") => Response::method_not_allowed("GET"),
            (_, "/v1/compile") | (_, "/v1/simulate") | (_, "/v1/batch") => {
                Response::method_not_allowed("POST")
            }
            (_, path) => Response::not_found(path),
        }
    }

    /// Evaluates one typed request exactly as the HTTP endpoints do
    /// (cache included) — the in-process half of the byte-identity
    /// guarantee.
    pub fn execute(&self, job: &ApiRequest) -> ApiResponse {
        execute_job(
            job,
            &self.cache,
            &self.programs,
            &self.workloads,
            &self.metrics,
            self.api_hook.as_ref(),
        )
    }

    fn single(&self, req: &Request, kind: JobKind) -> Response {
        let Some(body) = req.body_str() else {
            return Response::bad_request("body must be UTF-8");
        };
        match ApiRequest::from_json(kind, body) {
            Ok(job) => self.execute(&job).into_http(),
            Err(e) => ApiResponse::Error(e).into_http(),
        }
    }

    fn batch(&self, req: &Request) -> Response {
        let Some(body) = req.body_str() else {
            return Response::bad_request("body must be UTF-8");
        };
        match BatchRequest::from_json(body, self.batch_max_jobs) {
            Ok(batch) => self.run_batch(batch.jobs).into_http(),
            Err(e) => ApiResponse::Error(e).into_http(),
        }
    }

    /// Runs a batch's jobs, fanning out across the pool when one is
    /// wired in. The calling thread always participates, so the batch
    /// completes even if no helper task ever gets picked up.
    pub fn run_batch(&self, jobs: Vec<ApiRequest>) -> ApiResponse {
        let n = jobs.len();
        let run = Arc::new(BatchRun::new(jobs));
        let exec: Arc<dyn Fn(&ApiRequest) -> ApiResponse + Send + Sync> = {
            let cache = Arc::clone(&self.cache);
            let programs = self.programs.clone();
            let workloads = Arc::clone(&self.workloads);
            let metrics = self.metrics.clone();
            let hook = self.api_hook.clone();
            Arc::new(move |job| {
                execute_job(job, &cache, &programs, &workloads, &metrics, hook.as_ref())
            })
        };
        if let Some(submitter) = self.submitter.get() {
            // Best-effort helpers: each drains jobs until none are
            // left. A full queue just means less parallelism.
            for _ in 0..n.saturating_sub(1) {
                let run = Arc::clone(&run);
                let exec = Arc::clone(&exec);
                let helper = move || while run.run_one(exec.as_ref()) {};
                if !submitter.try_spawn(Box::new(helper)) {
                    break;
                }
            }
        }
        while run.run_one(exec.as_ref()) {}
        let results = run.wait();
        self.metrics.count(BATCH_JOBS, n as u64);
        let errors = results.iter().filter(|r| !r.is_ok()).count();
        if errors > 0 {
            self.metrics.count(BATCH_JOB_ERRORS, errors as u64);
        }
        ApiResponse::Batch(results)
    }
}

/// Runs one API job under the response cache and a per-job
/// `catch_unwind`: a panicking job degrades to a 500-status error
/// entry, never further.
fn execute_job(
    job: &ApiRequest,
    cache: &ResponseCache,
    programs: &SimProgramCache,
    workloads: &[Workload],
    metrics: &SharedMetrics,
    hook: Option<&ApiHook>,
) -> ApiResponse {
    let computed = catch_unwind(AssertUnwindSafe(|| {
        if let Some(hook) = hook {
            hook(job);
        }
        let key = job.cache_key();
        if let Some(body) = cache.lookup(&key) {
            return ApiResponse::Result(body);
        }
        match job.run_with_cache(workloads, Some(programs)) {
            Ok(body) => {
                cache.insert(key, body.clone());
                ApiResponse::Result(body)
            }
            Err(e) => ApiResponse::Error(e),
        }
    }));
    computed.unwrap_or_else(|_| {
        metrics.count(PANICS, 1);
        ApiResponse::Error(ApiError {
            status: 500,
            message: "job panicked".to_string(),
        })
    })
}

/// Shared state of one in-flight batch: a claim counter hands each
/// job to exactly one executor (helper task or the owning worker),
/// and a condvar reports completion of the last job.
struct BatchRun {
    jobs: Vec<ApiRequest>,
    next: AtomicUsize,
    done: Mutex<(usize, Vec<Option<ApiResponse>>)>,
    finished: Condvar,
}

impl BatchRun {
    fn new(jobs: Vec<ApiRequest>) -> BatchRun {
        let n = jobs.len();
        BatchRun {
            jobs,
            next: AtomicUsize::new(0),
            done: Mutex::new((0, (0..n).map(|_| None).collect())),
            finished: Condvar::new(),
        }
    }

    /// Claims and runs the next unclaimed job; `false` when none are
    /// left to claim.
    fn run_one(&self, exec: &(dyn Fn(&ApiRequest) -> ApiResponse + Send + Sync)) -> bool {
        let i = self.next.fetch_add(1, Ordering::SeqCst);
        let Some(job) = self.jobs.get(i) else {
            return false;
        };
        let result = exec(job);
        let mut done = self.done.lock().unwrap_or_else(|e| e.into_inner());
        done.1[i] = Some(result);
        done.0 += 1;
        if done.0 == self.jobs.len() {
            self.finished.notify_all();
        }
        true
    }

    /// Blocks until every job has a result, then returns them in job
    /// order.
    fn wait(&self) -> Vec<ApiResponse> {
        let mut done = self.done.lock().unwrap_or_else(|e| e.into_inner());
        while done.0 < self.jobs.len() {
            done = self.finished.wait(done).unwrap_or_else(|e| e.into_inner());
        }
        done.1
            .iter_mut()
            .map(|slot| slot.take().expect("all jobs completed"))
            .collect()
    }
}

/// A running service: bound address, shared metrics, and the threads
/// behind them.
pub struct ServerHandle {
    addr: SocketAddr,
    metrics: SharedMetrics,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    pool: Option<WorkerPool>,
}

/// Starts the service per `cfg`, spawning the acceptor and worker
/// threads.
///
/// # Errors
///
/// Propagates bind failures and an uncreatable `cache_dir`.
pub fn start(cfg: ServerConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;

    let metrics = SharedMetrics::new();
    let cache = match &cfg.cache_dir {
        Some(dir) => ResponseCache::with_dir(cfg.cache_capacity, metrics.clone(), dir)?,
        None => ResponseCache::new(cfg.cache_capacity, metrics.clone()),
    };
    let handler = Arc::new(Handler::new(
        metrics.clone(),
        Arc::new(cache),
        sentinel_workloads::suite::shared(),
        cfg.batch_max_jobs,
        cfg.api_hook.clone(),
    ));
    let stop = Arc::new(AtomicBool::new(false));

    let conn_metrics = metrics.clone();
    let hook = cfg.job_hook.clone();
    let (max_body, max_requests) = (cfg.max_body, cfg.max_requests_per_conn.max(1));
    let conn_handler = Arc::clone(&handler);
    let pool = WorkerPool::new(
        cfg.workers,
        cfg.queue_depth,
        metrics.clone(),
        Arc::new(move |stream| {
            serve_connection(
                stream,
                &conn_handler,
                &conn_metrics,
                hook.as_ref(),
                max_body,
                max_requests,
            );
        }),
    );
    handler.set_submitter(pool.submitter());

    let acceptor = {
        let stop = Arc::clone(&stop);
        let metrics = metrics.clone();
        let (idle_timeout, write_timeout) = (cfg.idle_timeout, cfg.write_timeout);
        let submitter = pool.submitter();
        std::thread::Builder::new()
            .name("serve-acceptor".to_string())
            .spawn(move || {
                accept_loop(
                    &listener,
                    &stop,
                    &metrics,
                    &submitter,
                    idle_timeout,
                    write_timeout,
                );
            })
            .expect("spawn acceptor thread")
    };

    Ok(ServerHandle {
        addr,
        metrics,
        stop,
        acceptor: Some(acceptor),
        pool: Some(pool),
    })
}

fn accept_loop(
    listener: &TcpListener,
    stop: &AtomicBool,
    metrics: &SharedMetrics,
    pool: &Submitter,
    idle_timeout: Duration,
    write_timeout: Duration,
) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                metrics.count(CONNECTIONS, 1);
                // Workers use blocking reads with deadlines; the
                // nonblocking flag is only for the accept loop. The
                // read deadline doubles as the keep-alive idle bound.
                // Nagle off: head and body go out as separate writes,
                // and on a kept-alive socket the coalescing delay
                // would stack with the peer's delayed ACK (~40 ms per
                // exchange).
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_nodelay(true);
                let _ = stream.set_read_timeout(Some(idle_timeout));
                let _ = stream.set_write_timeout(Some(write_timeout));
                if let Err(mut bounced) = pool.try_submit(stream) {
                    metrics.count(REJECTED, 1);
                    metrics.count(RESPONSES_CLIENT_ERROR, 1);
                    let _ = http::write_response(&mut bounced, &Response::busy(1), true);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// One worker's whole tenure on one connection: loop read → dispatch
/// → write until the client closes (or asks to), the idle deadline
/// passes, or the request bound is hit.
fn serve_connection(
    stream: TcpStream,
    handler: &Handler,
    metrics: &SharedMetrics,
    hook: Option<&JobHook>,
    max_body: usize,
    max_requests: usize,
) {
    let Ok(mut writer) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    for served in 0..max_requests {
        let req = match http::read_request(&mut reader, max_body) {
            Ok(req) => req,
            Err(ReadError::Bad(resp)) => {
                // Protocol errors poison the stream (unread body
                // bytes); answer and close.
                metrics.count(RESPONSES_CLIENT_ERROR, 1);
                let _ = http::write_response(&mut writer, &resp, true);
                return;
            }
            // Clean end of session, peer vanished, or idle timeout:
            // nothing to answer.
            Err(ReadError::Closed | ReadError::Io(_)) => return,
        };
        let started = Instant::now();
        metrics.count(REQUESTS, 1);
        if served > 0 {
            metrics.count(KEEPALIVE_REUSED, 1);
        }
        let resp = match catch_unwind(AssertUnwindSafe(|| {
            if let Some(hook) = hook {
                hook(&req);
            }
            handler.route(&req)
        })) {
            Ok(resp) => resp,
            Err(_) => {
                metrics.count(PANICS, 1);
                Response::internal("request handler panicked")
            }
        };
        match resp.status {
            200..=299 => metrics.count(RESPONSES_OK, 1),
            400..=499 => metrics.count(RESPONSES_CLIENT_ERROR, 1),
            _ => metrics.count(RESPONSES_SERVER_ERROR, 1),
        }
        let close = !req.persistent() || served + 1 >= max_requests;
        let write_ok = http::write_response(&mut writer, &resp, close).is_ok();
        metrics.observe(REQUEST_MICROS, started.elapsed().as_micros() as u64);
        if !write_ok || close {
            return;
        }
    }
}

impl ServerHandle {
    /// The bound address (port resolved if `:0` was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The service's shared metrics registry.
    pub fn metrics(&self) -> SharedMetrics {
        self.metrics.clone()
    }

    /// Stops accepting, drains every queued connection, joins all
    /// threads, and returns the final metrics snapshot.
    pub fn shutdown(mut self) -> Metrics {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        if let Some(pool) = self.pool.take() {
            pool.shutdown();
        }
        self.metrics.snapshot()
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        if let Some(pool) = self.pool.take() {
            pool.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;

    fn test_config() -> ServerConfig {
        ServerConfig {
            workers: 2,
            queue_depth: 8,
            idle_timeout: Duration::from_millis(500),
            ..ServerConfig::default()
        }
    }

    fn one_shot(addr: &str) -> Client {
        Client::builder(addr).keep_alive(false).build()
    }

    #[test]
    fn healthz_and_metrics_round_trip() {
        let handle = start(test_config()).unwrap();
        let addr = handle.addr().to_string();
        let mut client = one_shot(&addr);
        let health = client.get("/healthz").unwrap();
        assert_eq!(health.status, 200);
        assert_eq!(health.body, "{\"status\":\"ok\"}");
        let metrics = client.get("/metrics").unwrap();
        assert_eq!(metrics.status, 200);
        assert!(
            metrics.body.contains("serve_http_connections"),
            "{}",
            metrics.body
        );
        drop(client);
        let final_metrics = handle.shutdown();
        assert!(final_metrics.counter(CONNECTIONS) >= 2);
        assert_eq!(final_metrics.counter(RESPONSES_OK), 2);
    }

    #[test]
    fn unknown_paths_and_methods_get_404_405() {
        let handle = start(test_config()).unwrap();
        let addr = handle.addr().to_string();
        let mut client = one_shot(&addr);
        assert_eq!(client.get("/nope").unwrap().status, 404);
        let r = client.post_json("/healthz", "{}").unwrap();
        assert_eq!(r.status, 405);
        assert!(r.headers.iter().any(|(n, v)| n == "allow" && v == "GET"));
        let r = client.get("/v1/batch").unwrap();
        assert_eq!(r.status, 405);
        assert!(r.headers.iter().any(|(n, v)| n == "allow" && v == "POST"));
        drop(client);
        let m = handle.shutdown();
        assert_eq!(m.counter(RESPONSES_CLIENT_ERROR), 3);
    }

    #[test]
    fn malformed_json_is_a_400_not_a_crash() {
        let handle = start(test_config()).unwrap();
        let addr = handle.addr().to_string();
        let mut client = one_shot(&addr);
        let r = client.post_json("/v1/compile", "{not json").unwrap();
        assert_eq!(r.status, 400);
        let r = client.post_json("/v1/simulate", "[]").unwrap();
        assert_eq!(r.status, 400);
        let r = client.post_json("/v1/batch", r#"{"jobs":[]}"#).unwrap();
        assert_eq!(r.status, 400);
        drop(client);
        handle.shutdown();
    }

    #[test]
    fn panicking_hook_degrades_to_500_on_that_request_only() {
        let mut cfg = test_config();
        cfg.job_hook = Some(Arc::new(|req: &Request| {
            if req.header("x-test").is_some_and(|v| v == "panic") {
                panic!("injected");
            }
        }));
        let handle = start(cfg).unwrap();
        let addr = handle.addr().to_string();
        let mut client = one_shot(&addr);
        let boom = client
            .request("GET", "/healthz", None, &[("x-test", "panic")])
            .unwrap();
        assert_eq!(boom.status, 500);
        // The pool and the service survive; the next request is fine.
        let ok = client.get("/healthz").unwrap();
        assert_eq!(ok.status, 200);
        drop(client);
        let m = handle.shutdown();
        assert_eq!(m.counter(PANICS), 1);
        assert_eq!(m.counter(RESPONSES_SERVER_ERROR), 1);
    }
}
