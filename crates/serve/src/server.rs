//! The service itself: acceptor thread, request routing, and lifecycle.
//!
//! One accepted connection is one unit of work. The acceptor owns
//! admission control (counting connections, bouncing to `429` when the
//! worker pool's queue is full); workers own everything else (parse,
//! route, compute or hit the cache, respond). Shutdown stops intake
//! first, then drains the queue, so every admitted request gets an
//! answer.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use sentinel_trace::serve::{
    CONNECTIONS, PANICS, REJECTED, REQUESTS, REQUEST_MICROS, RESPONSES_CLIENT_ERROR, RESPONSES_OK,
    RESPONSES_SERVER_ERROR,
};
use sentinel_trace::{Metrics, SharedMetrics};
use sentinel_workloads::Workload;

use crate::api::{self, CompileRequest, SimulateRequest};
use crate::cache::ResponseCache;
use crate::http::{self, ReadError, Request, Response};
use crate::pool::WorkerPool;
use crate::prom;

/// Test/diagnostic hook run on every parsed request, inside the same
/// `catch_unwind` as the router — a hook that panics exercises the
/// 500-on-this-request-only path.
pub type JobHook = Arc<dyn Fn(&Request) + Send + Sync>;

/// Service tuning knobs.
#[derive(Clone)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Worker threads servicing connections.
    pub workers: usize,
    /// Bounded queue depth between acceptor and workers.
    pub queue_depth: usize,
    /// Response-cache capacity (entries).
    pub cache_capacity: usize,
    /// Per-request body limit in bytes.
    pub max_body: usize,
    /// Per-connection read timeout.
    pub read_timeout: Duration,
    /// Per-connection write timeout.
    pub write_timeout: Duration,
    /// Optional per-request hook (tests inject panics through this).
    pub job_hook: Option<JobHook>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_depth: 64,
            cache_capacity: 1024,
            max_body: http::DEFAULT_MAX_BODY_BYTES,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            job_hook: None,
        }
    }
}

/// Routes parsed requests to endpoint logic. Public so tests can
/// compare an HTTP response byte-for-byte against the same route
/// evaluated in-process.
pub struct Handler {
    metrics: SharedMetrics,
    cache: ResponseCache,
    workloads: Arc<Vec<Workload>>,
}

impl Handler {
    /// A handler with its own cache, reporting into `metrics`, serving
    /// suite lookups from `workloads`.
    pub fn new(
        metrics: SharedMetrics,
        cache_capacity: usize,
        workloads: Arc<Vec<Workload>>,
    ) -> Handler {
        Handler {
            cache: ResponseCache::new(cache_capacity, metrics.clone()),
            metrics,
            workloads,
        }
    }

    /// Dispatches one request to its endpoint.
    pub fn route(&self, req: &Request) -> Response {
        match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/healthz") => Response::json(200, "{\"status\":\"ok\"}".to_string()),
            ("GET", "/metrics") => Response::text(200, prom::render(&self.metrics.snapshot())),
            ("POST", "/v1/compile") => self.compile(req),
            ("POST", "/v1/simulate") => self.simulate(req),
            (_, "/healthz") | (_, "/metrics") => Response::method_not_allowed("GET"),
            (_, "/v1/compile") | (_, "/v1/simulate") => Response::method_not_allowed("POST"),
            (_, path) => Response::not_found(path),
        }
    }

    /// Runs `build` under the response cache: serves a prior body on a
    /// key match, computes and retains on a miss (200 bodies only).
    fn cached(
        &self,
        key: String,
        build: impl FnOnce() -> Result<String, api::ApiError>,
    ) -> Response {
        if let Some(body) = self.cache.lookup(&key) {
            return Response::json(200, body);
        }
        match build() {
            Ok(body) => {
                self.cache.insert(key, body.clone());
                Response::json(200, body)
            }
            Err(e) => Response::json(e.status, http::error_body(&e.message)),
        }
    }

    fn compile(&self, req: &Request) -> Response {
        let Some(body) = req.body_str() else {
            return Response::bad_request("body must be UTF-8");
        };
        match CompileRequest::from_json(body) {
            Ok(cr) => self.cached(cr.cache_key(), || api::compile_response(&cr)),
            Err(e) => Response::json(e.status, http::error_body(&e.message)),
        }
    }

    fn simulate(&self, req: &Request) -> Response {
        let Some(body) = req.body_str() else {
            return Response::bad_request("body must be UTF-8");
        };
        match SimulateRequest::from_json(body) {
            Ok(sr) => self.cached(sr.cache_key(), || {
                api::simulate_response(&sr, &self.workloads)
            }),
            Err(e) => Response::json(e.status, http::error_body(&e.message)),
        }
    }
}

/// A running service: bound address, shared metrics, and the threads
/// behind them.
pub struct ServerHandle {
    addr: SocketAddr,
    metrics: SharedMetrics,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    pool: Option<WorkerPool>,
}

/// Starts the service per `cfg`, spawning the acceptor and worker
/// threads.
///
/// # Errors
///
/// Propagates bind failures.
pub fn start(cfg: ServerConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;

    let metrics = SharedMetrics::new();
    let handler = Arc::new(Handler::new(
        metrics.clone(),
        cfg.cache_capacity,
        sentinel_workloads::suite::shared(),
    ));
    let stop = Arc::new(AtomicBool::new(false));

    let conn_metrics = metrics.clone();
    let hook = cfg.job_hook.clone();
    let max_body = cfg.max_body;
    let pool = WorkerPool::new(
        cfg.workers,
        cfg.queue_depth,
        metrics.clone(),
        Arc::new(move |stream| {
            serve_connection(stream, &handler, &conn_metrics, hook.as_ref(), max_body);
        }),
    );

    let acceptor = {
        let stop = Arc::clone(&stop);
        let metrics = metrics.clone();
        let (read_timeout, write_timeout) = (cfg.read_timeout, cfg.write_timeout);
        let pool_ref = PoolRef::new(&pool);
        std::thread::Builder::new()
            .name("serve-acceptor".to_string())
            .spawn(move || {
                accept_loop(
                    &listener,
                    &stop,
                    &metrics,
                    &pool_ref,
                    read_timeout,
                    write_timeout,
                );
            })
            .expect("spawn acceptor thread")
    };

    Ok(ServerHandle {
        addr,
        metrics,
        stop,
        acceptor: Some(acceptor),
        pool: Some(pool),
    })
}

/// A clonable submit-only view of the pool for the acceptor thread
/// (the pool itself must stay with the handle so shutdown can join).
struct PoolRef {
    inner: Arc<dyn Fn(TcpStream) -> Result<(), TcpStream> + Send + Sync>,
}

impl PoolRef {
    fn new(pool: &WorkerPool) -> PoolRef {
        let submit = pool.submitter();
        PoolRef { inner: submit }
    }

    fn try_submit(&self, stream: TcpStream) -> Result<(), TcpStream> {
        (self.inner)(stream)
    }
}

fn accept_loop(
    listener: &TcpListener,
    stop: &AtomicBool,
    metrics: &SharedMetrics,
    pool: &PoolRef,
    read_timeout: Duration,
    write_timeout: Duration,
) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                metrics.count(CONNECTIONS, 1);
                // Workers use blocking reads with deadlines; the
                // nonblocking flag is only for the accept loop.
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_read_timeout(Some(read_timeout));
                let _ = stream.set_write_timeout(Some(write_timeout));
                if let Err(mut bounced) = pool.try_submit(stream) {
                    metrics.count(REJECTED, 1);
                    metrics.count(RESPONSES_CLIENT_ERROR, 1);
                    let _ = http::write_response(&mut bounced, &Response::busy(1));
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn serve_connection(
    mut stream: TcpStream,
    handler: &Handler,
    metrics: &SharedMetrics,
    hook: Option<&JobHook>,
    max_body: usize,
) {
    let started = Instant::now();
    let resp = match http::read_request(&mut stream, max_body) {
        Ok(req) => {
            metrics.count(REQUESTS, 1);
            match catch_unwind(AssertUnwindSafe(|| {
                if let Some(hook) = hook {
                    hook(&req);
                }
                handler.route(&req)
            })) {
                Ok(resp) => resp,
                Err(_) => {
                    metrics.count(PANICS, 1);
                    Response::internal("request handler panicked")
                }
            }
        }
        Err(ReadError::Bad(resp)) => resp,
        // The peer vanished or timed out mid-request: nothing to answer.
        Err(ReadError::Io(_)) => return,
    };
    match resp.status {
        200..=299 => metrics.count(RESPONSES_OK, 1),
        400..=499 => metrics.count(RESPONSES_CLIENT_ERROR, 1),
        _ => metrics.count(RESPONSES_SERVER_ERROR, 1),
    }
    let _ = http::write_response(&mut stream, &resp);
    metrics.observe(REQUEST_MICROS, started.elapsed().as_micros() as u64);
}

impl ServerHandle {
    /// The bound address (port resolved if `:0` was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The service's shared metrics registry.
    pub fn metrics(&self) -> SharedMetrics {
        self.metrics.clone()
    }

    /// Stops accepting, drains every queued connection, joins all
    /// threads, and returns the final metrics snapshot.
    pub fn shutdown(mut self) -> Metrics {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        if let Some(pool) = self.pool.take() {
            pool.shutdown();
        }
        self.metrics.snapshot()
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        if let Some(pool) = self.pool.take() {
            pool.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client;

    fn test_config() -> ServerConfig {
        ServerConfig {
            workers: 2,
            queue_depth: 8,
            ..ServerConfig::default()
        }
    }

    #[test]
    fn healthz_and_metrics_round_trip() {
        let handle = start(test_config()).unwrap();
        let addr = handle.addr().to_string();
        let health = client::get(&addr, "/healthz").unwrap();
        assert_eq!(health.status, 200);
        assert_eq!(health.body, "{\"status\":\"ok\"}");
        let metrics = client::get(&addr, "/metrics").unwrap();
        assert_eq!(metrics.status, 200);
        assert!(
            metrics.body.contains("serve_http_connections"),
            "{}",
            metrics.body
        );
        let final_metrics = handle.shutdown();
        assert!(final_metrics.counter(CONNECTIONS) >= 2);
        assert_eq!(final_metrics.counter(RESPONSES_OK), 2);
    }

    #[test]
    fn unknown_paths_and_methods_get_404_405() {
        let handle = start(test_config()).unwrap();
        let addr = handle.addr().to_string();
        assert_eq!(client::get(&addr, "/nope").unwrap().status, 404);
        let r = client::post_json(&addr, "/healthz", "{}").unwrap();
        assert_eq!(r.status, 405);
        assert!(r.headers.iter().any(|(n, v)| n == "allow" && v == "GET"));
        let m = handle.shutdown();
        assert_eq!(m.counter(RESPONSES_CLIENT_ERROR), 2);
    }

    #[test]
    fn malformed_json_is_a_400_not_a_crash() {
        let handle = start(test_config()).unwrap();
        let addr = handle.addr().to_string();
        let r = client::post_json(&addr, "/v1/compile", "{not json").unwrap();
        assert_eq!(r.status, 400);
        let r = client::post_json(&addr, "/v1/simulate", "[]").unwrap();
        assert_eq!(r.status, 400);
        handle.shutdown();
    }

    #[test]
    fn panicking_hook_degrades_to_500_on_that_request_only() {
        let mut cfg = test_config();
        cfg.job_hook = Some(Arc::new(|req: &Request| {
            if req.header("x-test").is_some_and(|v| v == "panic") {
                panic!("injected");
            }
        }));
        let handle = start(cfg).unwrap();
        let addr = handle.addr().to_string();
        let boom = client::request(&addr, "GET", "/healthz", None, &[("x-test", "panic")]).unwrap();
        assert_eq!(boom.status, 500);
        // The pool and the service survive; the next request is fine.
        let ok = client::get(&addr, "/healthz").unwrap();
        assert_eq!(ok.status, 200);
        let m = handle.shutdown();
        assert_eq!(m.counter(PANICS), 1);
        assert_eq!(m.counter(RESPONSES_SERVER_ERROR), 1);
    }
}
