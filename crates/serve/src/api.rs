//! Request/response vocabulary of the service: one **versioned typed
//! surface** — [`ApiRequest`] in, [`ApiResponse`] out — shared
//! verbatim by server dispatch and the [`Client`](crate::client).
//!
//! Every request body may carry an explicit `"v": 1` field (the
//! [`Client`](crate::client) always sends it; a missing `v` is read as
//! v1 for compatibility); an unknown version or unknown field answers
//! 400 with a JSON error body naming the offender. A request is a
//! `compile` or `simulate` job — `POST /v1/batch` accepts
//! `{"v":1,"jobs":[...]}` where each job is the same object shape plus
//! a `"kind"` discriminator, and answers per-job results-or-errors in
//! order.
//!
//! Response bodies are built with the deterministic `ObjWriter` (fixed
//! key order, no wall-clock fields), so the same request always yields
//! the same bytes — the property the content-hash cache and the
//! byte-identical-to-in-process acceptance test both rely on.

use std::sync::{Arc, OnceLock};

use sentinel_core::{CompileSession, SchedOptions, SchedStats, SchedulingModel};
use sentinel_isa::MachineDesc;
use sentinel_prog::{asm, Function};
use sentinel_sim::{
    Engine, ProgramCache, RunOutcome, SimConfig, SimSession, SpeculationSemantics, TurboProgram,
};
use sentinel_spec::{JobSpec, ProgramRef, SpecKind};
use sentinel_trace::json::{self, ObjWriter, Value};
use sentinel_workloads::Workload;

/// Largest issue width a request may ask for (guards allocation).
pub const MAX_WIDTH: usize = 64;

/// The wire-format version this server speaks. Requests may state it
/// explicitly as `"v": 1`; any other value is a 400.
pub const API_VERSION: u64 = 1;

/// Default upper bound on jobs per `POST /v1/batch` request.
pub const DEFAULT_MAX_BATCH_JOBS: usize = 64;

/// A request the service rejected, with the HTTP status to answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiError {
    /// HTTP status (400 for everything a client got wrong).
    pub status: u16,
    /// Human-readable description (becomes `{"error":...}`).
    pub message: String,
}

impl ApiError {
    /// A 400 with the given message.
    pub fn bad(message: impl Into<String>) -> ApiError {
        ApiError {
            status: 400,
            message: message.into(),
        }
    }
}

/// Parses a scheduling-model spec (`R`, `G`, `S`, `T`, `B<k>`, or the
/// long names the CLI accepts).
pub fn parse_model(s: &str) -> Result<SchedulingModel, String> {
    match s {
        "R" | "restricted" => Ok(SchedulingModel::RestrictedPercolation),
        "G" | "general" => Ok(SchedulingModel::GeneralPercolation),
        "S" | "sentinel" => Ok(SchedulingModel::Sentinel),
        "T" | "stores" => Ok(SchedulingModel::SentinelStores),
        other => match other.strip_prefix('B').and_then(|k| k.parse::<u8>().ok()) {
            Some(levels) => Ok(SchedulingModel::Boosting(levels)),
            None => Err(format!("unknown model '{other}' (R, G, S, T, or B<k>)")),
        },
    }
}

/// The canonical spelling of a model in responses and cache keys
/// (delegates to the shared encoding in `sentinel-spec`).
pub fn model_str(model: SchedulingModel) -> String {
    sentinel_spec::model_str(model)
}

/// The speculative-fault semantics each scheduling model runs under
/// (mirrors the evaluation harness).
fn semantics_for(model: SchedulingModel) -> SpeculationSemantics {
    match model {
        SchedulingModel::GeneralPercolation => SpeculationSemantics::Silent,
        _ => SpeculationSemantics::SentinelTags,
    }
}

/// Shared model/width/recovery knobs of both endpoints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Knobs {
    /// Scheduling model (default S).
    pub model: SchedulingModel,
    /// Issue width (default 8, max [`MAX_WIDTH`]).
    pub width: usize,
    /// Enforce the §3.7 recovery constraints.
    pub recovery: bool,
}

impl Default for Knobs {
    fn default() -> Knobs {
        Knobs {
            model: SchedulingModel::Sentinel,
            width: 8,
            recovery: false,
        }
    }
}

/// `POST /v1/compile`: asm text in, schedule statistics out.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileRequest {
    /// Assembly source text.
    pub source: String,
    /// Model/width/recovery.
    pub knobs: Knobs,
    /// Run the inter-pass IR verifier between stages.
    pub verify_passes: bool,
    /// Include the scheduled program (`"asm"`) in the response.
    pub emit: bool,
}

/// What a simulate request runs: a suite benchmark or inline source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Program {
    /// A benchmark from the paper's 17-program suite, by name.
    Suite(String),
    /// Inline assembly source.
    Source(String),
}

/// `POST /v1/simulate`: workload + machine knobs in, `Measured`-style
/// statistics out.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimulateRequest {
    /// What to run.
    pub program: Program,
    /// Model/width/recovery.
    pub knobs: Knobs,
    /// Execution engine (default fast).
    pub engine: Engine,
    /// Memory regions to map before running inline source:
    /// `(start, len)`.
    pub map: Vec<(u64, u64)>,
    /// Initial memory words for inline source: `(addr, bits)`.
    pub word: Vec<(u64, u64)>,
}

/// The two job kinds of the API, the discriminator batch jobs carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobKind {
    /// Schedule assembly text, report schedule statistics.
    Compile,
    /// Schedule then run a workload, report execution statistics.
    Simulate,
}

impl JobKind {
    /// The `"kind"` discriminator string.
    pub fn as_str(self) -> &'static str {
        match self {
            JobKind::Compile => "compile",
            JobKind::Simulate => "simulate",
        }
    }

    /// The endpoint path this kind is served on.
    pub fn path(self) -> &'static str {
        match self {
            JobKind::Compile => "/v1/compile",
            JobKind::Simulate => "/v1/simulate",
        }
    }
}

impl std::str::FromStr for JobKind {
    type Err = String;
    fn from_str(s: &str) -> Result<JobKind, String> {
        match s {
            "compile" => Ok(JobKind::Compile),
            "simulate" => Ok(JobKind::Simulate),
            other => Err(format!("unknown kind '{other}' (compile or simulate)")),
        }
    }
}

/// Validates the optional `"v"` field: absent reads as v1, anything
/// other than [`API_VERSION`] is a 400 naming the offending version.
fn check_version(v: &Value) -> Result<(), ApiError> {
    match v.get("v") {
        None => Ok(()),
        Some(f) => match f.as_u64() {
            Some(API_VERSION) => Ok(()),
            Some(other) => Err(ApiError::bad(format!(
                "unsupported api version {other} (this server speaks v{API_VERSION})"
            ))),
            None => Err(ApiError::bad("'v' must be an integer")),
        },
    }
}

/// Validates the optional `"kind"` field against how the request was
/// routed (its endpoint, or the batch job discriminator).
fn check_kind(v: &Value, expected: JobKind) -> Result<(), ApiError> {
    match opt_str(v, "kind")? {
        None => Ok(()),
        Some(k) => {
            let kind: JobKind = k.parse().map_err(ApiError::bad)?;
            if kind == expected {
                Ok(())
            } else {
                Err(ApiError::bad(format!(
                    "'kind' is '{}' but the request was routed as '{}'",
                    kind.as_str(),
                    expected.as_str()
                )))
            }
        }
    }
}

fn expect_object<'v>(v: &'v Value, known: &[&str]) -> Result<&'v [(String, Value)], ApiError> {
    let Value::Object(members) = v else {
        return Err(ApiError::bad("request body must be a JSON object"));
    };
    for (k, _) in members {
        if !known.contains(&k.as_str()) {
            return Err(ApiError::bad(format!("unknown field '{k}'")));
        }
    }
    Ok(members)
}

fn opt_str(v: &Value, key: &str) -> Result<Option<String>, ApiError> {
    match v.get(key) {
        None => Ok(None),
        Some(f) => f
            .as_str()
            .map(|s| Some(s.to_string()))
            .ok_or_else(|| ApiError::bad(format!("'{key}' must be a string"))),
    }
}

fn opt_bool(v: &Value, key: &str) -> Result<bool, ApiError> {
    match v.get(key) {
        None => Ok(false),
        Some(f) => f
            .as_bool()
            .ok_or_else(|| ApiError::bad(format!("'{key}' must be a boolean"))),
    }
}

fn knobs_from(v: &Value) -> Result<Knobs, ApiError> {
    let mut knobs = Knobs::default();
    if let Some(m) = opt_str(v, "model")? {
        knobs.model = parse_model(&m).map_err(ApiError::bad)?;
    }
    if let Some(w) = v.get("width") {
        let w = w
            .as_u64()
            .filter(|&w| (1..=MAX_WIDTH as u64).contains(&w))
            .ok_or_else(|| {
                ApiError::bad(format!("'width' must be an integer in 1..={MAX_WIDTH}"))
            })?;
        knobs.width = w as usize;
    }
    knobs.recovery = opt_bool(v, "recovery")?;
    Ok(knobs)
}

fn pairs_from(v: &Value, key: &str) -> Result<Vec<(u64, u64)>, ApiError> {
    let Some(field) = v.get(key) else {
        return Ok(Vec::new());
    };
    let items = field
        .as_array()
        .ok_or_else(|| ApiError::bad(format!("'{key}' must be an array of [a, b] pairs")))?;
    items
        .iter()
        .map(|item| {
            let pair = item.as_array().filter(|p| p.len() == 2);
            let nums: Option<(u64, u64)> = pair.and_then(|p| {
                Some((
                    p[0].as_i64().map(|n| n as u64)?,
                    p[1].as_i64().map(|n| n as u64)?,
                ))
            });
            nums.ok_or_else(|| ApiError::bad(format!("'{key}' entries must be [int, int] pairs")))
        })
        .collect()
}

impl CompileRequest {
    /// Parses a compile request from an already-parsed JSON object
    /// (version and kind fields validated by the caller).
    fn from_value(v: &Value) -> Result<CompileRequest, ApiError> {
        expect_object(
            v,
            &[
                "v",
                "kind",
                "source",
                "model",
                "width",
                "recovery",
                "verify_passes",
                "emit",
            ],
        )?;
        let source = opt_str(v, "source")?
            .ok_or_else(|| ApiError::bad("missing required field 'source'"))?;
        Ok(CompileRequest {
            source,
            knobs: knobs_from(v)?,
            verify_passes: opt_bool(v, "verify_passes")?,
            emit: opt_bool(v, "emit")?,
        })
    }

    /// The canonical [`JobSpec`] this request describes (the identity
    /// every cache and repro line agrees on).
    pub fn to_spec(&self) -> JobSpec {
        let mut spec = JobSpec::compile(self.source.clone(), self.knobs.model, self.knobs.width);
        spec.recovery = self.knobs.recovery;
        spec.verify_passes = self.verify_passes;
        spec.emit = self.emit;
        spec
    }

    /// The content-hash cache key: the spec's canonical encoding.
    pub fn cache_key(&self) -> String {
        self.to_spec().canonical()
    }
}

impl SimulateRequest {
    /// Parses a simulate request from an already-parsed JSON object
    /// (version and kind fields validated by the caller).
    fn from_value(v: &Value) -> Result<SimulateRequest, ApiError> {
        expect_object(
            v,
            &[
                "v", "kind", "suite", "source", "model", "width", "recovery", "engine", "map",
                "word",
            ],
        )?;
        let program = match (opt_str(v, "suite")?, opt_str(v, "source")?) {
            (Some(name), None) => Program::Suite(name),
            (None, Some(text)) => Program::Source(text),
            _ => {
                return Err(ApiError::bad(
                    "exactly one of 'suite' or 'source' is required",
                ))
            }
        };
        let engine = match opt_str(v, "engine")? {
            None => Engine::default(),
            Some(s) => s.parse::<Engine>().map_err(ApiError::bad)?,
        };
        let (map, word) = (pairs_from(v, "map")?, pairs_from(v, "word")?);
        if matches!(program, Program::Suite(_)) && (!map.is_empty() || !word.is_empty()) {
            return Err(ApiError::bad(
                "'map'/'word' only apply to inline 'source' programs",
            ));
        }
        Ok(SimulateRequest {
            program,
            knobs: knobs_from(v)?,
            engine,
            map,
            word,
        })
    }

    /// The canonical [`JobSpec`] this request describes. The
    /// store-buffer depth is resolved from the same machine
    /// description [`run`](ApiRequest::run) will simulate with, so a
    /// serve-derived spec and a bench-grid-derived spec for the same
    /// job are identical — the cross-layer key contract pinned by
    /// `tests/spec_keys.rs`.
    pub fn to_spec(&self) -> JobSpec {
        let program = match &self.program {
            Program::Suite(name) => ProgramRef::Suite(name.clone()),
            Program::Source(text) => ProgramRef::Source(text.clone()),
        };
        let mut spec = JobSpec::simulate(program, self.knobs.model, self.knobs.width);
        spec.engine = self.engine;
        spec.recovery = self.knobs.recovery;
        spec.store_buffer = mdes_for(&self.knobs).store_buffer_size();
        spec.map = self.map.clone();
        spec.word = self.word.clone();
        spec
    }

    /// The content-hash cache key: the spec's canonical encoding.
    pub fn cache_key(&self) -> String {
        self.to_spec().canonical()
    }
}

/// One request of the versioned API surface: a compile or simulate
/// job. The same object shape parses from a single endpoint body
/// (kind implied by the path) and from a `/v1/batch` job entry (kind
/// explicit); [`ApiRequest::to_json`] always spells out both `v` and
/// `kind`, so a serialized request is valid either way.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ApiRequest {
    /// `kind: "compile"` — schedule assembly, report statistics.
    Compile(CompileRequest),
    /// `kind: "simulate"` — schedule and run, report statistics.
    Simulate(SimulateRequest),
}

impl ApiRequest {
    /// Parses a request body routed to `kind`'s endpoint.
    ///
    /// # Errors
    ///
    /// 400 on malformed JSON, an unknown `v` or field (named in the
    /// error), a `kind` contradicting the endpoint, or bad knob
    /// values.
    pub fn from_json(kind: JobKind, body: &str) -> Result<ApiRequest, ApiError> {
        let v = json::parse(body).map_err(|e| ApiError::bad(e.to_string()))?;
        ApiRequest::from_value(&v, kind)
    }

    /// Parses one batch job entry: the job's own `"kind"` field picks
    /// the variant.
    fn job_from_value(v: &Value) -> Result<ApiRequest, ApiError> {
        let kind: JobKind = opt_str(v, "kind")?
            .ok_or_else(|| ApiError::bad("batch job missing required field 'kind'"))?
            .parse()
            .map_err(ApiError::bad)?;
        ApiRequest::from_value(v, kind)
    }

    fn from_value(v: &Value, kind: JobKind) -> Result<ApiRequest, ApiError> {
        check_version(v)?;
        check_kind(v, kind)?;
        match kind {
            JobKind::Compile => Ok(ApiRequest::Compile(CompileRequest::from_value(v)?)),
            JobKind::Simulate => Ok(ApiRequest::Simulate(SimulateRequest::from_value(v)?)),
        }
    }

    /// Which endpoint / batch discriminator this request belongs to.
    pub fn kind(&self) -> JobKind {
        match self {
            ApiRequest::Compile(_) => JobKind::Compile,
            ApiRequest::Simulate(_) => JobKind::Simulate,
        }
    }

    /// The canonical [`JobSpec`] this request describes.
    pub fn to_spec(&self) -> JobSpec {
        match self {
            ApiRequest::Compile(r) => r.to_spec(),
            ApiRequest::Simulate(r) => r.to_spec(),
        }
    }

    /// Rebuild a request from a canonical [`JobSpec`] — the inverse of
    /// [`to_spec`](ApiRequest::to_spec), used by `--spec` reproduction
    /// in the CLI.
    ///
    /// # Errors
    ///
    /// 400 for fuzz specs (those reproduce via `sentinel fuzz`) and
    /// for widths outside `1..=`[`MAX_WIDTH`].
    pub fn from_spec(spec: &JobSpec) -> Result<ApiRequest, ApiError> {
        if !(1..=MAX_WIDTH).contains(&spec.width) {
            return Err(ApiError::bad(format!(
                "spec width {} outside 1..={MAX_WIDTH}",
                spec.width
            )));
        }
        let knobs = Knobs {
            model: spec.model,
            width: spec.width,
            recovery: spec.recovery,
        };
        match spec.kind {
            SpecKind::Compile => {
                let ProgramRef::Source(source) = &spec.program else {
                    return Err(ApiError::bad("compile specs must carry inline source"));
                };
                Ok(ApiRequest::Compile(CompileRequest {
                    source: source.clone(),
                    knobs,
                    verify_passes: spec.verify_passes,
                    emit: spec.emit,
                }))
            }
            SpecKind::Simulate => {
                let program = match &spec.program {
                    ProgramRef::Suite(name) => Program::Suite(name.clone()),
                    ProgramRef::Source(text) => Program::Source(text.clone()),
                    ProgramRef::Seeded { .. } => {
                        return Err(ApiError::bad(
                            "seeded programs reproduce via `sentinel fuzz --spec`",
                        ))
                    }
                };
                Ok(ApiRequest::Simulate(SimulateRequest {
                    program,
                    knobs,
                    engine: spec.engine,
                    map: spec.map.clone(),
                    word: spec.word.clone(),
                }))
            }
            SpecKind::Fuzz => Err(ApiError::bad(
                "fuzz specs reproduce via `sentinel fuzz --spec`",
            )),
        }
    }

    /// The content-hash cache key: the canonical encoding of
    /// [`to_spec`](ApiRequest::to_spec) (kind included as a spec
    /// field).
    pub fn cache_key(&self) -> String {
        match self {
            ApiRequest::Compile(r) => r.cache_key(),
            ApiRequest::Simulate(r) => r.cache_key(),
        }
    }

    /// Evaluates the request end to end and serializes the response
    /// body — the in-process ground truth HTTP responses are compared
    /// against byte for byte.
    ///
    /// # Errors
    ///
    /// 400 for everything the *request* got wrong: parse or schedule
    /// failures, unknown suite names, runs the simulator rejects.
    pub fn run(&self, workloads: &[Workload]) -> Result<String, ApiError> {
        self.run_with_cache(workloads, None)
    }

    /// [`run`](ApiRequest::run), but compiling simulate jobs through a
    /// shared [`SimProgramCache`]: jobs with the same schedule point
    /// (program, model, width, recovery, store buffer — the engine does
    /// *not* split the key) share one compile, and one turbo decode,
    /// per process. The response bytes are identical with or without
    /// the cache.
    ///
    /// # Errors
    ///
    /// See [`run`](ApiRequest::run); cached compile failures replay the
    /// same error.
    pub fn run_with_cache(
        &self,
        workloads: &[Workload],
        programs: Option<&SimProgramCache>,
    ) -> Result<String, ApiError> {
        match self {
            ApiRequest::Compile(r) => compile_response(r),
            ApiRequest::Simulate(r) => simulate_response(r, workloads, programs),
        }
    }

    /// Serializes the request with explicit `v` and `kind` fields —
    /// valid as a single-endpoint body and as a batch job entry.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let mut w = ObjWriter::new(&mut out);
        w.u64("v", API_VERSION).str("kind", self.kind().as_str());
        match self {
            ApiRequest::Compile(r) => {
                w.str("source", &r.source);
                write_knobs(&mut w, &r.knobs);
                w.bool("verify_passes", r.verify_passes)
                    .bool("emit", r.emit);
            }
            ApiRequest::Simulate(r) => {
                match &r.program {
                    Program::Suite(name) => w.str("suite", name),
                    Program::Source(text) => w.str("source", text),
                };
                write_knobs(&mut w, &r.knobs);
                w.str("engine", &r.engine.to_string());
                if !r.map.is_empty() {
                    w.raw("map", &pairs_json(&r.map));
                }
                if !r.word.is_empty() {
                    w.raw("word", &pairs_json(&r.word));
                }
            }
        }
        w.close();
        out
    }
}

fn write_knobs(w: &mut ObjWriter<'_>, knobs: &Knobs) {
    w.str("model", &model_str(knobs.model))
        .u64("width", knobs.width as u64)
        .bool("recovery", knobs.recovery);
}

fn pairs_json(pairs: &[(u64, u64)]) -> String {
    let mut out = String::from("[");
    for (i, (a, b)) in pairs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("[{a},{b}]"));
    }
    out.push(']');
    out
}

/// `POST /v1/batch`: an ordered list of jobs, answered by per-job
/// results-or-errors in the same order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchRequest {
    /// The jobs, in request order.
    pub jobs: Vec<ApiRequest>,
}

impl BatchRequest {
    /// Parses a batch body, enforcing the per-batch job cap.
    ///
    /// # Errors
    ///
    /// 400 on malformed JSON, a bad envelope (`v`/`jobs`), more than
    /// `max_jobs` jobs, or any unparseable job — a malformed *job* is
    /// a malformed *request*; only jobs that fail while running
    /// degrade to per-job error entries.
    pub fn from_json(body: &str, max_jobs: usize) -> Result<BatchRequest, ApiError> {
        let v = json::parse(body).map_err(|e| ApiError::bad(e.to_string()))?;
        expect_object(&v, &["v", "jobs"])?;
        check_version(&v)?;
        let jobs = v
            .get("jobs")
            .and_then(Value::as_array)
            .ok_or_else(|| ApiError::bad("missing required field 'jobs' (an array)"))?;
        if jobs.is_empty() {
            return Err(ApiError::bad("'jobs' must not be empty"));
        }
        if jobs.len() > max_jobs {
            return Err(ApiError::bad(format!(
                "batch of {} jobs exceeds the per-batch cap of {max_jobs}",
                jobs.len()
            )));
        }
        let jobs = jobs
            .iter()
            .enumerate()
            .map(|(i, job)| {
                ApiRequest::job_from_value(job)
                    .map_err(|e| ApiError::bad(format!("job {i}: {}", e.message)))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(BatchRequest { jobs })
    }

    /// Serializes the batch envelope (`{"v":1,"jobs":[...]}`).
    pub fn to_json(&self) -> String {
        let mut out = format!("{{\"v\":{API_VERSION},\"jobs\":[");
        for (i, job) in self.jobs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&job.to_json());
        }
        out.push_str("]}");
        out
    }
}

/// One response of the versioned API surface — what server dispatch
/// produces and what [`Client`](crate::client::Client) hands back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ApiResponse {
    /// A successful result: the deterministic serialized response
    /// object, byte-identical to [`ApiRequest::run`]'s output.
    Result(String),
    /// A failed request or batch job.
    Error(ApiError),
    /// Per-job results-or-errors, in request order (entries are only
    /// ever `Result` or `Error`).
    Batch(Vec<ApiResponse>),
}

impl ApiResponse {
    /// The HTTP status this response answers with. A batch is 200
    /// regardless of its entries — per-job failures are data, not a
    /// failed request.
    pub fn status(&self) -> u16 {
        match self {
            ApiResponse::Result(_) | ApiResponse::Batch(_) => 200,
            ApiResponse::Error(e) => e.status,
        }
    }

    /// Whether this is a successful result (a batch counts as ok).
    pub fn is_ok(&self) -> bool {
        !matches!(self, ApiResponse::Error(_))
    }

    /// Serializes into the HTTP response the server sends: result
    /// bodies verbatim, errors as `{"error":...}`, batches as
    /// `{"v":1,"results":[...]}` with error entries spelled
    /// `{"status":N,"error":...}`.
    pub fn into_http(self) -> crate::http::Response {
        use crate::http::{error_body, Response};
        match self {
            ApiResponse::Result(body) => Response::json(200, body),
            ApiResponse::Error(e) => Response::json(e.status, error_body(&e.message)),
            ApiResponse::Batch(entries) => {
                let mut body = format!("{{\"v\":{API_VERSION},\"results\":[");
                for (i, entry) in entries.into_iter().enumerate() {
                    if i > 0 {
                        body.push(',');
                    }
                    match entry {
                        ApiResponse::Result(b) => body.push_str(&b),
                        ApiResponse::Error(e) => {
                            let mut w = ObjWriter::new(&mut body);
                            w.u64("status", e.status as u64).str("error", &e.message);
                            w.close();
                        }
                        ApiResponse::Batch(_) => unreachable!("batches do not nest"),
                    }
                }
                body.push_str("]}");
                Response::json(200, body)
            }
        }
    }

    /// Parses a received HTTP response back into the typed surface.
    /// Single-job result bodies are kept verbatim (byte-identical to
    /// the wire); batch entries are re-serialized from the parsed
    /// JSON.
    pub fn from_http(status: u16, body: &str) -> ApiResponse {
        if let Ok(v) = json::parse(body) {
            if let Some(results) = v.get("results").and_then(Value::as_array) {
                let entries = results
                    .iter()
                    .map(|e| match e.get("error").and_then(Value::as_str) {
                        Some(message) => ApiResponse::Error(ApiError {
                            status: e
                                .get("status")
                                .and_then(Value::as_u64)
                                .map_or(500, |s| s as u16),
                            message: message.to_string(),
                        }),
                        None => {
                            let mut s = String::new();
                            e.write(&mut s);
                            ApiResponse::Result(s)
                        }
                    })
                    .collect();
                return ApiResponse::Batch(entries);
            }
            if status != 200 {
                if let Some(message) = v.get("error").and_then(Value::as_str) {
                    return ApiResponse::Error(ApiError {
                        status,
                        message: message.to_string(),
                    });
                }
            }
        }
        if status == 200 {
            ApiResponse::Result(body.to_string())
        } else {
            ApiResponse::Error(ApiError {
                status,
                message: body.to_string(),
            })
        }
    }
}

/// The machine description a request schedules for and runs on: the
/// paper's §5.1 parameters at the requested width.
fn mdes_for(knobs: &Knobs) -> MachineDesc {
    MachineDesc::builder().issue_width(knobs.width).build()
}

fn sched_options(knobs: &Knobs, verify_passes: bool) -> SchedOptions {
    let mut opts = SchedOptions::new(knobs.model);
    if knobs.recovery {
        opts = opts.with_recovery();
    }
    if verify_passes {
        opts = opts.with_verify_passes();
    }
    opts
}

fn write_sched_stats(w: &mut ObjWriter<'_>, s: &SchedStats) {
    let mut sched = String::new();
    {
        let mut sw = ObjWriter::new(&mut sched);
        sw.u64("blocks", s.blocks as u64)
            .u64("speculated", s.speculated as u64)
            .u64("checks", s.checks_inserted as u64)
            .u64("confirms", s.confirms_inserted as u64)
            .u64("pinned_stores", s.pinned_stores as u64)
            .u64("renames", s.renames as u64)
            .u64("clear_tags", s.clear_tags as u64);
        sw.close();
    }
    w.raw("sched", &sched);
}

/// Compiles a request end to end and serializes the response body.
///
/// # Errors
///
/// 400 for parse or schedule failures — both mean the *program* was
/// unschedulable, not that the service broke.
fn compile_response(req: &CompileRequest) -> Result<String, ApiError> {
    let func = asm::parse(&req.source).map_err(|e| ApiError::bad(format!("parse: {e}")))?;
    let mdes = mdes_for(&req.knobs);
    let mut session = CompileSession::for_function(&func)
        .mdes(&mdes)
        .options(sched_options(&req.knobs, req.verify_passes))
        .build();
    let scheduled = session
        .run()
        .map_err(|e| ApiError::bad(format!("schedule: {e}")))?;

    let mut passes = String::from("[");
    for (i, report) in session.log().reports().iter().enumerate() {
        if i > 0 {
            passes.push(',');
        }
        let mut one = ObjWriter::new(&mut passes);
        one.str("name", report.name).u64("runs", report.runs as u64);
        one.close();
    }
    passes.push(']');

    let mut out = String::new();
    let mut w = ObjWriter::new(&mut out);
    w.str("model", &model_str(req.knobs.model))
        .u64("width", req.knobs.width as u64)
        .bool("verified", session.verifies())
        .u64("pass_runs", session.log().total_runs());
    write_sched_stats(&mut w, &scheduled.stats);
    w.raw("passes", &passes);
    if req.emit {
        w.str("asm", &asm::print(&scheduled.func));
    }
    w.close();
    Ok(out)
}

/// A simulate job compiled once and shared across requests: the
/// scheduled function, its statistics, and a lazily decoded turbo
/// program. Everything here depends only on the schedule point
/// ([`JobSpec::schedule_hash`]) — never on the engine or the memory
/// image — so one entry serves fast, turbo, and interpreter requests
/// for the same job alike.
#[derive(Debug)]
pub struct PreparedJob {
    func: Function,
    sched: SchedStats,
    mdes: MachineDesc,
    turbo: OnceLock<Arc<TurboProgram>>,
}

impl PreparedJob {
    /// The decoded turbo program, decoding at most once per entry.
    fn turbo_program(&self) -> Arc<TurboProgram> {
        self.turbo
            .get_or_init(|| Arc::new(TurboProgram::new(&self.func, &self.mdes)))
            .clone()
    }
}

/// The decoded-program cache the service's workers share, keyed by
/// [`JobSpec::schedule_hash`]. Compile failures are cached too — a
/// replayed unschedulable job answers the same 400 without
/// re-scheduling.
pub type SimProgramCache = ProgramCache<Result<PreparedJob, ApiError>>;

/// Simulates a request end to end (schedule, then run) and serializes
/// the response body.
///
/// This is the "in-process" function the acceptance test compares HTTP
/// responses against, byte for byte.
///
/// # Errors
///
/// 400 for unknown suite names, parse/schedule failures, and runs the
/// simulator itself rejects.
fn simulate_response(
    req: &SimulateRequest,
    workloads: &[Workload],
    programs: Option<&SimProgramCache>,
) -> Result<String, ApiError> {
    // Resolve the program. Inline source parses into `parsed` so the
    // borrow below has an owner; a suite workload brings its own memory
    // image and name.
    let parsed: Option<Function> = match &req.program {
        Program::Source(text) => {
            Some(asm::parse(text).map_err(|e| ApiError::bad(format!("parse: {e}")))?)
        }
        Program::Suite(_) => None,
    };
    // (function, bench label, mapped regions, initial words)
    type Resolved<'a> = (&'a Function, String, &'a [(u64, u64)], &'a [(u64, u64)]);
    let (func, bench, map, word): Resolved = match &req.program {
        Program::Suite(name) => {
            let w = workloads
                .iter()
                .find(|w| &w.name == name)
                .ok_or_else(|| ApiError::bad(format!("unknown suite benchmark '{name}'")))?;
            (&w.func, w.name.clone(), &w.mem_regions, &w.mem_words)
        }
        Program::Source(_) => {
            let func = parsed.as_ref().expect("parsed above");
            (func, format!("@{}", func.name()), &req.map, &req.word)
        }
    };

    let compile = || -> Result<PreparedJob, ApiError> {
        let mdes = mdes_for(&req.knobs);
        let mut session = CompileSession::for_function(func)
            .mdes(&mdes)
            .options(sched_options(&req.knobs, false))
            .build();
        let scheduled = session
            .run()
            .map_err(|e| ApiError::bad(format!("schedule: {e}")))?;
        Ok(PreparedJob {
            func: scheduled.func,
            sched: scheduled.stats,
            mdes,
            turbo: OnceLock::new(),
        })
    };
    let prepared = match programs {
        Some(cache) => cache.get_or_fill(req.to_spec().schedule_hash(), compile),
        None => Arc::new(compile()),
    };
    let prepared = prepared.as_ref().as_ref().map_err(ApiError::clone)?;

    let mut cfg = SimConfig::for_mdes(prepared.mdes.clone());
    cfg.semantics = semantics_for(req.knobs.model);
    let builder = SimSession::for_function(&prepared.func).config(cfg);
    let mut m = if req.engine == Engine::Turbo {
        builder.program(prepared.turbo_program()).build()
    } else {
        builder.engine(req.engine).build()
    };
    for &(start, len) in map {
        m.memory_mut().map_region(start, len);
    }
    for &(addr, bits) in word {
        m.memory_mut()
            .write_word(addr, bits)
            .map_err(|e| ApiError::bad(format!("word {addr:#x}: {e}")))?;
    }
    let outcome = m
        .run()
        .map_err(|e| ApiError::bad(format!("simulation: {e}")))?;
    let outcome_str = match outcome {
        RunOutcome::Halted => "halted".to_string(),
        RunOutcome::Trapped(t) => format!("trapped: {t}"),
    };

    let stats = *m.stats();
    let mut stalls = String::new();
    {
        let mut sw = ObjWriter::new(&mut stalls);
        for (reason, n) in stats.stalls.iter() {
            if n > 0 {
                sw.u64(reason.name(), n);
            }
        }
        sw.close();
    }

    let mut out = String::new();
    let mut w = ObjWriter::new(&mut out);
    w.str("bench", &bench)
        .str("model", &model_str(req.knobs.model))
        .u64("width", req.knobs.width as u64)
        .str("engine", &req.engine.to_string())
        .str("outcome", &outcome_str)
        .u64("cycles", stats.cycles)
        .u64("issuing_cycles", stats.issuing_cycles)
        .u64("dyn_insns", stats.dyn_insns)
        .u64("dyn_speculative", stats.dyn_speculative)
        .u64("dyn_checks", stats.dyn_checks)
        .u64("dyn_confirms", stats.dyn_confirms)
        .u64("tag_sets", stats.tag_sets)
        .u64("tag_propagations", stats.tag_propagations)
        .u64("branches", stats.branches)
        .u64("branches_taken", stats.branches_taken)
        .u64("loads", stats.loads)
        .u64("stores", stats.stores)
        .u64("sb_forwards", stats.sb_forwards)
        .raw("ipc", &format!("{:.4}", stats.ipc()))
        .raw("stalls", &stalls);
    write_sched_stats(&mut w, &prepared.sched);
    w.close();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const LOOP: &str = "\
func @t {
entry:
    li r1, 0
    li r2, 4
loop:
    add r1, r1, r2
    addi r2, r2, -1
    bne r2, r0, loop
done:
    halt
}
";

    fn compile_req(body: &str) -> Result<ApiRequest, ApiError> {
        ApiRequest::from_json(JobKind::Compile, body)
    }

    fn simulate_req(body: &str) -> Result<ApiRequest, ApiError> {
        ApiRequest::from_json(JobKind::Simulate, body)
    }

    #[test]
    fn parses_compile_requests_with_defaults() {
        let ApiRequest::Compile(req) =
            compile_req(r#"{"source":"func @f\nblock b0:\n  halt\n"}"#).unwrap()
        else {
            panic!("wrong variant");
        };
        assert_eq!(req.knobs.model, SchedulingModel::Sentinel);
        assert_eq!(req.knobs.width, 8);
        assert!(!req.verify_passes && !req.emit && !req.knobs.recovery);
    }

    #[test]
    fn rejects_unknown_fields_and_bad_knobs() {
        for body in [
            r#"{"source":"x","typo":1}"#,
            r#"{"source":"x","width":0}"#,
            r#"{"source":"x","width":65}"#,
            r#"{"source":"x","model":"Q"}"#,
            r#"{"source":"x","model":"Bx"}"#,
            r#"[1,2]"#,
            r#"{"model":"S"}"#,
            r#"not json"#,
        ] {
            let err = compile_req(body).unwrap_err();
            assert_eq!(err.status, 400, "{body}");
        }
    }

    #[test]
    fn versioned_requests_accept_v1_and_name_the_offender_otherwise() {
        assert!(compile_req(r#"{"v":1,"source":"x"}"#).is_ok());
        // Missing v reads as v1 (pre-versioning bodies keep working).
        assert!(compile_req(r#"{"source":"x"}"#).is_ok());
        let err = compile_req(r#"{"v":2,"source":"x"}"#).unwrap_err();
        assert!(err.message.contains("version 2"), "{}", err.message);
        let err = compile_req(r#"{"v":"x","source":"x"}"#).unwrap_err();
        assert!(err.message.contains("'v'"), "{}", err.message);
        // An explicit kind must match the endpoint it was routed to.
        assert!(compile_req(r#"{"kind":"compile","source":"x"}"#).is_ok());
        let err = compile_req(r#"{"kind":"simulate","suite":"wc"}"#).unwrap_err();
        assert!(
            err.message.contains("routed as 'compile'"),
            "{}",
            err.message
        );
        let err = compile_req(r#"{"kind":"nope","source":"x"}"#).unwrap_err();
        assert!(err.message.contains("unknown kind"), "{}", err.message);
    }

    #[test]
    fn simulate_requires_exactly_one_program() {
        assert!(simulate_req(r#"{"model":"S"}"#).is_err());
        assert!(simulate_req(r#"{"suite":"a","source":"b"}"#).is_err());
        assert!(simulate_req(r#"{"suite":"a","map":[[0,8]]}"#).is_err());
        let ApiRequest::Simulate(req) =
            simulate_req(r#"{"suite":"wc","engine":"interp"}"#).unwrap()
        else {
            panic!("wrong variant");
        };
        assert_eq!(req.engine, Engine::Interpreter);
        assert_eq!(req.program, Program::Suite("wc".into()));
    }

    #[test]
    fn cache_keys_separate_distinct_requests() {
        let a = compile_req(&format!(r#"{{"source":{},"model":"S"}}"#, json_str(LOOP))).unwrap();
        let b = compile_req(&format!(r#"{{"source":{},"model":"G"}}"#, json_str(LOOP))).unwrap();
        assert_ne!(a.cache_key(), b.cache_key());
        let a2 = compile_req(&format!(r#"{{"source":{},"model":"S"}}"#, json_str(LOOP))).unwrap();
        assert_eq!(a.cache_key(), a2.cache_key());
    }

    #[test]
    fn requests_round_trip_through_to_json() {
        for req in [
            compile_req(&format!(
                r#"{{"source":{},"model":"B3","width":2,"emit":true}}"#,
                json_str(LOOP)
            ))
            .unwrap(),
            simulate_req(r#"{"suite":"wc","model":"T","recovery":true}"#).unwrap(),
            simulate_req(&format!(
                r#"{{"source":{},"engine":"interp","map":[[0,64]],"word":[[8,42]]}}"#,
                json_str(LOOP)
            ))
            .unwrap(),
        ] {
            let wire = req.to_json();
            let back = ApiRequest::from_json(req.kind(), &wire).unwrap();
            assert_eq!(req, back, "{wire}");
            // And the serialized form is a valid batch job entry.
            let batch = format!("{{\"v\":1,\"jobs\":[{wire}]}}");
            let parsed = BatchRequest::from_json(&batch, 8).unwrap();
            assert_eq!(parsed.jobs, vec![req]);
        }
    }

    #[test]
    fn batch_parses_jobs_in_order_and_enforces_the_cap() {
        let body = r#"{"v":1,"jobs":[
            {"kind":"simulate","suite":"wc"},
            {"kind":"compile","source":"func @f {\nentry:\n  halt\n}\n"}
        ]}"#;
        let batch = BatchRequest::from_json(body, 8).unwrap();
        assert_eq!(batch.jobs.len(), 2);
        assert_eq!(batch.jobs[0].kind(), JobKind::Simulate);
        assert_eq!(batch.jobs[1].kind(), JobKind::Compile);
        // Round trip of the whole envelope.
        let again = BatchRequest::from_json(&batch.to_json(), 8).unwrap();
        assert_eq!(again, batch);

        let err = BatchRequest::from_json(body, 1).unwrap_err();
        assert!(err.message.contains("cap of 1"), "{}", err.message);
        for bad in [
            r#"{"jobs":[]}"#,
            r#"{"jobs":{}}"#,
            r#"{"v":1}"#,
            r#"{"v":2,"jobs":[{"kind":"simulate","suite":"wc"}]}"#,
            r#"{"jobs":[{"suite":"wc"}]}"#,
            r#"{"jobs":[{"kind":"simulate","suite":"wc","typo":1}]}"#,
        ] {
            assert_eq!(BatchRequest::from_json(bad, 8).unwrap_err().status, 400);
        }
        // A malformed job names its index.
        let err = BatchRequest::from_json(r#"{"jobs":[{"kind":"simulate","suite":"wc"},{}]}"#, 8)
            .unwrap_err();
        assert!(err.message.starts_with("job 1:"), "{}", err.message);
    }

    #[test]
    fn batch_response_envelope_round_trips() {
        let resp = ApiResponse::Batch(vec![
            ApiResponse::Result(r#"{"cycles":7}"#.to_string()),
            ApiResponse::Error(ApiError::bad("schedule: no")),
        ]);
        let http = resp.clone().into_http();
        assert_eq!(http.status, 200);
        let body = String::from_utf8(http.body).unwrap();
        assert!(body.starts_with(r#"{"v":1,"results":["#), "{body}");
        let back = ApiResponse::from_http(200, &body);
        assert_eq!(back, resp);
        // Single-result and error responses survive too (verbatim
        // bodies for results).
        let ok = ApiResponse::from_http(200, r#"{"cycles":7}"#);
        assert_eq!(ok, ApiResponse::Result(r#"{"cycles":7}"#.to_string()));
        let err = ApiResponse::from_http(400, r#"{"error":"nope"}"#);
        assert_eq!(err, ApiResponse::Error(ApiError::bad("nope")));
    }

    #[test]
    fn compile_response_is_deterministic_json() {
        let req = compile_req(&format!(
            r#"{{"source":{},"verify_passes":true,"emit":true}}"#,
            json_str(LOOP)
        ))
        .unwrap();
        let a = req.run(&[]).unwrap();
        let b = req.run(&[]).unwrap();
        assert_eq!(a, b);
        let v = json::parse(&a).unwrap();
        assert_eq!(v.get("model").and_then(Value::as_str), Some("S"));
        assert_eq!(v.get("verified").and_then(Value::as_bool), Some(true));
        assert!(v.get("sched").and_then(|s| s.get("blocks")).is_some());
        assert!(v.get("passes").and_then(Value::as_array).is_some());
        let asm_text = v.get("asm").and_then(Value::as_str).unwrap();
        asm::parse(asm_text).unwrap();
    }

    #[test]
    fn simulate_response_runs_inline_source() {
        let req = simulate_req(&format!(
            r#"{{"source":{},"model":"S","width":4}}"#,
            json_str(LOOP)
        ))
        .unwrap();
        let body = req.run(&[]).unwrap();
        let v = json::parse(&body).unwrap();
        assert_eq!(v.get("bench").and_then(Value::as_str), Some("@t"));
        assert_eq!(v.get("outcome").and_then(Value::as_str), Some("halted"));
        assert!(v.get("cycles").and_then(Value::as_u64).unwrap() > 0);
        assert!(v.get("ipc").and_then(Value::as_f64).unwrap() > 0.0);
    }

    #[test]
    fn simulate_response_engines_agree() {
        let mk = |engine: &str| {
            simulate_req(&format!(
                r#"{{"source":{},"engine":"{engine}"}}"#,
                json_str(LOOP)
            ))
            .unwrap()
        };
        let fast = mk("fast").run(&[]).unwrap();
        let interp = mk("interpreter").run(&[]).unwrap();
        // Same run, modulo the engine name itself.
        assert_eq!(
            fast.replace("\"engine\":\"fast\"", ""),
            interp.replace("\"engine\":\"interpreter\"", "")
        );
    }

    #[test]
    fn unknown_suite_is_client_error() {
        let req = simulate_req(r#"{"suite":"nope"}"#).unwrap();
        let err = req.run(&[]).unwrap_err();
        assert_eq!(err.status, 400);
        assert!(err.message.contains("nope"));
    }

    fn json_str(s: &str) -> String {
        let mut out = String::new();
        json::push_str_lit(&mut out, s);
        out
    }
}
