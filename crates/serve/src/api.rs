//! Request/response vocabulary of the service: typed requests parsed
//! from JSON bodies, and deterministic JSON response bodies.
//!
//! Response bodies are built with the deterministic `ObjWriter` (fixed
//! key order, no wall-clock fields), so the same request always yields
//! the same bytes — the property the content-hash cache and the
//! byte-identical-to-in-process acceptance test both rely on.

use sentinel_core::{CompileSession, SchedOptions, SchedStats, SchedulingModel};
use sentinel_isa::MachineDesc;
use sentinel_prog::{asm, Function};
use sentinel_sim::{Engine, RunOutcome, SimConfig, SimSession, SpeculationSemantics};
use sentinel_trace::json::{self, ObjWriter, Value};
use sentinel_workloads::Workload;

use crate::cache::fnv64;

/// Largest issue width a request may ask for (guards allocation).
pub const MAX_WIDTH: usize = 64;

/// A request the service rejected, with the HTTP status to answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiError {
    /// HTTP status (400 for everything a client got wrong).
    pub status: u16,
    /// Human-readable description (becomes `{"error":...}`).
    pub message: String,
}

impl ApiError {
    /// A 400 with the given message.
    pub fn bad(message: impl Into<String>) -> ApiError {
        ApiError {
            status: 400,
            message: message.into(),
        }
    }
}

/// Parses a scheduling-model spec (`R`, `G`, `S`, `T`, `B<k>`, or the
/// long names the CLI accepts).
pub fn parse_model(s: &str) -> Result<SchedulingModel, String> {
    match s {
        "R" | "restricted" => Ok(SchedulingModel::RestrictedPercolation),
        "G" | "general" => Ok(SchedulingModel::GeneralPercolation),
        "S" | "sentinel" => Ok(SchedulingModel::Sentinel),
        "T" | "stores" => Ok(SchedulingModel::SentinelStores),
        other => match other.strip_prefix('B').and_then(|k| k.parse::<u8>().ok()) {
            Some(levels) => Ok(SchedulingModel::Boosting(levels)),
            None => Err(format!("unknown model '{other}' (R, G, S, T, or B<k>)")),
        },
    }
}

/// The canonical spelling of a model in responses and cache keys.
pub fn model_str(model: SchedulingModel) -> String {
    match model {
        SchedulingModel::Boosting(k) => format!("B{k}"),
        m => m.tag().to_string(),
    }
}

/// The speculative-fault semantics each scheduling model runs under
/// (mirrors the evaluation harness).
fn semantics_for(model: SchedulingModel) -> SpeculationSemantics {
    match model {
        SchedulingModel::GeneralPercolation => SpeculationSemantics::Silent,
        _ => SpeculationSemantics::SentinelTags,
    }
}

/// Shared model/width/recovery knobs of both endpoints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Knobs {
    /// Scheduling model (default S).
    pub model: SchedulingModel,
    /// Issue width (default 8, max [`MAX_WIDTH`]).
    pub width: usize,
    /// Enforce the §3.7 recovery constraints.
    pub recovery: bool,
}

impl Default for Knobs {
    fn default() -> Knobs {
        Knobs {
            model: SchedulingModel::Sentinel,
            width: 8,
            recovery: false,
        }
    }
}

/// `POST /v1/compile`: asm text in, schedule statistics out.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileRequest {
    /// Assembly source text.
    pub source: String,
    /// Model/width/recovery.
    pub knobs: Knobs,
    /// Run the inter-pass IR verifier between stages.
    pub verify_passes: bool,
    /// Include the scheduled program (`"asm"`) in the response.
    pub emit: bool,
}

/// What a simulate request runs: a suite benchmark or inline source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Program {
    /// A benchmark from the paper's 17-program suite, by name.
    Suite(String),
    /// Inline assembly source.
    Source(String),
}

/// `POST /v1/simulate`: workload + machine knobs in, `Measured`-style
/// statistics out.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimulateRequest {
    /// What to run.
    pub program: Program,
    /// Model/width/recovery.
    pub knobs: Knobs,
    /// Execution engine (default fast).
    pub engine: Engine,
    /// Memory regions to map before running inline source:
    /// `(start, len)`.
    pub map: Vec<(u64, u64)>,
    /// Initial memory words for inline source: `(addr, bits)`.
    pub word: Vec<(u64, u64)>,
}

fn expect_object<'v>(v: &'v Value, known: &[&str]) -> Result<&'v [(String, Value)], ApiError> {
    let Value::Object(members) = v else {
        return Err(ApiError::bad("request body must be a JSON object"));
    };
    for (k, _) in members {
        if !known.contains(&k.as_str()) {
            return Err(ApiError::bad(format!("unknown field '{k}'")));
        }
    }
    Ok(members)
}

fn opt_str(v: &Value, key: &str) -> Result<Option<String>, ApiError> {
    match v.get(key) {
        None => Ok(None),
        Some(f) => f
            .as_str()
            .map(|s| Some(s.to_string()))
            .ok_or_else(|| ApiError::bad(format!("'{key}' must be a string"))),
    }
}

fn opt_bool(v: &Value, key: &str) -> Result<bool, ApiError> {
    match v.get(key) {
        None => Ok(false),
        Some(f) => f
            .as_bool()
            .ok_or_else(|| ApiError::bad(format!("'{key}' must be a boolean"))),
    }
}

fn knobs_from(v: &Value) -> Result<Knobs, ApiError> {
    let mut knobs = Knobs::default();
    if let Some(m) = opt_str(v, "model")? {
        knobs.model = parse_model(&m).map_err(ApiError::bad)?;
    }
    if let Some(w) = v.get("width") {
        let w = w
            .as_u64()
            .filter(|&w| (1..=MAX_WIDTH as u64).contains(&w))
            .ok_or_else(|| {
                ApiError::bad(format!("'width' must be an integer in 1..={MAX_WIDTH}"))
            })?;
        knobs.width = w as usize;
    }
    knobs.recovery = opt_bool(v, "recovery")?;
    Ok(knobs)
}

fn pairs_from(v: &Value, key: &str) -> Result<Vec<(u64, u64)>, ApiError> {
    let Some(field) = v.get(key) else {
        return Ok(Vec::new());
    };
    let items = field
        .as_array()
        .ok_or_else(|| ApiError::bad(format!("'{key}' must be an array of [a, b] pairs")))?;
    items
        .iter()
        .map(|item| {
            let pair = item.as_array().filter(|p| p.len() == 2);
            let nums: Option<(u64, u64)> = pair.and_then(|p| {
                Some((
                    p[0].as_i64().map(|n| n as u64)?,
                    p[1].as_i64().map(|n| n as u64)?,
                ))
            });
            nums.ok_or_else(|| ApiError::bad(format!("'{key}' entries must be [int, int] pairs")))
        })
        .collect()
}

impl CompileRequest {
    /// Parses a compile request from a JSON body.
    ///
    /// # Errors
    ///
    /// 400 on malformed JSON, unknown fields, or bad knob values.
    pub fn from_json(body: &str) -> Result<CompileRequest, ApiError> {
        let v = json::parse(body).map_err(|e| ApiError::bad(e.to_string()))?;
        expect_object(
            &v,
            &[
                "source",
                "model",
                "width",
                "recovery",
                "verify_passes",
                "emit",
            ],
        )?;
        let source = opt_str(&v, "source")?
            .ok_or_else(|| ApiError::bad("missing required field 'source'"))?;
        Ok(CompileRequest {
            source,
            knobs: knobs_from(&v)?,
            verify_passes: opt_bool(&v, "verify_passes")?,
            emit: opt_bool(&v, "emit")?,
        })
    }

    /// The content-hash cache key: source folded to FNV-1a + length,
    /// every knob spelled out.
    pub fn cache_key(&self) -> String {
        format!(
            "compile|src={:016x}:{}|model={}|w={}|rec={}|vp={}|emit={}",
            fnv64(self.source.as_bytes()),
            self.source.len(),
            model_str(self.knobs.model),
            self.knobs.width,
            self.knobs.recovery,
            self.verify_passes,
            self.emit,
        )
    }
}

impl SimulateRequest {
    /// Parses a simulate request from a JSON body.
    ///
    /// # Errors
    ///
    /// 400 on malformed JSON, unknown fields, bad knob values, or a
    /// body naming both (or neither of) `suite` and `source`.
    pub fn from_json(body: &str) -> Result<SimulateRequest, ApiError> {
        let v = json::parse(body).map_err(|e| ApiError::bad(e.to_string()))?;
        expect_object(
            &v,
            &[
                "suite", "source", "model", "width", "recovery", "engine", "map", "word",
            ],
        )?;
        let program = match (opt_str(&v, "suite")?, opt_str(&v, "source")?) {
            (Some(name), None) => Program::Suite(name),
            (None, Some(text)) => Program::Source(text),
            _ => {
                return Err(ApiError::bad(
                    "exactly one of 'suite' or 'source' is required",
                ))
            }
        };
        let engine = match opt_str(&v, "engine")? {
            None => Engine::default(),
            Some(s) => s.parse::<Engine>().map_err(ApiError::bad)?,
        };
        let (map, word) = (pairs_from(&v, "map")?, pairs_from(&v, "word")?);
        if matches!(program, Program::Suite(_)) && (!map.is_empty() || !word.is_empty()) {
            return Err(ApiError::bad(
                "'map'/'word' only apply to inline 'source' programs",
            ));
        }
        Ok(SimulateRequest {
            program,
            knobs: knobs_from(&v)?,
            engine,
            map,
            word,
        })
    }

    /// The content-hash cache key.
    pub fn cache_key(&self) -> String {
        let program = match &self.program {
            Program::Suite(name) => format!("suite={name}"),
            Program::Source(text) => {
                format!("src={:016x}:{}", fnv64(text.as_bytes()), text.len())
            }
        };
        format!(
            "simulate|{program}|model={}|w={}|rec={}|engine={}|map={:016x}|word={:016x}",
            model_str(self.knobs.model),
            self.knobs.width,
            self.knobs.recovery,
            self.engine,
            fnv64(format!("{:?}", self.map).as_bytes()),
            fnv64(format!("{:?}", self.word).as_bytes()),
        )
    }
}

/// The machine description a request schedules for and runs on: the
/// paper's §5.1 parameters at the requested width.
fn mdes_for(knobs: &Knobs) -> MachineDesc {
    MachineDesc::builder().issue_width(knobs.width).build()
}

fn sched_options(knobs: &Knobs, verify_passes: bool) -> SchedOptions {
    let mut opts = SchedOptions::new(knobs.model);
    if knobs.recovery {
        opts = opts.with_recovery();
    }
    if verify_passes {
        opts = opts.with_verify_passes();
    }
    opts
}

fn write_sched_stats(w: &mut ObjWriter<'_>, s: &SchedStats) {
    let mut sched = String::new();
    {
        let mut sw = ObjWriter::new(&mut sched);
        sw.u64("blocks", s.blocks as u64)
            .u64("speculated", s.speculated as u64)
            .u64("checks", s.checks_inserted as u64)
            .u64("confirms", s.confirms_inserted as u64)
            .u64("pinned_stores", s.pinned_stores as u64)
            .u64("renames", s.renames as u64)
            .u64("clear_tags", s.clear_tags as u64);
        sw.close();
    }
    w.raw("sched", &sched);
}

/// Compiles a request end to end and serializes the response body.
///
/// # Errors
///
/// 400 for parse or schedule failures — both mean the *program* was
/// unschedulable, not that the service broke.
pub fn compile_response(req: &CompileRequest) -> Result<String, ApiError> {
    let func = asm::parse(&req.source).map_err(|e| ApiError::bad(format!("parse: {e}")))?;
    let mdes = mdes_for(&req.knobs);
    let mut session = CompileSession::for_function(&func)
        .mdes(&mdes)
        .options(sched_options(&req.knobs, req.verify_passes))
        .build();
    let scheduled = session
        .run()
        .map_err(|e| ApiError::bad(format!("schedule: {e}")))?;

    let mut passes = String::from("[");
    for (i, report) in session.log().reports().iter().enumerate() {
        if i > 0 {
            passes.push(',');
        }
        let mut one = ObjWriter::new(&mut passes);
        one.str("name", report.name).u64("runs", report.runs as u64);
        one.close();
    }
    passes.push(']');

    let mut out = String::new();
    let mut w = ObjWriter::new(&mut out);
    w.str("model", &model_str(req.knobs.model))
        .u64("width", req.knobs.width as u64)
        .bool("verified", session.verifies())
        .u64("pass_runs", session.log().total_runs());
    write_sched_stats(&mut w, &scheduled.stats);
    w.raw("passes", &passes);
    if req.emit {
        w.str("asm", &asm::print(&scheduled.func));
    }
    w.close();
    Ok(out)
}

/// Simulates a request end to end (schedule, then run) and serializes
/// the response body.
///
/// This is the "in-process" function the acceptance test compares HTTP
/// responses against, byte for byte.
///
/// # Errors
///
/// 400 for unknown suite names, parse/schedule failures, and runs the
/// simulator itself rejects.
pub fn simulate_response(
    req: &SimulateRequest,
    workloads: &[Workload],
) -> Result<String, ApiError> {
    // Resolve the program. Inline source parses into `parsed` so the
    // borrow below has an owner; a suite workload brings its own memory
    // image and name.
    let parsed: Option<Function> = match &req.program {
        Program::Source(text) => {
            Some(asm::parse(text).map_err(|e| ApiError::bad(format!("parse: {e}")))?)
        }
        Program::Suite(_) => None,
    };
    // (function, bench label, mapped regions, initial words)
    type Resolved<'a> = (&'a Function, String, &'a [(u64, u64)], &'a [(u64, u64)]);
    let (func, bench, map, word): Resolved = match &req.program {
        Program::Suite(name) => {
            let w = workloads
                .iter()
                .find(|w| &w.name == name)
                .ok_or_else(|| ApiError::bad(format!("unknown suite benchmark '{name}'")))?;
            (&w.func, w.name.clone(), &w.mem_regions, &w.mem_words)
        }
        Program::Source(_) => {
            let func = parsed.as_ref().expect("parsed above");
            (func, format!("@{}", func.name()), &req.map, &req.word)
        }
    };

    let mdes = mdes_for(&req.knobs);
    let scheduled = {
        let mut session = CompileSession::for_function(func)
            .mdes(&mdes)
            .options(sched_options(&req.knobs, false))
            .build();
        session
            .run()
            .map_err(|e| ApiError::bad(format!("schedule: {e}")))?
    };

    let mut cfg = SimConfig::for_mdes(mdes);
    cfg.semantics = semantics_for(req.knobs.model);
    let mut m = SimSession::for_function(&scheduled.func)
        .config(cfg)
        .engine(req.engine)
        .build();
    for &(start, len) in map {
        m.memory_mut().map_region(start, len);
    }
    for &(addr, bits) in word {
        m.memory_mut()
            .write_word(addr, bits)
            .map_err(|e| ApiError::bad(format!("word {addr:#x}: {e}")))?;
    }
    let outcome = m
        .run()
        .map_err(|e| ApiError::bad(format!("simulation: {e}")))?;
    let outcome_str = match outcome {
        RunOutcome::Halted => "halted".to_string(),
        RunOutcome::Trapped(t) => format!("trapped: {t}"),
    };

    let stats = *m.stats();
    let mut stalls = String::new();
    {
        let mut sw = ObjWriter::new(&mut stalls);
        for (reason, n) in stats.stalls.iter() {
            if n > 0 {
                sw.u64(reason.name(), n);
            }
        }
        sw.close();
    }

    let mut out = String::new();
    let mut w = ObjWriter::new(&mut out);
    w.str("bench", &bench)
        .str("model", &model_str(req.knobs.model))
        .u64("width", req.knobs.width as u64)
        .str("engine", &req.engine.to_string())
        .str("outcome", &outcome_str)
        .u64("cycles", stats.cycles)
        .u64("issuing_cycles", stats.issuing_cycles)
        .u64("dyn_insns", stats.dyn_insns)
        .u64("dyn_speculative", stats.dyn_speculative)
        .u64("dyn_checks", stats.dyn_checks)
        .u64("dyn_confirms", stats.dyn_confirms)
        .u64("tag_sets", stats.tag_sets)
        .u64("tag_propagations", stats.tag_propagations)
        .u64("branches", stats.branches)
        .u64("branches_taken", stats.branches_taken)
        .u64("loads", stats.loads)
        .u64("stores", stats.stores)
        .u64("sb_forwards", stats.sb_forwards)
        .raw("ipc", &format!("{:.4}", stats.ipc()))
        .raw("stalls", &stalls);
    write_sched_stats(&mut w, &scheduled.stats);
    w.close();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const LOOP: &str = "\
func @t {
entry:
    li r1, 0
    li r2, 4
loop:
    add r1, r1, r2
    addi r2, r2, -1
    bne r2, r0, loop
done:
    halt
}
";

    #[test]
    fn parses_compile_requests_with_defaults() {
        let req =
            CompileRequest::from_json(r#"{"source":"func @f\nblock b0:\n  halt\n"}"#).unwrap();
        assert_eq!(req.knobs.model, SchedulingModel::Sentinel);
        assert_eq!(req.knobs.width, 8);
        assert!(!req.verify_passes && !req.emit && !req.knobs.recovery);
    }

    #[test]
    fn rejects_unknown_fields_and_bad_knobs() {
        for body in [
            r#"{"source":"x","typo":1}"#,
            r#"{"source":"x","width":0}"#,
            r#"{"source":"x","width":65}"#,
            r#"{"source":"x","model":"Q"}"#,
            r#"{"source":"x","model":"Bx"}"#,
            r#"[1,2]"#,
            r#"{"model":"S"}"#,
            r#"not json"#,
        ] {
            let err = CompileRequest::from_json(body).unwrap_err();
            assert_eq!(err.status, 400, "{body}");
        }
    }

    #[test]
    fn simulate_requires_exactly_one_program() {
        assert!(SimulateRequest::from_json(r#"{"model":"S"}"#).is_err());
        assert!(SimulateRequest::from_json(r#"{"suite":"a","source":"b"}"#).is_err());
        assert!(SimulateRequest::from_json(r#"{"suite":"a","map":[[0,8]]}"#).is_err());
        let req = SimulateRequest::from_json(r#"{"suite":"wc","engine":"interp"}"#).unwrap();
        assert_eq!(req.engine, Engine::Interpreter);
        assert_eq!(req.program, Program::Suite("wc".into()));
    }

    #[test]
    fn cache_keys_separate_distinct_requests() {
        let a =
            CompileRequest::from_json(&format!(r#"{{"source":{},"model":"S"}}"#, json_str(LOOP)))
                .unwrap();
        let b =
            CompileRequest::from_json(&format!(r#"{{"source":{},"model":"G"}}"#, json_str(LOOP)))
                .unwrap();
        assert_ne!(a.cache_key(), b.cache_key());
        let a2 =
            CompileRequest::from_json(&format!(r#"{{"source":{},"model":"S"}}"#, json_str(LOOP)))
                .unwrap();
        assert_eq!(a.cache_key(), a2.cache_key());
    }

    #[test]
    fn compile_response_is_deterministic_json() {
        let req = CompileRequest::from_json(&format!(
            r#"{{"source":{},"verify_passes":true,"emit":true}}"#,
            json_str(LOOP)
        ))
        .unwrap();
        let a = compile_response(&req).unwrap();
        let b = compile_response(&req).unwrap();
        assert_eq!(a, b);
        let v = json::parse(&a).unwrap();
        assert_eq!(v.get("model").and_then(Value::as_str), Some("S"));
        assert_eq!(v.get("verified").and_then(Value::as_bool), Some(true));
        assert!(v.get("sched").and_then(|s| s.get("blocks")).is_some());
        assert!(v.get("passes").and_then(Value::as_array).is_some());
        let asm_text = v.get("asm").and_then(Value::as_str).unwrap();
        asm::parse(asm_text).unwrap();
    }

    #[test]
    fn simulate_response_runs_inline_source() {
        let req = SimulateRequest::from_json(&format!(
            r#"{{"source":{},"model":"S","width":4}}"#,
            json_str(LOOP)
        ))
        .unwrap();
        let body = simulate_response(&req, &[]).unwrap();
        let v = json::parse(&body).unwrap();
        assert_eq!(v.get("bench").and_then(Value::as_str), Some("@t"));
        assert_eq!(v.get("outcome").and_then(Value::as_str), Some("halted"));
        assert!(v.get("cycles").and_then(Value::as_u64).unwrap() > 0);
        assert!(v.get("ipc").and_then(Value::as_f64).unwrap() > 0.0);
    }

    #[test]
    fn simulate_response_engines_agree() {
        let mk = |engine: &str| {
            SimulateRequest::from_json(&format!(
                r#"{{"source":{},"engine":"{engine}"}}"#,
                json_str(LOOP)
            ))
            .unwrap()
        };
        let fast = simulate_response(&mk("fast"), &[]).unwrap();
        let interp = simulate_response(&mk("interpreter"), &[]).unwrap();
        // Same run, modulo the engine name itself.
        assert_eq!(
            fast.replace("\"engine\":\"fast\"", ""),
            interp.replace("\"engine\":\"interpreter\"", "")
        );
    }

    #[test]
    fn unknown_suite_is_client_error() {
        let req = SimulateRequest::from_json(r#"{"suite":"nope"}"#).unwrap();
        let err = simulate_response(&req, &[]).unwrap_err();
        assert_eq!(err.status, 400);
        assert!(err.message.contains("nope"));
    }

    fn json_str(s: &str) -> String {
        let mut out = String::new();
        json::push_str_lit(&mut out, s);
        out
    }
}
