//! A minimal HTTP/1.1 layer over `std::net` — just enough protocol for
//! the compile-and-simulate service: request line + headers +
//! `Content-Length` bodies, explicit size limits, and HTTP/1.1
//! **keep-alive** semantics. A connection serves a sequence of
//! requests through one caller-owned [`BufRead`] (so pipelined bytes
//! buffered past one request survive into the next read), and the
//! `Connection:` header plus protocol version decide whether the
//! socket persists: HTTP/1.1 defaults to keep-alive, HTTP/1.0 to
//! close, and an explicit `Connection: close` / `keep-alive` token
//! overrides either way.

use std::io::{self, BufRead, Write};

/// Upper bound on the request line plus all header bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Default upper bound on a request body (`413` beyond it).
pub const DEFAULT_MAX_BODY_BYTES: usize = 1024 * 1024;

/// A parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Method verb, as sent (`GET`, `POST`, …).
    pub method: String,
    /// Absolute path, query string included if any.
    pub path: String,
    /// `true` for `HTTP/1.1` (and later 1.x), `false` for `HTTP/1.0`
    /// — decides the default connection semantics.
    pub http11: bool,
    /// Headers in arrival order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First header named `name` (ASCII case-insensitive), if any.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8, or `None` if it is not valid UTF-8.
    pub fn body_str(&self) -> Option<&str> {
        std::str::from_utf8(&self.body).ok()
    }

    /// Whether the connection should stay open after this request:
    /// an explicit `Connection:` token wins, otherwise HTTP/1.1
    /// defaults to keep-alive and HTTP/1.0 to close.
    pub fn persistent(&self) -> bool {
        match self.header("connection") {
            Some(v) if v.eq_ignore_ascii_case("close") => false,
            Some(v) if v.eq_ignore_ascii_case("keep-alive") => true,
            _ => self.http11,
        }
    }
}

/// A response ready to serialize.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Extra headers (name, value) — `Retry-After`, `Allow`, ….
    pub headers: Vec<(&'static str, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body: body.into_bytes(),
        }
    }

    /// A plain-text response (the `/metrics` exposition format).
    pub fn text(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "text/plain; version=0.0.4",
            headers: Vec::new(),
            body: body.into_bytes(),
        }
    }

    /// `400` with a JSON error body.
    pub fn bad_request(message: &str) -> Response {
        Response::json(400, error_body(message))
    }

    /// `404` for an unknown path.
    pub fn not_found(path: &str) -> Response {
        Response::json(404, error_body(&format!("no such endpoint: {path}")))
    }

    /// `405` naming the allowed method.
    pub fn method_not_allowed(allow: &'static str) -> Response {
        let mut r = Response::json(
            405,
            error_body(&format!("method not allowed (use {allow})")),
        );
        r.headers.push(("Allow", allow.to_string()));
        r
    }

    /// `413` for an oversized body.
    pub fn too_large(limit: usize) -> Response {
        Response::json(413, error_body(&format!("body exceeds {limit} bytes")))
    }

    /// `429` with `Retry-After` — the backpressure response for a full
    /// job queue.
    pub fn busy(retry_after_secs: u32) -> Response {
        let mut r = Response::json(429, error_body("job queue full, retry later"));
        r.headers
            .push(("Retry-After", retry_after_secs.to_string()));
        r
    }

    /// `500` with a JSON error body.
    pub fn internal(message: &str) -> Response {
        Response::json(500, error_body(message))
    }
}

/// `{"error":...}` with proper escaping.
pub fn error_body(message: &str) -> String {
    let mut out = String::new();
    let mut w = sentinel_trace::json::ObjWriter::new(&mut out);
    w.str("error", message);
    w.close();
    out
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Why a request could not be parsed.
#[derive(Debug)]
pub enum ReadError {
    /// Protocol-level problem; answer with this response, then close.
    Bad(Response),
    /// Transport-level problem (peer went away, timeout); just close.
    Io(io::Error),
    /// The peer closed (or idled past the read deadline) cleanly
    /// *between* requests — end of a keep-alive session, not an error.
    Closed,
}

impl From<io::Error> for ReadError {
    fn from(e: io::Error) -> ReadError {
        ReadError::Io(e)
    }
}

/// Reads one request from `reader`, enforcing [`MAX_HEAD_BYTES`] and
/// `max_body`.
///
/// The reader is caller-owned so a keep-alive connection can feed a
/// sequence of requests through one buffer — bytes a pipelining client
/// sent ahead stay buffered for the next call instead of being
/// dropped with a throwaway `BufReader`.
///
/// # Errors
///
/// [`ReadError::Bad`] carries the 4xx response to send;
/// [`ReadError::Io`] means the connection is not worth answering;
/// [`ReadError::Closed`] is the clean end of a keep-alive session (EOF
/// or idle timeout before the first byte of a next request).
pub fn read_request(reader: &mut impl BufRead, max_body: usize) -> Result<Request, ReadError> {
    let mut head_bytes = 0usize;

    let request_line = match read_line(reader, &mut head_bytes) {
        Ok(line) => line,
        // Nothing of a request arrived: a clean close, not a truncation.
        Err(ReadError::Io(e)) if head_bytes == 0 => {
            return Err(match e.kind() {
                io::ErrorKind::UnexpectedEof
                | io::ErrorKind::WouldBlock
                | io::ErrorKind::TimedOut
                | io::ErrorKind::ConnectionReset => ReadError::Closed,
                _ => ReadError::Io(e),
            });
        }
        Err(e) => return Err(e),
    };
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(path), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(ReadError::Bad(Response::bad_request(
            "malformed request line",
        )));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(ReadError::Bad(Response::bad_request(
            "unsupported protocol version",
        )));
    }
    let http11 = version != "HTTP/1.0";

    let mut headers = Vec::new();
    loop {
        let line = read_line(reader, &mut head_bytes)?;
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ReadError::Bad(Response::bad_request("malformed header")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let req = Request {
        method: method.to_string(),
        path: path.to_string(),
        http11,
        headers,
        body: Vec::new(),
    };
    let body_len = match req.header("content-length") {
        None => 0,
        Some(v) => match v.parse::<usize>() {
            Ok(n) => n,
            Err(_) => {
                return Err(ReadError::Bad(Response::bad_request("bad Content-Length")));
            }
        },
    };
    if body_len > max_body {
        return Err(ReadError::Bad(Response::too_large(max_body)));
    }
    let mut body = vec![0u8; body_len];
    io::Read::read_exact(reader, &mut body)?;
    Ok(Request { body, ..req })
}

/// Reads one CRLF- (or bare-LF-) terminated line, charging its bytes
/// against the head budget.
fn read_line(reader: &mut impl BufRead, head_bytes: &mut usize) -> Result<String, ReadError> {
    let mut line = Vec::new();
    let budget = (MAX_HEAD_BYTES - *head_bytes) as u64 + 1;
    let n = io::Read::take(reader, budget).read_until(b'\n', &mut line)?;
    *head_bytes += n;
    if *head_bytes > MAX_HEAD_BYTES {
        return Err(ReadError::Bad(Response::bad_request(
            "request head too large",
        )));
    }
    if !line.ends_with(b"\n") {
        return Err(ReadError::Io(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed mid-head",
        )));
    }
    while matches!(line.last(), Some(b'\n' | b'\r')) {
        line.pop();
    }
    String::from_utf8(line)
        .map_err(|_| ReadError::Bad(Response::bad_request("non-UTF-8 request head")))
}

/// Serializes `resp` onto `stream`, advertising whether the server
/// will keep the connection open (`Connection: keep-alive`) or drop it
/// (`Connection: close`) afterwards.
///
/// # Errors
///
/// Propagates transport errors; on error the caller drops the
/// connection regardless of `close`.
pub fn write_response(stream: &mut impl Write, resp: &Response, close: bool) -> io::Result<()> {
    let connection = if close { "close" } else { "keep-alive" };
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {connection}\r\n",
        resp.status,
        reason(resp.status),
        resp.content_type,
        resp.body.len()
    );
    for (name, value) in &resp.headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(&resp.body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read(raw: &str) -> Result<Request, ReadError> {
        read_request(&mut raw.as_bytes(), DEFAULT_MAX_BODY_BYTES)
    }

    #[test]
    fn parses_get_without_body() {
        let req = read("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("HOST"), Some("x"));
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_post_with_content_length() {
        let req = read("POST /v1/compile HTTP/1.1\r\nContent-Length: 4\r\n\r\n{\"a\"").unwrap();
        assert_eq!(req.body_str(), Some("{\"a\""));
    }

    #[test]
    fn accepts_bare_lf_lines() {
        let req = read("GET / HTTP/1.1\nX-A: b\n\n").unwrap();
        assert_eq!(req.header("x-a"), Some("b"));
    }

    #[test]
    fn connection_semantics_follow_version_and_header() {
        // HTTP/1.1 defaults to keep-alive, 1.0 to close; an explicit
        // token overrides either default.
        assert!(read("GET / HTTP/1.1\r\n\r\n").unwrap().persistent());
        assert!(!read("GET / HTTP/1.0\r\n\r\n").unwrap().persistent());
        assert!(!read("GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .persistent());
        assert!(read("GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n")
            .unwrap()
            .persistent());
    }

    #[test]
    fn pipelined_requests_survive_in_one_reader() {
        // Two requests sent back to back: the shared reader must hand
        // over the second intact after parsing the first.
        let raw = "POST /a HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi\
                   GET /b HTTP/1.1\r\n\r\n";
        let mut reader = raw.as_bytes();
        let first = read_request(&mut reader, DEFAULT_MAX_BODY_BYTES).unwrap();
        assert_eq!((first.path.as_str(), first.body_str()), ("/a", Some("hi")));
        let second = read_request(&mut reader, DEFAULT_MAX_BODY_BYTES).unwrap();
        assert_eq!(second.path, "/b");
        // Then a clean EOF between requests reads as Closed.
        assert!(matches!(
            read_request(&mut reader, DEFAULT_MAX_BODY_BYTES),
            Err(ReadError::Closed)
        ));
    }

    #[test]
    fn rejects_malformed_heads() {
        for raw in [
            "GARBAGE\r\n\r\n",
            "GET /\r\n\r\n",
            "GET / SPDY/3\r\n\r\n",
            "GET / HTTP/1.1\r\nno-colon-here\r\n\r\n",
            "POST / HTTP/1.1\r\nContent-Length: wat\r\n\r\n",
        ] {
            match read(raw) {
                Err(ReadError::Bad(resp)) => assert_eq!(resp.status, 400, "{raw:?}"),
                other => panic!("{raw:?}: expected Bad, got {other:?}"),
            }
        }
    }

    #[test]
    fn rejects_oversized_body_with_413() {
        let raw = "POST / HTTP/1.1\r\nContent-Length: 99\r\n\r\n";
        match read_request(&mut raw.as_bytes(), 10) {
            Err(ReadError::Bad(resp)) => assert_eq!(resp.status, 413),
            other => panic!("expected 413, got {other:?}"),
        }
    }

    #[test]
    fn rejects_oversized_head() {
        let raw = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(MAX_HEAD_BYTES));
        match read(&raw) {
            Err(ReadError::Bad(resp)) => assert_eq!(resp.status, 400),
            other => panic!("expected 400, got {other:?}"),
        }
    }

    #[test]
    fn truncated_head_is_io_error() {
        assert!(matches!(
            read("GET / HTTP/1.1\r\nHos"),
            Err(ReadError::Io(_))
        ));
    }

    #[test]
    fn truncated_body_is_io_error() {
        let raw = "POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort";
        assert!(matches!(read(raw), Err(ReadError::Io(_))));
    }

    #[test]
    fn writes_responses_with_extra_headers() {
        let mut out = Vec::new();
        write_response(&mut out, &Response::busy(1), true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(
            text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"),
            "{text}"
        );
        assert!(text.contains("Retry-After: 1\r\n"), "{text}");
        assert!(text.contains("Connection: close\r\n"), "{text}");
        assert!(
            text.ends_with("{\"error\":\"job queue full, retry later\"}"),
            "{text}"
        );
        let mut out = Vec::new();
        write_response(&mut out, &Response::json(200, "{}".into()), false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Connection: keep-alive\r\n"), "{text}");
    }

    #[test]
    fn canned_responses_carry_status() {
        assert_eq!(Response::not_found("/x").status, 404);
        assert_eq!(Response::method_not_allowed("POST").status, 405);
        assert_eq!(Response::too_large(10).status, 413);
        assert_eq!(Response::internal("boom").status, 500);
        let allow = Response::method_not_allowed("GET");
        assert!(allow
            .headers
            .iter()
            .any(|(n, v)| *n == "Allow" && v == "GET"));
    }
}
