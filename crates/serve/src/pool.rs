//! Fixed worker pool with a bounded job queue.
//!
//! The primary unit of work is one accepted **connection** (which, with
//! keep-alive, a worker owns for its whole lifetime — many requests).
//! The acceptor calls [`WorkerPool::try_submit`]; a full queue hands
//! the connection back so the acceptor can answer `429 Retry-After` —
//! backpressure, never unbounded memory.
//!
//! Workers additionally drain best-effort **tasks** ([`Task`]): the
//! `/v1/batch` endpoint fans a batch's jobs out as tasks so idle
//! workers help, while the submitting worker keeps executing jobs
//! itself — a task that never gets picked up costs nothing, and the
//! batch can never deadlock on a busy pool (see `server::run_batch`).
//!
//! Every job runs under `catch_unwind`, so a panicking connection
//! closure (already degraded to a 500 by the handler's own catch) or
//! batch task can never take a worker thread down with it.
//!
//! Shutdown is a drain: [`WorkerPool::shutdown`] stops intake, lets
//! workers finish everything already queued, then joins them.

use std::collections::VecDeque;
use std::net::TcpStream;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use sentinel_trace::serve::QUEUE_WAIT_MICROS;
use sentinel_trace::SharedMetrics;

/// The service closure: handles one connection end-to-end.
pub type ConnFn = Arc<dyn Fn(TcpStream) + Send + Sync>;

/// A one-shot helper job (batch fan-out).
pub type Task = Box<dyn FnOnce() + Send>;

enum Work {
    Conn {
        stream: TcpStream,
        enqueued: Instant,
    },
    Task(Task),
}

struct Inner {
    queue: Mutex<VecDeque<Work>>,
    capacity: usize,
    available: Condvar,
    stop: AtomicBool,
    metrics: SharedMetrics,
}

impl Inner {
    fn try_submit(&self, stream: TcpStream) -> Result<(), TcpStream> {
        let mut queue = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        if self.stop.load(Ordering::SeqCst) || queue.len() >= self.capacity {
            return Err(stream);
        }
        queue.push_back(Work::Conn {
            stream,
            enqueued: Instant::now(),
        });
        drop(queue);
        self.available.notify_one();
        Ok(())
    }

    fn try_spawn(&self, task: Task) -> bool {
        let mut queue = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        if self.stop.load(Ordering::SeqCst) || queue.len() >= self.capacity {
            return false;
        }
        queue.push_back(Work::Task(task));
        drop(queue);
        self.available.notify_one();
        true
    }
}

/// A fixed pool of worker threads draining a bounded job queue.
pub struct WorkerPool {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

/// A detachable submit-only view of the pool: connections from the
/// acceptor, best-effort tasks from the batch endpoint. The pool
/// itself stays with its owner so shutdown can join the workers.
#[derive(Clone)]
pub struct Submitter {
    inner: Arc<Inner>,
}

impl Submitter {
    /// Enqueues a connection, or hands it back if the queue is full
    /// (or the pool is shutting down) so the caller can answer 429.
    pub fn try_submit(&self, stream: TcpStream) -> Result<(), TcpStream> {
        self.inner.try_submit(stream)
    }

    /// Enqueues a helper task if there is room; `false` (task dropped)
    /// on a full or stopping queue. Callers must not rely on the task
    /// running — it is opportunistic parallelism only.
    pub fn try_spawn(&self, task: Task) -> bool {
        self.inner.try_spawn(task)
    }
}

impl WorkerPool {
    /// Spawns `workers` threads servicing queued connections with
    /// `run`. At most `capacity` jobs wait at once.
    pub fn new(workers: usize, capacity: usize, metrics: SharedMetrics, run: ConnFn) -> WorkerPool {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
            available: Condvar::new(),
            stop: AtomicBool::new(false),
            metrics,
        });
        let workers = (0..workers.max(1))
            .map(|i| {
                let inner = Arc::clone(&inner);
                let run = Arc::clone(&run);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&inner, &run))
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool { inner, workers }
    }

    /// Enqueues a connection, or hands it back if the queue is full (or
    /// the pool is shutting down) so the caller can answer 429.
    pub fn try_submit(&self, stream: TcpStream) -> Result<(), TcpStream> {
        self.inner.try_submit(stream)
    }

    /// A detachable submit-only handle for the acceptor thread and the
    /// batch fan-out.
    pub fn submitter(&self) -> Submitter {
        Submitter {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Jobs currently waiting for a worker.
    pub fn queued(&self) -> usize {
        self.inner
            .queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .len()
    }

    /// Stops intake, drains every queued job, and joins the workers.
    pub fn shutdown(self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        self.inner.available.notify_all();
        for w in self.workers {
            let _ = w.join();
        }
    }
}

fn worker_loop(inner: &Inner, run: &ConnFn) {
    loop {
        let job = {
            let mut queue = inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                if inner.stop.load(Ordering::SeqCst) {
                    return;
                }
                queue = inner
                    .available
                    .wait(queue)
                    .unwrap_or_else(|e| e.into_inner());
            }
        };
        // The service closure has its own panic handling that degrades a
        // panicking request to a 500; this outer catch only protects the
        // pool from panics in the response-writing path itself.
        match job {
            Work::Conn { stream, enqueued } => {
                inner
                    .metrics
                    .observe(QUEUE_WAIT_MICROS, enqueued.elapsed().as_micros() as u64);
                let _ = catch_unwind(AssertUnwindSafe(|| run(stream)));
            }
            Work::Task(task) => {
                let _ = catch_unwind(AssertUnwindSafe(task));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;
    use std::net::{TcpListener, TcpStream};
    use std::sync::atomic::AtomicUsize;

    /// A connected socket pair via a throwaway listener.
    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }

    #[test]
    fn runs_submitted_connections_and_drains_on_shutdown() {
        let handled = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&handled);
        let pool = WorkerPool::new(
            2,
            16,
            SharedMetrics::new(),
            Arc::new(move |_s| {
                h.fetch_add(1, Ordering::SeqCst);
            }),
        );
        let mut keep = Vec::new();
        for _ in 0..8 {
            let (a, b) = pair();
            keep.push(a);
            pool.try_submit(b).unwrap();
        }
        pool.shutdown();
        assert_eq!(handled.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn spawned_tasks_run_alongside_connections() {
        let ran = Arc::new(AtomicUsize::new(0));
        let pool = WorkerPool::new(2, 16, SharedMetrics::new(), Arc::new(|_s| {}));
        let submitter = pool.submitter();
        for _ in 0..8 {
            let ran = Arc::clone(&ran);
            assert!(submitter.try_spawn(Box::new(move || {
                ran.fetch_add(1, Ordering::SeqCst);
            })));
        }
        pool.shutdown();
        assert_eq!(ran.load(Ordering::SeqCst), 8);
        // After shutdown the submitter politely declines.
        assert!(!submitter.try_spawn(Box::new(|| {})));
    }

    #[test]
    fn full_queue_hands_the_connection_back() {
        // One worker parked forever on a gate, capacity 1: the first
        // connection occupies the worker, the second fills the queue,
        // the third bounces.
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let g = Arc::clone(&gate);
        let metrics = SharedMetrics::new();
        let pool = WorkerPool::new(
            1,
            1,
            metrics.clone(),
            Arc::new(move |_s| {
                let (lock, cv) = &*g;
                let mut open = lock.lock().unwrap();
                while !*open {
                    open = cv.wait(open).unwrap();
                }
            }),
        );
        let mut keep = Vec::new();
        let mut accepted = 0;
        let mut bounced = 0;
        // Submit until one bounces; the worker may or may not have
        // picked up the first job yet, so allow one extra.
        for _ in 0..3 {
            let (a, b) = pair();
            keep.push(a);
            match pool.try_submit(b) {
                Ok(()) => accepted += 1,
                Err(_stream) => bounced += 1,
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        assert!(bounced >= 1, "accepted={accepted} bounced={bounced}");
        let (lock, cv) = &*gate;
        *lock.lock().unwrap() = true;
        cv.notify_all();
        pool.shutdown();
        let wait = metrics.snapshot();
        assert!(wait.histogram(QUEUE_WAIT_MICROS).unwrap().count() >= 1);
    }

    #[test]
    fn panicking_job_does_not_kill_the_worker() {
        let handled = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&handled);
        let pool = WorkerPool::new(
            1,
            8,
            SharedMetrics::new(),
            Arc::new(move |mut s: TcpStream| {
                let mut buf = [0u8; 1];
                let n = s.read(&mut buf).unwrap_or(0);
                h.fetch_add(1, Ordering::SeqCst);
                if n > 0 && buf[0] == b'!' {
                    panic!("injected job panic");
                }
            }),
        );
        use std::io::Write;
        let (mut a1, b1) = pair();
        a1.write_all(b"!").unwrap();
        pool.try_submit(b1).unwrap();
        let (mut a2, b2) = pair();
        a2.write_all(b".").unwrap();
        pool.try_submit(b2).unwrap();
        pool.shutdown();
        // The worker survived the first panic and served the second job.
        assert_eq!(handled.load(Ordering::SeqCst), 2);
    }
}
