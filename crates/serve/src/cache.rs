//! Content-addressed result cache for compile/simulate responses, with
//! an optional persistent on-disk spill.
//!
//! The service's work is deterministic: the same (source, model, width,
//! engine, knobs) always produces the same response body. The cache
//! keys on exactly that tuple — the source text folded to an FNV-1a
//! hash plus its length, the knobs spelled out — and stores the
//! serialized body, giving repeat requests `serve.cache.hit` semantics
//! like the grid engine's `grid.cells.*`.
//!
//! Only successful (200) bodies are cached; errors are cheap to
//! recompute and must never pin a transient failure. Capacity is an
//! **LRU bound**: at the limit the least-recently-used entry is
//! evicted (`serve.cache.evict`), so a hostile request stream degrades
//! hit rate, not memory.
//!
//! With a spill directory ([`ResponseCache::with_dir`]) every entry is
//! also written to disk as a length-prefixed, checksummed file named
//! by the FNV-1a hash of its key, and the directory is warm-loaded at
//! startup — a restarted server answers yesterday's requests from
//! cache (`serve.cache.disk_hit`). A truncated or bit-flipped file is
//! a logged miss (`serve.cache.corrupt`), never a panic.
//!
//! ## On-disk entry format (`<fnv64(key):016x>.sc`)
//!
//! ```text
//! offset  size  field
//! 0       8     magic "SRVCACH1"
//! 8       4     key length   (u32 LE)
//! 12      4     body length  (u32 LE)
//! 16      k     key bytes   (UTF-8)
//! 16+k    b     body bytes  (UTF-8)
//! 16+k+b  8     FNV-1a of key ++ body (u64 LE)
//! ```
//!
//! The full key is stored, so a warm load indexes by key, not by the
//! (collidable) hash in the filename; two keys that collide in the
//! filename simply overwrite each other's spill — a lost disk entry,
//! never a wrong answer.

use std::collections::HashMap;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use sentinel_trace::serve::{
    CACHE_CORRUPT, CACHE_DISK_HIT, CACHE_EVICT, CACHE_FULL, CACHE_HIT, CACHE_MISS,
};
use sentinel_trace::SharedMetrics;

/// Magic bytes opening every spill file.
const MAGIC: &[u8; 8] = b"SRVCACH1";

/// Spill-file extension.
const EXT: &str = "sc";

/// 64-bit FNV-1a over `bytes` (the content-hash half of a cache key).
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

struct Entry {
    body: String,
    /// Recency stamp: larger = more recently used.
    seq: u64,
    /// Warm-loaded from disk and not yet hit since (first hit counts
    /// `serve.cache.disk_hit`).
    from_disk: bool,
}

struct State {
    map: HashMap<String, Entry>,
    seq: u64,
}

/// Bounded LRU memo table from request cache-key to response body,
/// optionally mirrored to a spill directory.
pub struct ResponseCache {
    state: Mutex<State>,
    capacity: usize,
    dir: Option<PathBuf>,
    metrics: SharedMetrics,
}

impl ResponseCache {
    /// An empty in-memory cache holding at most `capacity` responses,
    /// reporting into `metrics`.
    pub fn new(capacity: usize, metrics: SharedMetrics) -> ResponseCache {
        ResponseCache {
            state: Mutex::new(State {
                map: HashMap::new(),
                seq: 0,
            }),
            capacity,
            dir: None,
            metrics,
        }
    }

    /// A cache that spills entries to `dir` (created if absent) and
    /// warm-loads whatever valid entries are already there.
    ///
    /// # Errors
    ///
    /// Only directory creation can fail; unreadable or corrupt entry
    /// files are counted (`serve.cache.corrupt`), logged, and skipped.
    pub fn with_dir(
        capacity: usize,
        metrics: SharedMetrics,
        dir: &Path,
    ) -> io::Result<ResponseCache> {
        std::fs::create_dir_all(dir)?;
        let cache = ResponseCache {
            dir: Some(dir.to_path_buf()),
            ..ResponseCache::new(capacity, metrics)
        };
        cache.warm_load(dir);
        Ok(cache)
    }

    fn state(&self) -> std::sync::MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The cached body for `key`, bumping hit/miss counters (and
    /// `serve.cache.disk_hit` the first time a warm-loaded entry is
    /// served after a restart).
    pub fn lookup(&self, key: &str) -> Option<String> {
        let mut state = self.state();
        state.seq += 1;
        let seq = state.seq;
        let found = match state.map.get_mut(key) {
            Some(entry) => {
                entry.seq = seq;
                if std::mem::take(&mut entry.from_disk) {
                    self.metrics.count(CACHE_DISK_HIT, 1);
                }
                Some(entry.body.clone())
            }
            None => None,
        };
        drop(state);
        self.metrics.count(
            if found.is_some() {
                CACHE_HIT
            } else {
                CACHE_MISS
            },
            1,
        );
        found
    }

    /// Retains `body` for `key`, evicting the least-recently-used
    /// entry (memory and spill file both) if the cache is at capacity.
    /// Two workers racing the same missing key both compute and the
    /// second insert wins — same body either way, since responses are
    /// deterministic.
    pub fn insert(&self, key: String, body: String) {
        if self.capacity == 0 {
            self.metrics.count(CACHE_FULL, 1);
            return;
        }
        let spill = self.spill_path(&key);
        let mut state = self.state();
        state.seq += 1;
        let seq = state.seq;
        if state.map.len() >= self.capacity && !state.map.contains_key(&key) {
            // O(n) LRU scan: capacity is ~10^3 and insert already paid
            // for a schedule+simulate, so simplicity wins over an
            // intrusive list.
            if let Some(lru) = state
                .map
                .iter()
                .min_by_key(|(_, e)| e.seq)
                .map(|(k, _)| k.clone())
            {
                state.map.remove(&lru);
                self.metrics.count(CACHE_EVICT, 1);
                if let Some(path) = self.spill_path(&lru) {
                    let _ = std::fs::remove_file(path);
                }
            }
        }
        state.map.insert(
            key.clone(),
            Entry {
                body: body.clone(),
                seq,
                from_disk: false,
            },
        );
        drop(state);
        if let Some(path) = spill {
            if let Err(e) = write_spill(&path, &key, &body) {
                // Entry stays served from memory; the spill is lost.
                self.metrics.count(CACHE_FULL, 1);
                eprintln!("serve: cache spill {}: {e}", path.display());
            }
        }
    }

    /// Number of cached responses.
    pub fn len(&self) -> usize {
        self.state().map.len()
    }

    /// Whether nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.state().map.is_empty()
    }

    fn spill_path(&self, key: &str) -> Option<PathBuf> {
        self.dir
            .as_ref()
            .map(|d| d.join(format!("{:016x}.{EXT}", fnv64(key.as_bytes()))))
    }

    /// Loads every valid spill file in `dir` (sorted by filename for a
    /// deterministic initial recency order), evicting past capacity.
    fn warm_load(&self, dir: &Path) {
        let Ok(entries) = std::fs::read_dir(dir) else {
            return;
        };
        let mut paths: Vec<PathBuf> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == EXT))
            .collect();
        paths.sort();
        for path in paths {
            match read_spill(&path) {
                Ok((key, body)) => {
                    let mut state = self.state();
                    state.seq += 1;
                    let seq = state.seq;
                    if state.map.len() >= self.capacity {
                        // More files than capacity: ignore the excess
                        // (their files stay for a larger future cache).
                        break;
                    }
                    state.map.insert(
                        key,
                        Entry {
                            body,
                            seq,
                            from_disk: true,
                        },
                    );
                }
                Err(e) => {
                    self.metrics.count(CACHE_CORRUPT, 1);
                    eprintln!("serve: cache entry {}: {e} (skipped)", path.display());
                }
            }
        }
    }
}

impl std::fmt::Debug for ResponseCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResponseCache")
            .field("len", &self.len())
            .field("capacity", &self.capacity)
            .field("dir", &self.dir)
            .finish()
    }
}

/// Serializes one entry to `path` via a temp file + rename, so readers
/// never observe a half-written entry.
fn write_spill(path: &Path, key: &str, body: &str) -> io::Result<()> {
    let mut bytes = Vec::with_capacity(24 + key.len() + body.len());
    bytes.extend_from_slice(MAGIC);
    bytes.extend_from_slice(&(key.len() as u32).to_le_bytes());
    bytes.extend_from_slice(&(body.len() as u32).to_le_bytes());
    bytes.extend_from_slice(key.as_bytes());
    bytes.extend_from_slice(body.as_bytes());
    let mut sum = Vec::with_capacity(key.len() + body.len());
    sum.extend_from_slice(key.as_bytes());
    sum.extend_from_slice(body.as_bytes());
    bytes.extend_from_slice(&fnv64(&sum).to_le_bytes());

    let tmp = path.with_extension("tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&bytes)?;
    }
    std::fs::rename(&tmp, path)
}

fn corrupt(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, what.to_string())
}

/// Parses one spill file back into `(key, body)`, validating magic,
/// lengths, checksum, and UTF-8.
///
/// # Errors
///
/// `InvalidData` for any structural problem — the caller treats every
/// error as "this file is not a cache entry".
fn read_spill(path: &Path) -> io::Result<(String, String)> {
    let bytes = std::fs::read(path)?;
    if bytes.len() < 24 {
        return Err(corrupt("truncated header"));
    }
    if &bytes[0..8] != MAGIC {
        return Err(corrupt("bad magic"));
    }
    let key_len = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
    let body_len = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
    let expected = 24usize
        .checked_add(key_len)
        .and_then(|n| n.checked_add(body_len));
    if expected != Some(bytes.len()) {
        return Err(corrupt("length mismatch"));
    }
    let key = &bytes[16..16 + key_len];
    let body = &bytes[16 + key_len..16 + key_len + body_len];
    let mut sum = Vec::with_capacity(key_len + body_len);
    sum.extend_from_slice(key);
    sum.extend_from_slice(body);
    let stored = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().unwrap());
    if fnv64(&sum) != stored {
        return Err(corrupt("checksum mismatch"));
    }
    let key = std::str::from_utf8(key).map_err(|_| corrupt("non-UTF-8 key"))?;
    let body = std::str::from_utf8(body).map_err(|_| corrupt("non-UTF-8 body"))?;
    Ok((key.to_string(), body.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A fresh per-test spill directory (no `Drop` cleanup: the path is
    /// unique per process × call, and tempdirs are CI-ephemeral).
    fn temp_dir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "sentinel-cache-{}-{tag}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn fnv_is_stable_and_content_sensitive() {
        // Reference vectors for 64-bit FNV-1a.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fnv64(b"ld r1, 0(r2)"), fnv64(b"ld r1, 8(r2)"));
    }

    #[test]
    fn lookup_counts_hits_and_misses() {
        let metrics = SharedMetrics::new();
        let c = ResponseCache::new(8, metrics.clone());
        assert!(c.is_empty());
        assert!(c.lookup("k1").is_none());
        c.insert("k1".into(), "body".into());
        assert_eq!(c.lookup("k1").as_deref(), Some("body"));
        assert_eq!(metrics.counter(CACHE_HIT), 1);
        assert_eq!(metrics.counter(CACHE_MISS), 1);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn eviction_follows_lru_order() {
        let metrics = SharedMetrics::new();
        let c = ResponseCache::new(2, metrics.clone());
        c.insert("a".into(), "1".into());
        c.insert("b".into(), "2".into());
        // Touch "a": now "b" is least recently used.
        assert!(c.lookup("a").is_some());
        c.insert("c".into(), "3".into());
        assert_eq!(c.len(), 2);
        assert_eq!(metrics.counter(CACHE_EVICT), 1);
        assert!(c.lookup("b").is_none(), "LRU entry should have gone");
        assert!(c.lookup("a").is_some());
        assert!(c.lookup("c").is_some());
        // Overwriting a resident key is not an eviction.
        c.insert("a".into(), "1'".into());
        assert_eq!(metrics.counter(CACHE_EVICT), 1);
        assert_eq!(c.lookup("a").as_deref(), Some("1'"));
    }

    #[test]
    fn warm_start_serves_spilled_entries_as_disk_hits() {
        let dir = temp_dir("warm");
        {
            let c = ResponseCache::with_dir(8, SharedMetrics::new(), &dir).unwrap();
            c.insert("k1".into(), "body-1".into());
            c.insert("k2".into(), "body-2".into());
        }
        // "Restart": a fresh cache over the same directory.
        let metrics = SharedMetrics::new();
        let c = ResponseCache::with_dir(8, metrics.clone(), &dir).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.lookup("k1").as_deref(), Some("body-1"));
        assert_eq!(c.lookup("k1").as_deref(), Some("body-1"));
        assert_eq!(c.lookup("k2").as_deref(), Some("body-2"));
        assert_eq!(metrics.counter(CACHE_HIT), 3);
        // disk_hit counts once per warm entry, on its first hit.
        assert_eq!(metrics.counter(CACHE_DISK_HIT), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn eviction_removes_the_spill_file_too() {
        let dir = temp_dir("evict");
        let metrics = SharedMetrics::new();
        {
            let c = ResponseCache::with_dir(1, metrics.clone(), &dir).unwrap();
            c.insert("a".into(), "1".into());
            c.insert("b".into(), "2".into());
            assert_eq!(metrics.counter(CACHE_EVICT), 1);
        }
        let survivors: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .collect();
        assert_eq!(survivors.len(), 1, "evicted entry's file should be gone");
        let c2 = ResponseCache::with_dir(8, SharedMetrics::new(), &dir).unwrap();
        assert!(c2.lookup("a").is_none());
        assert_eq!(c2.lookup("b").as_deref(), Some("2"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_and_truncated_files_are_logged_misses_not_panics() {
        let dir = temp_dir("corrupt");
        {
            let c = ResponseCache::with_dir(8, SharedMetrics::new(), &dir).unwrap();
            c.insert("good".into(), "kept".into());
            c.insert("flip".into(), "bits".into());
            c.insert("cut".into(), "short".into());
        }
        // Bit-flip one file's checksum region and truncate another.
        let flip = dir.join(format!("{:016x}.{EXT}", fnv64(b"flip")));
        let mut bytes = std::fs::read(&flip).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&flip, &bytes).unwrap();
        let cut = dir.join(format!("{:016x}.{EXT}", fnv64(b"cut")));
        let bytes = std::fs::read(&cut).unwrap();
        std::fs::write(&cut, &bytes[..10]).unwrap();
        // Plus a file that was never a cache entry at all.
        std::fs::write(dir.join(format!("junk.{EXT}")), b"not a cache entry").unwrap();

        let metrics = SharedMetrics::new();
        let c = ResponseCache::with_dir(8, metrics.clone(), &dir).unwrap();
        assert_eq!(metrics.counter(CACHE_CORRUPT), 3);
        assert_eq!(c.lookup("good").as_deref(), Some("kept"));
        assert!(c.lookup("flip").is_none());
        assert!(c.lookup("cut").is_none());
        assert_eq!(metrics.counter(CACHE_MISS), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn spill_roundtrip_preserves_key_and_body() {
        let dir = temp_dir("roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("x.{EXT}"));
        write_spill(&path, "key|with|bars", "{\"cycles\":42}").unwrap();
        let (key, body) = read_spill(&path).unwrap();
        assert_eq!(key, "key|with|bars");
        assert_eq!(body, "{\"cycles\":42}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
