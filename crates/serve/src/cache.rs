//! Content-hash result cache for compile/simulate responses.
//!
//! The service's work is deterministic: the same (source, model, width,
//! engine, knobs) always produces the same response body. The cache
//! keys on exactly that tuple — the source text folded to an FNV-1a
//! hash plus its length, the knobs spelled out — and stores the
//! serialized body, giving repeat requests `serve.cache.hit` semantics
//! like the grid engine's `grid.cells.*`.
//!
//! Only successful (200) bodies are cached; errors are cheap to
//! recompute and must never pin a transient failure. Capacity is
//! bounded: at the limit, fresh results are served but not retained
//! (`serve.cache.full`), so a hostile request stream degrades hit rate,
//! not memory.

use std::collections::HashMap;
use std::sync::Mutex;

use sentinel_trace::serve::{CACHE_FULL, CACHE_HIT, CACHE_MISS};
use sentinel_trace::SharedMetrics;

/// 64-bit FNV-1a over `bytes` (the content-hash half of a cache key).
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Bounded memo table from request cache-key to response body.
#[derive(Debug)]
pub struct ResponseCache {
    map: Mutex<HashMap<String, String>>,
    capacity: usize,
    metrics: SharedMetrics,
}

impl ResponseCache {
    /// An empty cache holding at most `capacity` responses, reporting
    /// into `metrics`.
    pub fn new(capacity: usize, metrics: SharedMetrics) -> ResponseCache {
        ResponseCache {
            map: Mutex::new(HashMap::new()),
            capacity,
            metrics,
        }
    }

    fn map(&self) -> std::sync::MutexGuard<'_, HashMap<String, String>> {
        self.map.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The cached body for `key`, bumping hit/miss counters.
    pub fn lookup(&self, key: &str) -> Option<String> {
        let found = self.map().get(key).cloned();
        self.metrics.count(
            if found.is_some() {
                CACHE_HIT
            } else {
                CACHE_MISS
            },
            1,
        );
        found
    }

    /// Retains `body` for `key` if there is room (and counts
    /// `serve.cache.full` if not). Two workers racing the same missing
    /// key both compute and the second insert wins — same body either
    /// way, since responses are deterministic.
    pub fn insert(&self, key: String, body: String) {
        let mut map = self.map();
        if map.len() >= self.capacity && !map.contains_key(&key) {
            drop(map);
            self.metrics.count(CACHE_FULL, 1);
            return;
        }
        map.insert(key, body);
    }

    /// Number of cached responses.
    pub fn len(&self) -> usize {
        self.map().len()
    }

    /// Whether nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.map().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_stable_and_content_sensitive() {
        // Reference vectors for 64-bit FNV-1a.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fnv64(b"ld r1, 0(r2)"), fnv64(b"ld r1, 8(r2)"));
    }

    #[test]
    fn lookup_counts_hits_and_misses() {
        let metrics = SharedMetrics::new();
        let c = ResponseCache::new(8, metrics.clone());
        assert!(c.is_empty());
        assert!(c.lookup("k1").is_none());
        c.insert("k1".into(), "body".into());
        assert_eq!(c.lookup("k1").as_deref(), Some("body"));
        assert_eq!(metrics.counter(CACHE_HIT), 1);
        assert_eq!(metrics.counter(CACHE_MISS), 1);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn capacity_bounds_retention_not_service() {
        let metrics = SharedMetrics::new();
        let c = ResponseCache::new(2, metrics.clone());
        c.insert("a".into(), "1".into());
        c.insert("b".into(), "2".into());
        c.insert("c".into(), "3".into());
        assert_eq!(c.len(), 2);
        assert!(c.lookup("c").is_none());
        assert_eq!(metrics.counter(CACHE_FULL), 1);
        // Overwriting a resident key is not an eviction problem.
        c.insert("a".into(), "1'".into());
        assert_eq!(c.lookup("a").as_deref(), Some("1'"));
    }
}
