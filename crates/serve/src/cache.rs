//! Content-addressed result cache for compile/simulate responses —
//! the serve-flavored instance of the shared [`sentinel_spec::Store`].
//!
//! The service's work is deterministic: the same job spec always
//! produces the same response body. Cache keys are
//! [`JobSpec`](sentinel_spec::JobSpec) canonical strings (built by
//! `api::ApiRequest::cache_key` via `to_spec`), so serve, the bench
//! grid, and the CLI all address identical work identically — a
//! response cached here is a `--spec <hash>` reproduction target for
//! free, because the store spills record the full key.
//!
//! Only successful (200) bodies are cached; errors are cheap to
//! recompute and must never pin a transient failure. Everything else —
//! the LRU bound, the checksummed spill files, warm loading, corrupt
//! files degrading to logged misses — is the generic [`Store`]
//! behavior; see [`sentinel_spec::store`] for the on-disk format. The
//! one serve-specific twist is metric naming: this instance reports
//! under the historical `serve.cache.*` aliases (wired via
//! [`StoreMetricNames`]) so `/metrics` output stays byte-compatible
//! with pre-extraction dashboards.

use std::io;
use std::path::Path;

use sentinel_spec::{Store, StoreMetricNames};
use sentinel_trace::serve::{
    CACHE_CORRUPT, CACHE_DISK_HIT, CACHE_EVICT, CACHE_FULL, CACHE_HIT, CACHE_MISS,
};
use sentinel_trace::SharedMetrics;

pub use sentinel_spec::fnv64;

/// The `serve.cache.*` alias vocabulary this instance reports under
/// (back-compat for dashboards; canonically these events are
/// `store.*` — see [`sentinel_trace::store`]).
const SERVE_NAMES: StoreMetricNames = StoreMetricNames {
    hit: CACHE_HIT,
    miss: CACHE_MISS,
    disk_hit: CACHE_DISK_HIT,
    evict: CACHE_EVICT,
    corrupt: CACHE_CORRUPT,
    full: CACHE_FULL,
};

/// Bounded LRU memo table from request cache-key to response body,
/// optionally mirrored to a spill directory.
#[derive(Debug)]
pub struct ResponseCache {
    store: Store,
}

impl ResponseCache {
    /// An empty in-memory cache holding at most `capacity` responses,
    /// reporting into `metrics` under the `serve.cache.*` names.
    pub fn new(capacity: usize, metrics: SharedMetrics) -> ResponseCache {
        ResponseCache {
            store: Store::new(capacity, metrics).metric_names(SERVE_NAMES),
        }
    }

    /// A cache that spills entries to `dir` (created if absent) and
    /// warm-loads whatever valid entries are already there.
    ///
    /// # Errors
    ///
    /// Only directory creation can fail; unreadable or corrupt entry
    /// files are counted (`serve.cache.corrupt`), logged, and skipped.
    pub fn with_dir(
        capacity: usize,
        metrics: SharedMetrics,
        dir: &Path,
    ) -> io::Result<ResponseCache> {
        Ok(ResponseCache {
            store: Store::new(capacity, metrics)
                .metric_names(SERVE_NAMES)
                .attach_dir(dir)?,
        })
    }

    /// The cached body for `key`, bumping hit/miss counters (and
    /// `serve.cache.disk_hit` the first time a warm-loaded entry is
    /// served after a restart).
    pub fn lookup(&self, key: &str) -> Option<String> {
        self.store.lookup(key)
    }

    /// Retains `body` for `key`, evicting the least-recently-used
    /// entry (memory and spill file both) if the cache is at capacity.
    pub fn insert(&self, key: String, body: String) {
        self.store.insert(key, body)
    }

    /// Number of cached responses.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Whether nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "sentinel-cache-{}-{tag}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn fnv_is_the_shared_implementation() {
        // Reference vectors for 64-bit FNV-1a; the symbol itself is a
        // re-export of `sentinel_spec::fnv64`.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv64(b"x"), sentinel_spec::fnv64(b"x"));
    }

    #[test]
    fn hits_and_misses_count_under_the_serve_aliases() {
        let metrics = SharedMetrics::new();
        let c = ResponseCache::new(8, metrics.clone());
        assert!(c.is_empty());
        assert!(c.lookup("k1").is_none());
        c.insert("k1".into(), "body".into());
        assert_eq!(c.lookup("k1").as_deref(), Some("body"));
        assert_eq!(metrics.counter(CACHE_HIT), 1);
        assert_eq!(metrics.counter(CACHE_MISS), 1);
        assert_eq!(metrics.counter("store.hit"), 0, "aliases, not both names");
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn warm_start_counts_disk_hits_under_the_serve_alias() {
        let dir = temp_dir("warm");
        {
            let c = ResponseCache::with_dir(8, SharedMetrics::new(), &dir).unwrap();
            c.insert("k1".into(), "body-1".into());
        }
        let metrics = SharedMetrics::new();
        let c = ResponseCache::with_dir(8, metrics.clone(), &dir).unwrap();
        assert_eq!(c.lookup("k1").as_deref(), Some("body-1"));
        assert_eq!(metrics.counter(CACHE_DISK_HIT), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
