//! SIGINT notification without dependencies: the handler flips one
//! `AtomicBool`; the serve loop polls it and starts a graceful drain.
//!
//! The handler body is a single atomic store — async-signal-safe — and
//! this is the only module in the crate allowed to use `unsafe` (for
//! the raw `signal(2)` registration).

use std::sync::atomic::{AtomicBool, Ordering};

static SIGINT: AtomicBool = AtomicBool::new(false);

/// Whether SIGINT has been received since [`install`].
pub fn received() -> bool {
    SIGINT.load(Ordering::SeqCst)
}

/// Test support: simulate the signal having fired.
pub fn trigger() {
    SIGINT.store(true, Ordering::SeqCst);
}

/// Installs the SIGINT handler (no-op on non-Unix targets).
pub fn install() {
    imp::install();
}

#[cfg(unix)]
#[allow(unsafe_code)]
mod imp {
    use super::SIGINT;
    use std::sync::atomic::Ordering;

    // std links libc, so the classic signal(2) registration is
    // available without any crate dependency.
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_sigint(_signum: i32) {
        SIGINT.store(true, Ordering::SeqCst);
    }

    const SIGINT_NUM: i32 = 2;

    pub fn install() {
        unsafe {
            signal(SIGINT_NUM, on_sigint as extern "C" fn(i32) as usize);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}
