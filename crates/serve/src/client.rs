//! A small blocking HTTP client for the service — enough for the CLI,
//! the load generator, CI smoke tests, and the integration suite, with
//! the same std-only constraint as the server.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A fully-read response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientResponse {
    /// Status code from the status line.
    pub status: u16,
    /// Headers in arrival order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Body as UTF-8 text.
    pub body: String,
}

impl ClientResponse {
    /// First header named `name` (ASCII case-insensitive), if any.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Issues one request (`Connection: close`) and reads the full
/// response.
///
/// # Errors
///
/// Transport failures and responses the client cannot parse.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    extra_headers: &[(&str, &str)],
) -> io::Result<ClientResponse> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    stream.set_write_timeout(Some(Duration::from_secs(30)))?;

    let mut head = format!("{method} {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n");
    for (name, value) in extra_headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    if let Some(body) = body {
        head.push_str(&format!(
            "Content-Type: application/json\r\nContent-Length: {}\r\n",
            body.len()
        ));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    if let Some(body) = body {
        stream.write_all(body.as_bytes())?;
    }
    stream.flush()?;

    read_response(&mut stream)
}

/// `GET path`.
///
/// # Errors
///
/// See [`request`].
pub fn get(addr: &str, path: &str) -> io::Result<ClientResponse> {
    request(addr, "GET", path, None, &[])
}

/// `POST path` with a JSON body.
///
/// # Errors
///
/// See [`request`].
pub fn post_json(addr: &str, path: &str, body: &str) -> io::Result<ClientResponse> {
    request(addr, "POST", path, Some(body), &[])
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

fn read_response(stream: &mut TcpStream) -> io::Result<ClientResponse> {
    let mut reader = BufReader::new(stream);

    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| bad("malformed status line"))?;

    let mut headers = Vec::new();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line)?;
        let line = line.trim_end_matches(['\r', '\n']);
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| bad("malformed header"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok());
    let mut body = Vec::new();
    match content_length {
        Some(n) => {
            body.resize(n, 0);
            reader.read_exact(&mut body)?;
        }
        // Connection: close delimits the body.
        None => {
            reader.read_to_end(&mut body)?;
        }
    }
    let body = String::from_utf8(body).map_err(|_| bad("non-UTF-8 body"))?;
    Ok(ClientResponse {
        status,
        headers,
        body,
    })
}
