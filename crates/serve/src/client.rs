//! A small blocking HTTP client for the service — enough for the CLI,
//! the load generator, CI smoke tests, and the integration suite, with
//! the same std-only constraint as the server.
//!
//! [`Client`] is built once (address, timeouts, keep-alive policy) and
//! then issues many requests, mirroring the `SimSession` /
//! `CompileSession` builder idiom used elsewhere in the tree. With
//! keep-alive on (the default) it holds one socket open across
//! requests and reconnects — retrying the request once — when the
//! server has meanwhile closed it (idle timeout, per-connection
//! request bound). The service's endpoints are pure compute over the
//! request body, so the single retry is safe.
//!
//! [`Client`] is the whole surface: the pre-0.8 free functions
//! (`request`/`get`/`post_json`) went through a deprecation cycle and
//! are gone — one-shot `Connection: close` behavior is
//! `Client::builder(addr).keep_alive(false)`.

use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use crate::api::{ApiRequest, ApiResponse, BatchRequest};

/// A fully-read response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientResponse {
    /// Status code from the status line.
    pub status: u16,
    /// Headers in arrival order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Body as UTF-8 text.
    pub body: String,
}

impl ClientResponse {
    /// First header named `name` (ASCII case-insensitive), if any.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Configures a [`Client`]; start from [`Client::builder`].
#[derive(Debug, Clone)]
pub struct ClientBuilder {
    addr: String,
    read_timeout: Duration,
    write_timeout: Duration,
    keep_alive: bool,
}

impl ClientBuilder {
    /// Per-read socket timeout (default 30 s).
    #[must_use]
    pub fn read_timeout(mut self, d: Duration) -> ClientBuilder {
        self.read_timeout = d;
        self
    }

    /// Per-write socket timeout (default 30 s).
    #[must_use]
    pub fn write_timeout(mut self, d: Duration) -> ClientBuilder {
        self.write_timeout = d;
        self
    }

    /// Whether to reuse one socket across requests (default `true`).
    /// Off, every request opens a fresh `Connection: close` socket —
    /// the baseline the load generator compares against.
    #[must_use]
    pub fn keep_alive(mut self, on: bool) -> ClientBuilder {
        self.keep_alive = on;
        self
    }

    /// Finishes the builder.
    #[must_use]
    pub fn build(self) -> Client {
        Client {
            addr: self.addr,
            read_timeout: self.read_timeout,
            write_timeout: self.write_timeout,
            keep_alive: self.keep_alive,
            socket: None,
            connections_opened: 0,
            requests_sent: 0,
        }
    }
}

/// A blocking HTTP client bound to one server address.
#[derive(Debug)]
pub struct Client {
    addr: String,
    read_timeout: Duration,
    write_timeout: Duration,
    keep_alive: bool,
    /// The kept-alive socket, buffered so pipelined response bytes
    /// survive between requests.
    socket: Option<BufReader<TcpStream>>,
    connections_opened: u64,
    requests_sent: u64,
}

impl Client {
    /// A builder targeting `addr` (`host:port`).
    pub fn builder(addr: &str) -> ClientBuilder {
        ClientBuilder {
            addr: addr.to_string(),
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(30),
            keep_alive: true,
        }
    }

    /// A keep-alive client with default timeouts.
    #[must_use]
    pub fn new(addr: &str) -> Client {
        Client::builder(addr).build()
    }

    /// Connections this client has opened so far. With keep-alive this
    /// stays near 1; the ratio against [`Client::requests_sent`] is
    /// the connection-reuse rate.
    #[must_use]
    pub fn connections_opened(&self) -> u64 {
        self.connections_opened
    }

    /// Requests issued through this client.
    #[must_use]
    pub fn requests_sent(&self) -> u64 {
        self.requests_sent
    }

    /// Issues one request and reads the full response.
    ///
    /// # Errors
    ///
    /// Transport failures and responses the client cannot parse. A
    /// failure on a *reused* socket is retried once on a fresh one
    /// before surfacing.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
        extra_headers: &[(&str, &str)],
    ) -> io::Result<ClientResponse> {
        self.requests_sent += 1;
        let reused = self.keep_alive && self.socket.is_some();
        match self.attempt(method, path, body, extra_headers) {
            Ok(resp) => Ok(resp),
            Err(_) if reused => {
                // The kept socket went stale (server-side idle timeout
                // or request bound); one fresh-socket retry.
                self.socket = None;
                self.attempt(method, path, body, extra_headers)
            }
            Err(e) => {
                self.socket = None;
                Err(e)
            }
        }
    }

    /// `GET path`.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn get(&mut self, path: &str) -> io::Result<ClientResponse> {
        self.request("GET", path, None, &[])
    }

    /// `POST path` with a JSON body.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn post_json(&mut self, path: &str, body: &str) -> io::Result<ClientResponse> {
        self.request("POST", path, Some(body), &[])
    }

    /// Runs one typed job on its endpoint and parses the reply.
    ///
    /// # Errors
    ///
    /// Transport failures only; HTTP-level errors come back as
    /// [`ApiResponse::Error`].
    pub fn call(&mut self, job: &ApiRequest) -> io::Result<ApiResponse> {
        let resp = self.post_json(job.kind().path(), &job.to_json())?;
        Ok(ApiResponse::from_http(resp.status, &resp.body))
    }

    /// Runs a batch on `POST /v1/batch` and parses the envelope.
    ///
    /// # Errors
    ///
    /// See [`Client::call`].
    pub fn call_batch(&mut self, batch: &BatchRequest) -> io::Result<ApiResponse> {
        let resp = self.post_json("/v1/batch", &batch.to_json())?;
        Ok(ApiResponse::from_http(resp.status, &resp.body))
    }

    fn attempt(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
        extra_headers: &[(&str, &str)],
    ) -> io::Result<ClientResponse> {
        if self.socket.is_none() {
            let stream = TcpStream::connect(&self.addr)?;
            // Nagle off — the request head and body are separate small
            // writes, and on a reused socket the coalescing delay
            // stacks with the server's delayed ACK.
            stream.set_nodelay(true)?;
            stream.set_read_timeout(Some(self.read_timeout))?;
            stream.set_write_timeout(Some(self.write_timeout))?;
            self.connections_opened += 1;
            self.socket = Some(BufReader::new(stream));
        }
        let connection = if self.keep_alive {
            "keep-alive"
        } else {
            "close"
        };
        let mut head = format!(
            "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: {connection}\r\n",
            addr = self.addr
        );
        for (name, value) in extra_headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        if let Some(body) = body {
            head.push_str(&format!(
                "Content-Type: application/json\r\nContent-Length: {}\r\n",
                body.len()
            ));
        }
        head.push_str("\r\n");

        let sock = self.socket.as_mut().expect("socket just ensured");
        let stream = sock.get_mut();
        stream.write_all(head.as_bytes())?;
        if let Some(body) = body {
            stream.write_all(body.as_bytes())?;
        }
        stream.flush()?;

        let resp = read_response(sock)?;
        // Only a delimited response on a mutually kept-alive exchange
        // leaves the socket reusable.
        let reusable = self.keep_alive
            && resp.header("content-length").is_some()
            && !resp
                .header("connection")
                .is_some_and(|v| v.eq_ignore_ascii_case("close"));
        if !reusable {
            self.socket = None;
        }
        Ok(resp)
    }
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

fn read_response(reader: &mut impl BufRead) -> io::Result<ClientResponse> {
    let mut status_line = String::new();
    if reader.read_line(&mut status_line)? == 0 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed before a status line",
        ));
    }
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| bad("malformed status line"))?;

    let mut headers = Vec::new();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line)?;
        let line = line.trim_end_matches(['\r', '\n']);
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| bad("malformed header"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok());
    let mut body = Vec::new();
    match content_length {
        Some(n) => {
            body.resize(n, 0);
            reader.read_exact(&mut body)?;
        }
        // No length: the connection close delimits the body (and the
        // caller drops the socket).
        None => {
            reader.read_to_end(&mut body)?;
        }
    }
    let body = String::from_utf8(body).map_err(|_| bad("non-UTF-8 body"))?;
    Ok(ClientResponse {
        status,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;
    use std::net::TcpListener;

    /// Reads one request head (through the blank line) off `stream`;
    /// `false` when the peer closed instead.
    fn read_head(stream: &mut TcpStream) -> bool {
        let mut seen = Vec::new();
        let mut byte = [0u8; 1];
        loop {
            match stream.read(&mut byte) {
                Ok(0) | Err(_) => return false,
                Ok(_) => seen.push(byte[0]),
            }
            if seen.ends_with(b"\r\n\r\n") {
                return true;
            }
        }
    }

    fn canned(stream: &mut TcpStream, body: &str) {
        let resp = format!(
            "HTTP/1.1 200 OK\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n{body}",
            body.len()
        );
        stream.write_all(resp.as_bytes()).unwrap();
    }

    #[test]
    fn keep_alive_reuses_one_socket_across_requests() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let mut served = 0;
            while read_head(&mut stream) {
                canned(&mut stream, "ok");
                served += 1;
            }
            served
        });
        let mut client = Client::new(&addr);
        for _ in 0..3 {
            assert_eq!(client.get("/healthz").unwrap().status, 200);
        }
        drop(client);
        assert_eq!(server.join().unwrap(), 3);
    }

    #[test]
    fn counters_expose_the_reuse_rate() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            while read_head(&mut stream) {
                canned(&mut stream, "ok");
            }
        });
        let mut client = Client::new(&addr);
        for _ in 0..4 {
            client.get("/").unwrap();
        }
        assert_eq!(client.connections_opened(), 1);
        assert_eq!(client.requests_sent(), 4);
        drop(client);
        server.join().unwrap();
    }

    #[test]
    fn stale_kept_socket_is_retried_on_a_fresh_connection() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            // First connection: one response, then hang up.
            let (mut stream, _) = listener.accept().unwrap();
            assert!(read_head(&mut stream));
            canned(&mut stream, "one");
            drop(stream);
            // The client's retry arrives on a second connection.
            let (mut stream, _) = listener.accept().unwrap();
            assert!(read_head(&mut stream));
            canned(&mut stream, "two");
        });
        let mut client = Client::new(&addr);
        assert_eq!(client.get("/").unwrap().body, "one");
        assert_eq!(client.get("/").unwrap().body, "two");
        assert_eq!(client.connections_opened(), 2);
        drop(client);
        server.join().unwrap();
    }

    #[test]
    fn connection_close_response_drops_the_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            for body in ["one", "two"] {
                let (mut stream, _) = listener.accept().unwrap();
                assert!(read_head(&mut stream));
                let resp = format!(
                    "HTTP/1.1 200 OK\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
                    body.len()
                );
                stream.write_all(resp.as_bytes()).unwrap();
            }
        });
        let mut client = Client::new(&addr);
        assert_eq!(client.get("/").unwrap().body, "one");
        assert_eq!(client.get("/").unwrap().body, "two");
        // The server said close both times, so each request opened a
        // fresh connection even though keep-alive was requested.
        assert_eq!(client.connections_opened(), 2);
        drop(client);
        server.join().unwrap();
    }
}
