//! The `serve` command-line interface.
//!
//! Shared between the standalone `sentinel-serve` binary entry point
//! and the `sentinel serve` subcommand. Startup prints one readiness
//! line to stderr (CI greps for it before issuing requests); SIGINT
//! triggers a graceful drain, and the final metrics snapshot goes to
//! stderr on the way out.

use std::path::PathBuf;
use std::time::Duration;

use crate::server::{self, ServerConfig};
use crate::signal;

/// Exit status for a usage error (unknown flag or bad value).
pub const USAGE_STATUS: i32 = 2;

const USAGE: &str = "usage: serve [--addr HOST] [--port N] [--workers N] [--queue N] \
                     [--cache N] [--cache-dir PATH] [--version]";

#[derive(Debug, Clone, PartialEq, Eq)]
struct Cli {
    addr: String,
    port: u16,
    workers: usize,
    queue: usize,
    cache: usize,
    cache_dir: Option<PathBuf>,
    version: bool,
}

fn parse(args: &[String]) -> Result<Cli, String> {
    let defaults = ServerConfig::default();
    let mut cli = Cli {
        addr: "127.0.0.1".to_string(),
        port: 7077,
        workers: defaults.workers,
        queue: defaults.queue_depth,
        cache: defaults.cache_capacity,
        cache_dir: None,
        version: false,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut num = |flag: &str| -> Result<usize, String> {
            it.next()
                .ok_or_else(|| format!("{flag} requires a value"))?
                .parse::<usize>()
                .map_err(|_| format!("{flag} requires an unsigned integer"))
        };
        match a.as_str() {
            "--version" => cli.version = true,
            "--addr" => {
                cli.addr = it
                    .next()
                    .ok_or_else(|| "--addr requires a value".to_string())?
                    .clone();
            }
            "--port" => {
                cli.port = num("--port")?
                    .try_into()
                    .map_err(|_| "--port must fit in 16 bits".to_string())?;
            }
            "--workers" => cli.workers = num("--workers")?.max(1),
            "--queue" => cli.queue = num("--queue")?.max(1),
            "--cache" => cli.cache = num("--cache")?,
            "--cache-dir" => {
                cli.cache_dir = Some(PathBuf::from(
                    it.next()
                        .ok_or_else(|| "--cache-dir requires a value".to_string())?,
                ));
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(cli)
}

/// Runs `serve` with the given arguments (excluding the program /
/// subcommand name). Returns the process exit status.
pub fn run(args: &[String]) -> i32 {
    let cli = match parse(args) {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("serve: {msg}");
            eprintln!("{USAGE}");
            return USAGE_STATUS;
        }
    };
    if cli.version {
        println!("sentinel-serve {}", env!("CARGO_PKG_VERSION"));
        return 0;
    }

    signal::install();
    let cfg = ServerConfig {
        addr: format!("{}:{}", cli.addr, cli.port),
        workers: cli.workers,
        queue_depth: cli.queue,
        cache_capacity: cli.cache,
        cache_dir: cli.cache_dir.clone(),
        ..ServerConfig::default()
    };
    let handle = match server::start(cfg) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("serve: start on {}:{}: {e}", cli.addr, cli.port);
            return 1;
        }
    };
    eprintln!(
        "sentinel-serve listening on {} (workers={}, queue={})",
        handle.addr(),
        cli.workers,
        cli.queue
    );

    while !signal::received() {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("sentinel-serve draining (SIGINT)");
    let final_metrics = handle.shutdown();
    eprint!("{}", final_metrics.render());
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_flags_with_defaults() {
        let cli = parse(&args(&["--port", "0", "--workers", "3"])).unwrap();
        assert_eq!(cli.port, 0);
        assert_eq!(cli.workers, 3);
        assert_eq!(cli.addr, "127.0.0.1");
        assert_eq!(cli.cache_dir, None);
        assert!(!cli.version);
    }

    #[test]
    fn cache_dir_takes_a_path() {
        let cli = parse(&args(&["--cache-dir", "/tmp/spill"])).unwrap();
        assert_eq!(cli.cache_dir, Some(PathBuf::from("/tmp/spill")));
        assert!(parse(&args(&["--cache-dir"])).is_err());
    }

    #[test]
    fn rejects_unknown_and_malformed_flags() {
        assert!(parse(&args(&["--nope"])).is_err());
        assert!(parse(&args(&["--port"])).is_err());
        assert!(parse(&args(&["--port", "many"])).is_err());
        assert!(parse(&args(&["--port", "70777"])).is_err());
        assert_eq!(run(&args(&["--nope"])), USAGE_STATUS);
    }

    #[test]
    fn version_flag_short_circuits() {
        assert_eq!(run(&args(&["--version"])), 0);
    }
}
