//! sentinel-serve: a networked compile-and-simulate service.
//!
//! Turns the schedule/simulate pipeline into a long-lived service:
//! `POST /v1/compile` schedules assembly text and reports schedule
//! statistics; `POST /v1/simulate` runs a suite benchmark or inline
//! source and reports `Measured`-style execution statistics;
//! `GET /metrics` exposes the shared metrics registry in Prometheus
//! text format; `GET /healthz` answers liveness probes.
//!
//! Everything is `std`-only: a hand-rolled HTTP/1.1 layer
//! ([`http`]), a fixed worker pool with a bounded queue and 429
//! backpressure ([`pool`]), a content-hash result cache ([`cache`]),
//! and SIGINT-triggered graceful drain ([`signal`], [`server`]).
//! Responses are deterministic bytes — the same request always gets
//! the same body, whether computed or cached, HTTP or in-process.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod cache;
pub mod cli;
pub mod client;
pub mod http;
pub mod pool;
pub mod prom;
pub mod server;
pub mod signal;
