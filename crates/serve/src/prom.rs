//! Prometheus text exposition (format version 0.0.4) for a
//! [`Metrics`] snapshot.
//!
//! Counter and histogram families are merged into one stream sorted by
//! metric name, so `GET /metrics` is byte-deterministic for a given
//! snapshot regardless of which instrumentation site touched its metric
//! first.

use std::fmt::Write;

use sentinel_trace::{Histogram, Metrics};

/// Maps a dotted metric name (`serve.cache.hit`) to a legal Prometheus
/// name (`serve_cache_hit`).
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

fn render_counter(out: &mut String, name: &str, v: u64) {
    let _ = writeln!(out, "# TYPE {name} counter");
    let _ = writeln!(out, "{name} {v}");
}

fn render_histogram(out: &mut String, name: &str, h: &Histogram) {
    let _ = writeln!(out, "# TYPE {name} histogram");
    let mut cumulative = 0u64;
    for (bound, n) in h.nonempty_buckets() {
        cumulative += n;
        if bound == u64::MAX {
            // The overflow bucket folds into +Inf below.
            continue;
        }
        // Bucket upper bounds are exclusive (`v < bound`); Prometheus
        // `le` is inclusive, and samples are integers.
        let _ = writeln!(out, "{name}_bucket{{le=\"{}\"}} {cumulative}", bound - 1);
    }
    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count());
    let _ = writeln!(out, "{name}_sum {}", h.sum());
    let _ = writeln!(out, "{name}_count {}", h.count());
}

/// Renders every counter and histogram of `m`, sorted by metric name.
pub fn render(m: &Metrics) -> String {
    enum Family<'a> {
        Counter(u64),
        Histogram(&'a Histogram),
    }
    let mut families: Vec<(String, Family<'_>)> = m
        .counters()
        .map(|(k, v)| (sanitize(k), Family::Counter(v)))
        .chain(
            m.histograms()
                .map(|(k, h)| (sanitize(k), Family::Histogram(h))),
        )
        .collect();
    families.sort_by(|a, b| a.0.cmp(&b.0));

    let mut out = String::new();
    for (name, family) in families {
        match family {
            Family::Counter(v) => render_counter(&mut out, &name, v),
            Family::Histogram(h) => render_histogram(&mut out, &name, h),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitizes_names() {
        assert_eq!(sanitize("serve.cache.hit"), "serve_cache_hit");
        assert_eq!(
            sanitize("compile.pass.clear-tags.micros"),
            "compile_pass_clear_tags_micros"
        );
        assert_eq!(sanitize("ok_name:x9"), "ok_name:x9");
    }

    #[test]
    fn renders_counters_and_histograms_sorted() {
        let mut m = Metrics::new();
        m.count("serve.http.requests", 2);
        m.count("grid.cells.hit", 1);
        m.observe("serve.request.micros", 3);
        m.observe("serve.request.micros", 100);
        let text = render(&m);
        let grid = text.find("grid_cells_hit 1").unwrap();
        let req = text.find("serve_http_requests 2").unwrap();
        let hist = text.find("# TYPE serve_request_micros histogram").unwrap();
        assert!(grid < req && req < hist, "{text}");
        // 3 → bucket <4 (le 3); 100 → bucket <128 (le 127); both cumulative.
        assert!(
            text.contains("serve_request_micros_bucket{le=\"3\"} 1\n"),
            "{text}"
        );
        assert!(
            text.contains("serve_request_micros_bucket{le=\"127\"} 2\n"),
            "{text}"
        );
        assert!(
            text.contains("serve_request_micros_bucket{le=\"+Inf\"} 2\n"),
            "{text}"
        );
        assert!(text.contains("serve_request_micros_sum 103\n"), "{text}");
        assert!(text.contains("serve_request_micros_count 2\n"), "{text}");
    }

    #[test]
    fn render_is_deterministic_across_insertion_order() {
        let mut a = Metrics::new();
        a.count("b.two", 2);
        a.count("a.one", 1);
        a.observe("c.three", 3);
        let mut b = Metrics::new();
        b.observe("c.three", 3);
        b.count("a.one", 1);
        b.count("b.two", 2);
        assert_eq!(render(&a), render(&b));
    }

    #[test]
    fn empty_registry_renders_empty() {
        assert_eq!(render(&Metrics::new()), "");
    }
}
