//! Sentinel list scheduling (paper §3.3 and Appendix).
//!
//! A priority list scheduler over the reduced dependence graph:
//! critical-path-height priorities, issue-width and one-branch-per-cycle
//! resource constraints, and operand-ready times from edge latencies.
//!
//! The sentinel extension happens at issue time: when an instruction
//! issues *above* a branch that originally preceded it, its speculative
//! modifier is set; if it is **unprotected**, an explicit sentinel is
//! inserted into its home block — `check_exception(dest)` for
//! computational instructions, `confirm_store(index)` for stores — pinned
//! there by control dependences exactly as the Appendix prescribes:
//!
//! * a flow dependence from the instruction to its sentinel,
//! * a control dependence from the first branch the instruction moved
//!   above (the delimiter preceding its home block) to the sentinel, and
//! * a control dependence from the sentinel to the first branch
//!   originally below the instruction.
//!
//! With recovery enabled (§3.7), the sentinel additionally precedes every
//! unscheduled same-region instruction that would clobber restartable
//! inputs (restriction 4's dynamic half) and every later same-region
//! store.

use std::collections::HashMap;

use sentinel_isa::{Insn, InsnId, MachineDesc, Opcode};

use crate::depgraph::{is_region_delimiter, Dep, DepGraph, DepKind};
use crate::models::SchedOptions;
use crate::reduction::Reduction;
use crate::ScheduleError;

/// Per-block scheduling statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlockSchedStats {
    /// Instructions whose speculative modifier was set.
    pub speculated: usize,
    /// `check_exception` sentinels inserted.
    pub checks_inserted: usize,
    /// `confirm_store` sentinels inserted.
    pub confirms_inserted: usize,
    /// Schedule length in cycles.
    pub cycles: u64,
    /// Stores pinned non-speculative to satisfy the store-buffer
    /// separation constraint (§4.2).
    pub pinned_stores: usize,
}

/// The scheduled form of one block.
#[derive(Debug, Clone)]
pub struct BlockSchedule {
    /// Instructions in issue (linear) order, with final speculative flags,
    /// sentinel insertions, and resolved `confirm_store` indices.
    pub insns: Vec<Insn>,
    /// Issue cycle of each instruction in `insns`.
    pub cycles: Vec<u64>,
    /// Statistics.
    pub stats: BlockSchedStats,
}

impl std::fmt::Display for BlockSchedule {
    /// Renders in the paper's Figure 1(b) style: `[n]` is the issue cycle.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (insn, cycle) in self.insns.iter().zip(&self.cycles) {
            writeln!(f, "  [{cycle}] {insn}")?;
        }
        Ok(())
    }
}

/// Schedules one block given its reduced dependence graph.
///
/// `pinned_stores` lists original positions of stores that must not be
/// speculated (used by the §4.2 separation-constraint retry loop in the
/// pipeline). `fresh_id` allocates instruction ids for inserted sentinels.
///
/// # Errors
///
/// [`ScheduleError::StoreSeparation`] when a speculative store ends up
/// separated from its confirm by more than `store_buffer_size − 1` stores
/// (the caller pins that store and retries), and
/// [`ScheduleError::Internal`] on a dependence cycle (a scheduler bug).
pub fn schedule_block(
    g: &mut DepGraph,
    red: &Reduction,
    mdes: &MachineDesc,
    opts: &SchedOptions,
    fresh_id: &mut dyn FnMut() -> InsnId,
) -> Result<BlockSchedule, ScheduleError> {
    let orig_n = g.original_len;
    let mut stats = BlockSchedStats::default();

    // Priorities: critical-path heights over the reduced graph.
    let mut priority: Vec<u64> = g.heights(|i| mdes.latency(i.op));

    // Scheduling state (grows when sentinels are inserted).
    let mut sched: Vec<Option<u64>> = vec![None; g.len()];
    let mut earliest: Vec<u64> = vec![0; g.len()];
    let mut pending: Vec<usize> = (0..g.len()).map(|i| g.preds(i).len()).collect();

    let mut linear: Vec<usize> = Vec::new();
    let mut cycle: u64 = 0;
    let mut slots = 0usize;
    let mut branch_slots = 0usize;
    let mut remaining = g.len();

    // confirm node -> store node (for the index post-pass).
    let mut confirm_of_store: Vec<(usize, usize)> = Vec::new();

    while remaining > 0 {
        // Pick the best ready node at the current cycle.
        let mut best: Option<usize> = None;
        if slots < mdes.issue_width() {
            for i in 0..g.len() {
                if sched[i].is_some() || pending[i] != 0 || earliest[i] > cycle {
                    continue;
                }
                let is_branch = g.nodes[i].insn.op.class() == sentinel_isa::OpClass::Branch;
                if is_branch && branch_slots >= mdes.branches_per_cycle() {
                    continue;
                }
                let better = match best {
                    None => true,
                    Some(b) => {
                        // Priority first; on ties prefer non-branches (a
                        // branch buys nothing by issuing early on the
                        // fall-through path, and deferring it exposes
                        // speculation — cf. paper Fig. 1(b), where the
                        // branch lands in the final cycle), then original
                        // order.
                        let key = |x: usize| {
                            (
                                std::cmp::Reverse(priority[x]),
                                g.nodes[x].insn.op.is_cond_branch(),
                                g.nodes[x].orig_pos.unwrap_or(usize::MAX),
                                x,
                            )
                        };
                        key(i) < key(b)
                    }
                };
                if better {
                    best = Some(i);
                }
            }
        }

        let Some(node) = best else {
            // Advance to the next time anything could issue.
            let next = (0..g.len())
                .filter(|&i| sched[i].is_none() && pending[i] == 0)
                .map(|i| earliest[i].max(cycle + 1))
                .min();
            match next {
                Some(c) => {
                    cycle = c;
                    slots = 0;
                    branch_slots = 0;
                    continue;
                }
                None => {
                    return Err(ScheduleError::Internal(
                        "dependence cycle: no schedulable node".into(),
                    ));
                }
            }
        };

        // Issue `node` at `cycle`.
        sched[node] = Some(cycle);
        linear.push(node);
        remaining -= 1;
        slots += 1;
        if g.nodes[node].insn.op.class() == sentinel_isa::OpClass::Branch {
            branch_slots += 1;
        }

        // Sentinel hook: did this original instruction move above a branch?
        let mut inserted: Option<usize> = None;
        if let Some(p) = g.nodes[node].orig_pos {
            let crossed = (0..orig_n)
                .filter(|&b| b < p && g.nodes[b].insn.op.is_cond_branch() && sched[b].is_none())
                .count();
            let moved_above = crossed > 0;
            if moved_above && g.nodes[node].insn.op.may_be_speculative() {
                if let Some(levels) = opts.model.boost_levels() {
                    // Boosting: record how many branches were crossed; the
                    // shadow hardware commits the result as they resolve.
                    debug_assert!(crossed <= levels as usize, "reduction bounds crossings");
                    g.nodes[node].insn.boost = crossed as u8;
                    stats.speculated += 1;
                } else {
                    g.nodes[node].insn.speculative = true;
                    stats.speculated += 1;
                }
                if opts.model.uses_sentinels() && red.unprotected[p] {
                    let is_store = g.nodes[node].insn.op.is_store();
                    let sentinel_insn = if is_store {
                        stats.confirms_inserted += 1;
                        Insn::confirm_store(0).with_id(fresh_id())
                    } else {
                        let d = g.nodes[node]
                            .insn
                            .def()
                            .expect("unprotected non-store has a destination");
                        stats.checks_inserted += 1;
                        Insn::check_exception(d).with_id(fresh_id())
                    };
                    let j = g.add_node(sentinel_insn);
                    sched.push(None);
                    earliest.push(0);
                    pending.push(0);
                    remaining += 1;
                    if is_store {
                        confirm_of_store.push((j, node));
                    }

                    // Flow: sentinel reads the result / follows the insert.
                    add_live_edge(
                        g,
                        &mut sched,
                        &mut earliest,
                        &mut pending,
                        Dep {
                            from: node,
                            to: j,
                            latency: mdes.latency(g.nodes[node].insn.op),
                            kind: DepKind::Sentinel,
                        },
                    );
                    // Pin into the home block: after the delimiter that
                    // precedes it…
                    if let Some(prev) = (0..p)
                        .rev()
                        .find(|&d| is_region_delimiter(g.nodes[d].insn.op, opts.recovery))
                    {
                        add_live_edge(
                            g,
                            &mut sched,
                            &mut earliest,
                            &mut pending,
                            Dep {
                                from: prev,
                                to: j,
                                latency: 0,
                                kind: DepKind::Sentinel,
                            },
                        );
                    }
                    // …and before the delimiter that ends it.
                    let re = g.region_end(p, opts.recovery);
                    if re < orig_n {
                        add_live_edge(
                            g,
                            &mut sched,
                            &mut earliest,
                            &mut pending,
                            Dep {
                                from: j,
                                to: re,
                                latency: 0,
                                kind: DepKind::Sentinel,
                            },
                        );
                        // Issue just ahead of the branch it pins.
                        priority.push(priority[re] + 1);
                    } else {
                        priority.push(1);
                    }

                    // Recovery restriction 4 (dynamic half): restartable
                    // inputs survive to the sentinel.
                    if opts.recovery {
                        let span_end = re;
                        let span_inputs: std::collections::HashSet<_> = (p..span_end)
                            .flat_map(|q| g.nodes[q].insn.uses().collect::<Vec<_>>())
                            .collect();
                        for x in p + 1..span_end {
                            if sched[x].is_some() || x == node {
                                continue;
                            }
                            let clobbers = g.nodes[x]
                                .insn
                                .def()
                                .is_some_and(|d| span_inputs.contains(&d));
                            let is_store_x = g.nodes[x].insn.op.is_store();
                            if clobbers || is_store_x {
                                add_live_edge(
                                    g,
                                    &mut sched,
                                    &mut earliest,
                                    &mut pending,
                                    Dep {
                                        from: j,
                                        to: x,
                                        latency: 0,
                                        kind: DepKind::Sentinel,
                                    },
                                );
                            }
                        }
                    }
                    inserted = Some(j);
                }
            }
        }
        let _ = inserted;

        // Release successors.
        for e in g.succs(node).to_vec() {
            earliest[e.to] = earliest[e.to].max(cycle + e.latency as u64);
            pending[e.to] -= 1;
        }
    }

    // --- post-pass: confirm_store indices + separation constraint -------
    let pos_in_linear: HashMap<usize, usize> =
        linear.iter().enumerate().map(|(k, &n)| (n, k)).collect();
    let mut violating_stores: Vec<InsnId> = Vec::new();
    for &(confirm, store) in &confirm_of_store {
        let s = pos_in_linear[&store];
        let c = pos_in_linear[&confirm];
        debug_assert!(s < c, "confirm after its store");
        let between = linear[s + 1..c]
            .iter()
            .filter(|&&k| buffer_store(&g.nodes[k].insn.op))
            .count();
        if between > mdes.store_buffer_size() - 1 {
            violating_stores.push(g.nodes[store].insn.id);
        } else {
            g.nodes[confirm].insn.imm = between as i64;
        }
    }
    if !violating_stores.is_empty() {
        return Err(ScheduleError::StoreSeparation(violating_stores));
    }

    let cycles: Vec<u64> = linear.iter().map(|&n| sched[n].unwrap()).collect();
    stats.cycles = cycles.last().map_or(0, |c| c + 1);
    let insns: Vec<Insn> = linear.iter().map(|&n| g.nodes[n].insn.clone()).collect();
    Ok(BlockSchedule {
        insns,
        cycles,
        stats,
    })
}

/// Stores that occupy store-buffer entries (tag spills bypass the buffer).
fn buffer_store(op: &Opcode) -> bool {
    op.is_store() && *op != Opcode::StTag
}

/// Adds an edge during scheduling, keeping `earliest`/`pending` coherent
/// whether or not the source is already scheduled.
fn add_live_edge(
    g: &mut DepGraph,
    sched: &mut [Option<u64>],
    earliest: &mut [u64],
    pending: &mut [usize],
    dep: Dep,
) {
    match sched[dep.from] {
        Some(c) => {
            earliest[dep.to] = earliest[dep.to].max(c + dep.latency as u64);
            // Do not add a graph edge for an already-issued source: the
            // constraint is fully captured by `earliest`, and a graph edge
            // would double-decrement `pending`.
        }
        None => {
            g.add_edge(dep);
            pending[dep.to] += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::SchedulingModel;
    use crate::reduction::reduce;
    use sentinel_isa::Reg;
    use sentinel_prog::cfg::Cfg;
    use sentinel_prog::examples::figure1;
    use sentinel_prog::liveness::Liveness;
    use sentinel_prog::Function;

    fn schedule_entry(f: &mut Function, mdes: &MachineDesc, opts: &SchedOptions) -> BlockSchedule {
        let cfg = Cfg::build(f);
        let lv = Liveness::compute(f, &cfg);
        let e = f.entry();
        let mut g = DepGraph::build(f.block(e), mdes, opts.recovery);
        let red = reduce(&mut g, f, e, &lv, opts);
        let mut fresh = {
            let f = &mut *f;
            move || f.fresh_insn_id()
        };
        schedule_block(&mut g, &red, mdes, opts, &mut fresh).expect("schedule")
    }

    fn unit_mdes(width: usize) -> MachineDesc {
        MachineDesc::unit_issue(width)
    }

    #[test]
    fn figure1_sentinel_schedule_matches_paper_shape() {
        // Paper Figure 1(b) on a narrower machine (issue 2, so the branch
        // competes for slots and real speculation happens): B, C, D, E
        // move above A; E gets an explicit sentinel G; F (store, not
        // speculative in model S) plus G remain in the home block after A.
        let mut f = figure1();
        let sched = schedule_entry(
            &mut f,
            &unit_mdes(2),
            &SchedOptions::new(SchedulingModel::Sentinel),
        );
        let ops: Vec<_> = sched.insns.iter().map(|i| i.op).collect();
        // One check_exception inserted for the unprotected E.
        assert_eq!(sched.stats.checks_inserted, 1, "schedule: {sched:?}");
        assert!(ops.contains(&Opcode::CheckExcept));
        let br = sched
            .insns
            .iter()
            .position(|i| i.op == Opcode::Beq)
            .unwrap();
        // The two loads are speculative and linearly above the branch.
        let lds: Vec<usize> = sched
            .insns
            .iter()
            .enumerate()
            .filter(|(_, i)| i.op == Opcode::LdW)
            .map(|(k, _)| k)
            .collect();
        assert_eq!(lds.len(), 2);
        for &k in &lds {
            assert!(sched.insns[k].speculative);
            assert!(k < br);
        }
        // The store is NOT speculative and is after the branch.
        let st = sched
            .insns
            .iter()
            .position(|i| i.op == Opcode::StW)
            .unwrap();
        assert!(!sched.insns[st].speculative);
        assert!(st > br);
        // The check is after the branch (home block) and reads r5.
        let ck = sched
            .insns
            .iter()
            .position(|i| i.op == Opcode::CheckExcept)
            .unwrap();
        assert!(ck > br);
        assert_eq!(sched.insns[ck].src1, Some(Reg::int(5)));
    }

    /// A branch whose condition is loaded from memory: the canonical case
    /// where speculation pays (the branch stalls, loads below it want to
    /// start early).
    fn loaded_branch_fn() -> Function {
        use sentinel_prog::ProgramBuilder;
        let mut b = ProgramBuilder::new("lb");
        let e = b.block("e");
        let t = b.block("t");
        b.switch_to(e);
        b.push(Insn::ld_w(Reg::int(5), Reg::int(3), 0));
        b.push(Insn::branch(Opcode::Beq, Reg::int(5), Reg::ZERO, t));
        b.push(Insn::ld_w(Reg::int(1), Reg::int(2), 0));
        b.push(Insn::addi(Reg::int(4), Reg::int(1), 1));
        b.push(Insn::st_w(Reg::int(4), Reg::int(2), 8));
        b.push(Insn::halt());
        b.switch_to(t);
        b.push(Insn::halt());
        b.finish()
    }

    #[test]
    fn speculation_shortens_loaded_branch_schedule() {
        let mdes = MachineDesc::paper_issue(8);
        let mut f1 = loaded_branch_fn();
        let restricted = schedule_entry(
            &mut f1,
            &mdes,
            &SchedOptions::new(SchedulingModel::RestrictedPercolation),
        );
        let mut f2 = loaded_branch_fn();
        let sentinel = schedule_entry(
            &mut f2,
            &mdes,
            &SchedOptions::new(SchedulingModel::Sentinel),
        );
        assert!(
            sentinel.stats.cycles < restricted.stats.cycles,
            "sentinel {} vs restricted {}",
            sentinel.stats.cycles,
            restricted.stats.cycles
        );
        // The hoisted load is speculative and above the branch.
        let br = sentinel
            .insns
            .iter()
            .position(|i| i.op == Opcode::Beq)
            .unwrap();
        let hoisted = sentinel
            .insns
            .iter()
            .position(|i| i.op == Opcode::LdW && i.dest == Some(Reg::int(1)))
            .unwrap();
        assert!(hoisted < br);
        assert!(sentinel.insns[hoisted].speculative);
    }

    #[test]
    fn restricted_keeps_loads_below_branch() {
        let mut f = figure1();
        let sched = schedule_entry(
            &mut f,
            &unit_mdes(8),
            &SchedOptions::new(SchedulingModel::RestrictedPercolation),
        );
        let br = sched
            .insns
            .iter()
            .position(|i| i.op == Opcode::Beq)
            .unwrap();
        let lds: Vec<usize> = sched
            .insns
            .iter()
            .enumerate()
            .filter(|(_, i)| i.op == Opcode::LdW)
            .map(|(k, _)| k)
            .collect();
        for &k in &lds {
            assert!(
                k > br,
                "restricted percolation keeps loads below the branch"
            );
            assert!(!sched.insns[k].speculative);
        }
        assert_eq!(sched.stats.checks_inserted, 0);
    }

    #[test]
    fn general_percolation_speculates_without_sentinels() {
        let mut f = figure1();
        let sched = schedule_entry(
            &mut f,
            &unit_mdes(2),
            &SchedOptions::new(SchedulingModel::GeneralPercolation),
        );
        assert_eq!(sched.stats.checks_inserted, 0);
        assert!(sched.stats.speculated >= 3);
        assert!(!sched.insns.iter().any(|i| i.op == Opcode::CheckExcept));
    }

    #[test]
    fn store_model_speculates_store_with_confirm() {
        let mut f = figure1();
        let sched = schedule_entry(
            &mut f,
            &unit_mdes(2),
            &SchedOptions::new(SchedulingModel::SentinelStores),
        );
        let st = sched
            .insns
            .iter()
            .position(|i| i.op == Opcode::StW)
            .unwrap();
        let br = sched
            .insns
            .iter()
            .position(|i| i.op == Opcode::Beq)
            .unwrap();
        assert!(st < br, "store speculated above the branch");
        assert!(sched.insns[st].speculative);
        assert_eq!(sched.stats.confirms_inserted, 1);
        let cf = sched
            .insns
            .iter()
            .position(|i| i.op == Opcode::ConfirmStore)
            .unwrap();
        assert!(cf > br, "confirm stays in the home block");
        // No stores between the speculative store and its confirm here.
        assert_eq!(sched.insns[cf].imm, 0);
    }

    #[test]
    fn schedule_preserves_dependence_order_in_linear_form() {
        let mut f = figure1();
        let sched = schedule_entry(
            &mut f,
            &unit_mdes(8),
            &SchedOptions::new(SchedulingModel::Sentinel),
        );
        // D (addi r4, r1) must come after B (ld r1) in linear order.
        let b_pos = sched
            .insns
            .iter()
            .position(|i| i.op == Opcode::LdW && i.dest == Some(Reg::int(1)))
            .unwrap();
        let d_pos = sched
            .insns
            .iter()
            .position(|i| i.op == Opcode::AddI && i.dest == Some(Reg::int(4)))
            .unwrap();
        assert!(b_pos < d_pos);
        // Cycles must respect the flow latency (unit here, so >=).
        assert!(sched.cycles[d_pos] > sched.cycles[b_pos]);
    }

    #[test]
    fn narrow_machine_serializes() {
        let mut f = figure1();
        let sched = schedule_entry(
            &mut f,
            &unit_mdes(1),
            &SchedOptions::new(SchedulingModel::Sentinel),
        );
        // Issue-1: every instruction in its own cycle.
        for w in sched.cycles.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn store_separation_violation_reported() {
        // Tiny buffer (1 entry): a speculative store followed by another
        // store before its confirm violates N-1 = 0.
        use sentinel_prog::ProgramBuilder;
        let mut b = ProgramBuilder::new("f");
        let e = b.block("e");
        let t = b.block("t");
        b.switch_to(e);
        b.push(Insn::branch(Opcode::Beq, Reg::int(1), Reg::ZERO, t));
        b.push(Insn::st_w(Reg::int(2), Reg::int(3), 0));
        b.push(Insn::st_w(Reg::int(2), Reg::int(3), 64));
        b.push(Insn::halt());
        b.switch_to(t);
        b.push(Insn::halt());
        let mut f = b.finish();
        let mdes = MachineDesc::builder()
            .issue_width(8)
            .store_buffer_size(1)
            .latencies(sentinel_isa::LatencyTable::unit())
            .build();
        let opts = SchedOptions::new(SchedulingModel::SentinelStores);
        let cfg = Cfg::build(&f);
        let lv = Liveness::compute(&f, &cfg);
        let entry = f.entry();
        let mut g = DepGraph::build(f.block(entry), &mdes, false);
        let red = reduce(&mut g, &f, entry, &lv, &opts);
        let mut fresh = move || f.fresh_insn_id();
        let r = schedule_block(&mut g, &red, &mdes, &opts, &mut fresh);
        // Either the schedule keeps both stores' confirms tight (ok) or it
        // reports the separation violation for the pipeline to pin.
        if let Err(e) = r {
            assert!(matches!(e, ScheduleError::StoreSeparation(_)));
        }
    }
}
