//! Modulo scheduling (software pipelining) of counted loops.
//!
//! The paper's §2 situates sentinel scheduling among the cyclic
//! scheduling techniques: "when branch conditions may be determined
//! early, scheduling techniques such as software pipelining are
//! effective", and "modulo scheduling of while loops depends on
//! speculative support" (Tirumalai et al.). This module implements the
//! counted-loop core of that machinery so the reproduction can overlap
//! loop iterations the acyclic superblock scheduler cannot:
//!
//! * **Shape**: a self-looping block of straight-line operations followed
//!   by pointer bumps, a counter decrement, the latch
//!   `bne counter, r0, self`, and `jump exit`.
//! * **Initiation interval**: `II = max(resource bound, recurrence
//!   bounds, max value lifetime)`. Taking the lifetime into the maximum
//!   avoids modulo variable expansion (no rotating register files on this
//!   machine): every value is consumed within one kernel iteration of its
//!   definition.
//! * **Construction**: a trip-count guard falls back to the original loop
//!   for short trips; otherwise `S−1` prologue partials ramp the pipeline
//!   up, a flat kernel runs `n−S+1` times, and an epilogue drains.
//!   Cross-stage pointer references are retargeted by *offset adjustment*
//!   (`imm − stage·step`), the classic substitute for rotating registers.
//!
//! Loops outside the recognized shape are left untouched (the transform
//! returns `false`); in particular while-loops (side exits) require the
//! speculative-load support this counted-loop version does not need —
//! exactly the paper's point.

use std::collections::{HashMap, HashSet};

use sentinel_isa::{BlockId, Insn, MachineDesc, Opcode, Reg};
use sentinel_prog::Function;

/// The recognized canonical loop.
#[derive(Debug)]
struct LoopShape {
    /// Straight-line body operations (everything before the bumps).
    body: Vec<Insn>,
    /// Trailing self-bumps `addi p, p, step`.
    bumps: Vec<Insn>,
    /// The counter register (decremented by 1 per iteration).
    counter: Reg,
    /// The latch branch (`bne counter, r0, self`).
    latch: Insn,
    /// Where control goes when the loop finishes.
    exit: BlockId,
}

/// Per-op placement.
#[derive(Debug, Clone, Copy)]
struct Slot {
    /// ASAP start time within the unrolled iteration.
    sigma: u64,
    /// Pipeline stage (`sigma / II`).
    stage: u64,
    /// Relative cycle within the kernel (`sigma % II`).
    rel: u64,
}

fn is_self_bump(insn: &Insn) -> Option<(Reg, i64)> {
    if insn.op == Opcode::AddI && insn.dest == insn.src1 {
        insn.dest.map(|d| (d, insn.imm))
    } else {
        None
    }
}

/// Recognizes the canonical shape, or returns `None`.
fn recognize(func: &Function, block: BlockId) -> Option<LoopShape> {
    let insns = &func.block(block).insns;
    let n = insns.len();
    if n < 3 {
        return None;
    }
    // The latch is either the last instruction (exit = layout
    // fall-through) or followed by a single `jump exit`.
    let (latch_pos, exit) = if insns[n - 1].op == Opcode::Jump {
        (n - 2, insns[n - 1].target?)
    } else {
        (n - 1, func.fallthrough_of(block)?)
    };
    if latch_pos < 2 {
        return None;
    }
    let latch = insns[latch_pos].clone();
    if !(latch.op == Opcode::Bne && latch.target == Some(block) && latch.src2 == Some(Reg::ZERO)) {
        return None;
    }
    let counter = latch.src1?;
    // Counter decrement immediately before the latch.
    let dec = &insns[latch_pos - 1];
    if !(dec.op == Opcode::AddI
        && dec.dest == Some(counter)
        && dec.src1 == Some(counter)
        && dec.imm == -1)
    {
        return None;
    }
    // Trailing run of self-bumps before the decrement.
    let mut split = latch_pos - 1;
    while split > 0 {
        let insn = &insns[split - 1];
        match is_self_bump(insn) {
            Some((r, _)) if r != counter => split -= 1,
            _ => break,
        }
    }
    let body = insns[..split].to_vec();
    let bumps = insns[split..latch_pos - 1].to_vec();
    Some(LoopShape {
        body,
        bumps,
        counter,
        latch,
        exit,
    })
}

/// Checks the legality constraints beyond shape; returns the bump map
/// `base → step` when pipelinable.
fn legality(shape: &LoopShape, func: &Function) -> Option<HashMap<Reg, i64>> {
    let bump_of: HashMap<Reg, i64> = shape.bumps.iter().filter_map(is_self_bump).collect();
    if bump_of.len() != shape.bumps.len() {
        return None; // duplicate bump of the same register
    }
    let noalias = func.noalias_bases();

    let mut defined: HashSet<Reg> = HashSet::new();
    for insn in &shape.body {
        // No control, irreversible, sentinel, or tag-spill ops.
        if insn.op.is_control()
            || insn.op.is_irreversible()
            || matches!(
                insn.op,
                Opcode::CheckExcept
                    | Opcode::ConfirmStore
                    | Opcode::ClearTag
                    | Opcode::LdTag
                    | Opcode::StTag
            )
            || insn.speculative
            || insn.boost > 0
        {
            return None;
        }
        // Counter untouched by the body.
        if insn.def() == Some(shape.counter) || insn.uses().any(|r| r == shape.counter) {
            return None;
        }
        // Bump registers: only as memory bases.
        if let Some(d) = insn.def() {
            if bump_of.contains_key(&d) {
                return None;
            }
        }
        for r in insn.uses() {
            if bump_of.contains_key(&r) {
                let is_base = insn.op.is_mem() && insn.src2 == Some(r) && insn.src1 != Some(r);
                if !is_base {
                    return None;
                }
            }
        }
        // Register recurrences: a def must either be new this iteration
        // (no use-before-def of it in the body) or a pure self-accumulator
        // `op acc, acc, v` read by nothing else before its update.
        if let Some(d) = insn.def() {
            let self_acc = insn.uses().any(|r| r == d);
            if self_acc {
                // Accumulator: `d` must not be read by any *other* body op
                // before this one, nor defined elsewhere.
                let reads_elsewhere = shape.body.iter().any(|other| {
                    !std::ptr::eq(other, insn)
                        && (other.uses().any(|r| r == d) || other.def() == Some(d))
                });
                if reads_elsewhere {
                    return None;
                }
            } else if defined.contains(&d) {
                // Redefinition is fine (intra-iteration), handled by σ.
            } else {
                // Use-before-def of d anywhere earlier ⇒ carried flow we
                // do not support.
                let use_before = shape
                    .body
                    .iter()
                    .take_while(|other| !std::ptr::eq(*other, insn))
                    .any(|other| other.uses().any(|r| r == d));
                if use_before {
                    return None;
                }
            }
            defined.insert(d);
        }
    }

    // Memory pairs: every (store, mem-op) pair must be on distinct,
    // noalias-declared, bumped-or-stable bases.
    let mems: Vec<&Insn> = shape.body.iter().filter(|i| i.op.is_mem()).collect();
    for (k, a) in mems.iter().enumerate() {
        for b in &mems[k + 1..] {
            if !(a.op.is_store() || b.op.is_store()) {
                continue;
            }
            let (ba, bb) = (a.src2?, b.src2?);
            if ba == bb || !noalias.contains(&ba) || !noalias.contains(&bb) {
                return None;
            }
        }
    }
    Some(bump_of)
}

/// ASAP schedule of the body under intra-iteration register dependences;
/// returns per-op σ and the maximum value lifetime.
fn asap_schedule(body: &[Insn], mdes: &MachineDesc) -> (Vec<u64>, u64) {
    let mut sigma = vec![0u64; body.len()];
    let mut last_def: HashMap<Reg, usize> = HashMap::new();
    let mut readers: HashMap<Reg, Vec<usize>> = HashMap::new();
    for (i, insn) in body.iter().enumerate() {
        let mut earliest = 0u64;
        for r in insn.uses() {
            if let Some(&d) = last_def.get(&r) {
                earliest = earliest.max(sigma[d] + mdes.latency(body[d].op) as u64);
            }
        }
        if let Some(d) = insn.def() {
            // Anti/output: issue no earlier than prior readers/writers.
            if let Some(rs) = readers.get(&d) {
                for &r in rs {
                    earliest = earliest.max(sigma[r]);
                }
            }
            if let Some(&p) = last_def.get(&d) {
                earliest = earliest.max(sigma[p] + 1);
            }
        }
        sigma[i] = earliest;
        for r in insn.uses() {
            readers.entry(r).or_default().push(i);
        }
        if let Some(d) = insn.def() {
            last_def.insert(d, i);
            readers.insert(d, Vec::new());
        }
    }
    // Max lifetime: def → last use distance (self-accumulators excluded:
    // their carried self-edge is covered by the latency bound below).
    let mut lifetime = 0u64;
    let mut def_at: HashMap<Reg, usize> = HashMap::new();
    for (i, insn) in body.iter().enumerate() {
        for r in insn.uses() {
            if let Some(&d) = def_at.get(&r) {
                if d != i {
                    lifetime = lifetime.max(sigma[i].saturating_sub(sigma[d]));
                }
            }
        }
        if let Some(d) = insn.def() {
            def_at.insert(d, i);
        }
    }
    (sigma, lifetime)
}

/// Statistics of one pipelined loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineInfo {
    /// Initiation interval.
    pub ii: u64,
    /// Pipeline stages.
    pub stages: u64,
    /// Body operations overlapped.
    pub body_ops: usize,
}

/// Attempts to software-pipeline the loop at `block`. Returns pipeline
/// statistics on success; leaves the function untouched (returning
/// `None`) when the loop is outside the supported shape or pipelining
/// would not help (`stages < 2`).
///
/// # Examples
///
/// ```
/// use sentinel_core::modulo::pipeline_loop;
/// use sentinel_isa::MachineDesc;
/// use sentinel_workloads::kernels;
///
/// let mut w = kernels::copy_words(64);
/// let body = w.func.block_by_label("loop").unwrap();
/// let info = pipeline_loop(&mut w.func, body, &MachineDesc::paper_issue(8)).unwrap();
/// assert!(info.stages >= 2); // iterations now overlap
/// ```
pub fn pipeline_loop(
    func: &mut Function,
    block: BlockId,
    mdes: &MachineDesc,
) -> Option<PipelineInfo> {
    let shape = recognize(func, block)?;
    let bump_of = legality(&shape, func)?;
    if shape.body.is_empty() {
        return None;
    }
    let (sigma, lifetime) = asap_schedule(&shape.body, mdes);

    // Initiation interval: resources, accumulator recurrences, lifetimes.
    let total_insns = shape.body.len() + shape.bumps.len() + 2;
    let res_mii = total_insns.div_ceil(mdes.issue_width()) as u64;
    let acc_mii = shape
        .body
        .iter()
        .filter(|i| i.def().is_some() && i.uses().any(|r| Some(r) == i.def()))
        .map(|i| mdes.latency(i.op) as u64)
        .max()
        .unwrap_or(1);
    let ii = res_mii.max(acc_mii).max(lifetime).max(1);
    let max_sigma = sigma.iter().copied().max().unwrap_or(0);
    let stages = max_sigma / ii + 1;
    if stages < 2 {
        return None; // nothing to overlap
    }

    let slots: Vec<Slot> = sigma
        .iter()
        .map(|&s| Slot {
            sigma: s,
            stage: s / ii,
            rel: s % ii,
        })
        .collect();

    // An op of stage s, executed in a block where the bumps have already
    // run `j` times for the iteration being *started*, needs its memory
    // offset shifted by −s·step (see module docs).
    let adjust = |insn: &Insn, extra_stages: u64| -> Insn {
        let mut i = insn.clone();
        if i.op.is_mem() {
            if let Some(base) = i.src2 {
                if let Some(&step) = bump_of.get(&base) {
                    i.imm -= extra_stages as i64 * step;
                }
            }
        }
        i.id = sentinel_isa::InsnId::UNASSIGNED;
        i
    };

    /// Ops sorted for one partial/kernel: ascending relative cycle,
    /// higher stage first on ties (older iterations read before younger
    /// iterations overwrite).
    fn emit_order(slots: &[Slot], include: impl Fn(u64) -> bool) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..slots.len())
            .filter(|&i| include(slots[i].stage))
            .collect();
        idx.sort_by_key(|&i| {
            (
                slots[i].rel,
                std::cmp::Reverse(slots[i].stage),
                slots[i].sigma,
                i,
            )
        });
        idx
    }

    // ---- build the new control structure -------------------------------
    let exit = shape.exit;
    let label = func.block(block).label.clone();
    let orig = func.add_block(format!("{label}.orig"));
    let mut prologues = Vec::new();
    for j in 0..stages - 1 {
        prologues.push(func.add_block(format!("{label}.pro{j}")));
    }
    let kernel = func.add_block(format!("{label}.kernel"));
    let epilogue = func.add_block(format!("{label}.epi"));

    // Original loop, preserved for short trips (fresh ids, retargeted).
    let orig_insns = func.block(block).insns.clone();
    for insn in &orig_insns {
        let mut i = insn.clone();
        if i.target == Some(block) {
            i.target = Some(orig);
        }
        i.id = sentinel_isa::InsnId::UNASSIGNED;
        func.push_insn(orig, i);
    }
    // The copy no longer sits where layout fall-through worked.
    if !func.block(orig).ends_in_unconditional() {
        func.push_insn(orig, Insn::jump(exit));
    }

    // Guard (replaces the loop block, so all predecessors keep working):
    //   tmp = S; blt counter, tmp, orig; counter -= S-1; jump pro0
    let (mi, _) = func.max_reg_indices();
    let tmp = Reg::int(mi.map_or(64, |m| m.max(63) + 1));
    func.block_mut(block).insns.clear();
    func.push_insn(block, Insn::li(tmp, stages as i64));
    func.push_insn(block, Insn::branch(Opcode::Blt, shape.counter, tmp, orig));
    func.push_insn(
        block,
        Insn::addi(shape.counter, shape.counter, -((stages - 1) as i64)),
    );
    func.push_insn(block, Insn::jump(prologues[0]));

    // Prologue partials j = 0..S-2: stages ≤ j, then bumps.
    for (j, &pb) in prologues.iter().enumerate() {
        for &i in &emit_order(&slots, |s| s <= j as u64) {
            let insn = adjust(&shape.body[i], slots[i].stage);
            func.push_insn(pb, insn);
        }
        for bump in &shape.bumps {
            let mut b = bump.clone();
            b.id = sentinel_isa::InsnId::UNASSIGNED;
            func.push_insn(pb, b);
        }
        let next = if j + 1 < prologues.len() {
            prologues[j + 1]
        } else {
            kernel
        };
        func.push_insn(pb, Insn::jump(next));
    }

    // Kernel: all stages, bumps, counter decrement, latch, fall to epilogue.
    for &i in &emit_order(&slots, |_| true) {
        let insn = adjust(&shape.body[i], slots[i].stage);
        func.push_insn(kernel, insn);
    }
    for bump in &shape.bumps {
        let mut b = bump.clone();
        b.id = sentinel_isa::InsnId::UNASSIGNED;
        func.push_insn(kernel, b);
    }
    func.push_insn(kernel, Insn::addi(shape.counter, shape.counter, -1));
    let mut latch = shape.latch.clone();
    latch.target = Some(kernel);
    latch.id = sentinel_isa::InsnId::UNASSIGNED;
    func.push_insn(kernel, latch);
    func.push_insn(kernel, Insn::jump(epilogue));

    // Epilogue partials e = 1..S-1 (no bumps: all iterations started).
    for e in 1..stages {
        for &i in &emit_order(&slots, |s| s >= e) {
            // Offsets relative to the final pointer values: the op's
            // source iteration trails the bump count by (stage − e + 1).
            let insn = adjust(&shape.body[i], slots[i].stage - e + 1);
            func.push_insn(epilogue, insn);
        }
    }
    func.push_insn(epilogue, Insn::jump(exit));

    Some(PipelineInfo {
        ii,
        stages,
        body_ops: shape.body.len(),
    })
}

/// Pipelines every recognizable counted loop in the layout. Returns the
/// per-loop statistics.
pub fn pipeline_all_loops(func: &mut Function, mdes: &MachineDesc) -> Vec<PipelineInfo> {
    let blocks: Vec<BlockId> = func.layout().to_vec();
    blocks
        .into_iter()
        .filter_map(|b| pipeline_loop(func, b, mdes))
        .collect()
}

// ---------------------------------------------------------------------
// While-loop pipelining (the paper's §2 dependence on speculation).
// ---------------------------------------------------------------------

/// The recognized while-loop: a self-jumping block whose only exit is one
/// data-dependent test inside the body.
#[derive(Debug)]
struct WhileShape {
    /// Body ops (everything before the bumps), including the exit test.
    body: Vec<Insn>,
    /// Position of the exit test within `body`.
    test_pos: usize,
    /// Trailing self-bumps.
    bumps: Vec<Insn>,
    /// The exit block.
    exit: BlockId,
}

fn recognize_while(func: &Function, block: BlockId) -> Option<WhileShape> {
    let insns = &func.block(block).insns;
    let n = insns.len();
    if n < 3 {
        return None;
    }
    // Tail: `jump self`.
    if !(insns[n - 1].op == Opcode::Jump && insns[n - 1].target == Some(block)) {
        return None;
    }
    // Trailing self-bumps before the jump. Only self-adds of registers
    // actually used as memory bases count as pointer bumps — a trailing
    // self-add of an accumulator must stay in the body (it runs once per
    // *passing* iteration, not per started one).
    let is_base_reg = |r: Reg| insns.iter().any(|i| i.op.is_mem() && i.src2 == Some(r));
    let mut split = n - 1;
    while split > 0 {
        match is_self_bump(&insns[split - 1]) {
            Some((r, _)) if is_base_reg(r) => split -= 1,
            _ => break,
        }
    }
    let body = insns[..split].to_vec();
    let bumps = insns[split..n - 1].to_vec();
    // Exactly one conditional branch in the body, none in the bumps.
    let tests: Vec<usize> = body
        .iter()
        .enumerate()
        .filter(|(_, i)| i.op.is_cond_branch())
        .map(|(k, _)| k)
        .collect();
    if tests.len() != 1 {
        return None;
    }
    let test_pos = tests[0];
    let exit = body[test_pos].target?;
    if exit == block {
        return None;
    }
    Some(WhileShape {
        body,
        test_pos,
        bumps,
        exit,
    })
}

/// Pipelines the *while*-loop at `block` — the case that, as the paper
/// notes (§2, citing Tirumalai et al.), **depends on speculative
/// support**: future iterations' trap-capable operations execute before
/// the current iteration's exit test resolves, so they carry the
/// speculative modifier and defer any fault into an exception tag, which
/// the taken exit then abandons — exactly the sentinel model.
///
/// With `speculate == false` the same code is generated without
/// speculative modifiers: a faithful model of a machine *without*
/// sentinel support, where an overshooting load traps spuriously. It
/// exists to demonstrate the dependence; real use passes `true`.
///
/// Returns `None` (function untouched) when the loop does not fit the
/// shape or no overlap is achievable.
pub fn pipeline_while_loop(
    func: &mut Function,
    block: BlockId,
    mdes: &MachineDesc,
    speculate: bool,
) -> Option<PipelineInfo> {
    let shape = recognize_while(func, block)?;
    // Reuse the counted-loop legality for everything except the counter
    // (there is none) and the test itself.
    let bump_of: HashMap<Reg, i64> = shape.bumps.iter().filter_map(is_self_bump).collect();
    if bump_of.len() != shape.bumps.len() {
        return None;
    }
    let noalias = func.noalias_bases();
    for (k, insn) in shape.body.iter().enumerate() {
        if k == shape.test_pos {
            continue;
        }
        if insn.op.is_control()
            || insn.op.is_irreversible()
            || matches!(
                insn.op,
                Opcode::CheckExcept
                    | Opcode::ConfirmStore
                    | Opcode::ClearTag
                    | Opcode::LdTag
                    | Opcode::StTag
            )
            || insn.speculative
            || insn.boost > 0
        {
            return None;
        }
        if let Some(d) = insn.def() {
            if bump_of.contains_key(&d) {
                return None;
            }
            let self_acc = insn.uses().any(|r| r == d);
            if self_acc {
                let reads_elsewhere = shape.body.iter().enumerate().any(|(j, other)| {
                    j != k && (other.uses().any(|r| r == d) || other.def() == Some(d))
                });
                if reads_elsewhere {
                    return None;
                }
            } else {
                let use_before = shape.body[..k].iter().any(|o| o.uses().any(|r| r == d));
                if use_before {
                    return None;
                }
            }
        }
        for r in insn.uses() {
            if bump_of.contains_key(&r) {
                let is_base = insn.op.is_mem() && insn.src2 == Some(r) && insn.src1 != Some(r);
                if !is_base {
                    return None;
                }
            }
        }
    }
    // Memory pairs as in the counted case.
    let mems: Vec<&Insn> = shape.body.iter().filter(|i| i.op.is_mem()).collect();
    for (k, a) in mems.iter().enumerate() {
        for b in &mems[k + 1..] {
            if !(a.op.is_store() || b.op.is_store()) {
                continue;
            }
            let (ba, bb) = (a.src2?, b.src2?);
            if ba == bb || !noalias.contains(&ba) || !noalias.contains(&bb) {
                return None;
            }
        }
    }

    // σ: ASAP plus a control edge — post-test ops may not start before
    // the test.
    let (mut sigma, lifetime) = asap_schedule(&shape.body, mdes);
    for k in shape.test_pos + 1..shape.body.len() {
        sigma[k] = sigma[k].max(sigma[shape.test_pos]);
    }
    let total_insns = shape.body.len() + shape.bumps.len() + 1;
    let res_mii = total_insns.div_ceil(mdes.issue_width()) as u64;
    let acc_mii = shape
        .body
        .iter()
        .filter(|i| i.def().is_some() && i.uses().any(|r| Some(r) == i.def()))
        .map(|i| mdes.latency(i.op) as u64)
        .max()
        .unwrap_or(1);
    let mut ii = res_mii.max(acc_mii).max(lifetime).max(1);
    // Post-test ops must share the test's stage (a taken exit skips them
    // in linear order, so none of them runs for a failed iteration).
    let sigma_t = sigma[shape.test_pos];
    loop {
        let st = sigma_t / ii;
        let ok = (shape.test_pos + 1..shape.body.len()).all(|k| sigma[k] / ii == st);
        if ok {
            break;
        }
        ii += 1;
    }
    let max_sigma = sigma.iter().copied().max().unwrap_or(0);
    let stages = max_sigma / ii + 1;
    let test_stage = sigma_t / ii;
    if stages < 2 || test_stage == 0 {
        return None; // no overlap achieved
    }

    // Every pre-test-stage op runs ahead of an unresolved exit: it must
    // be speculatable and its result dead at the exit.
    let cfg = sentinel_prog::cfg::Cfg::build(func);
    let lv = sentinel_prog::liveness::Liveness::compute(func, &cfg);
    let exit_live = lv.live_in(shape.exit).clone();
    for (k, insn) in shape.body.iter().enumerate() {
        if sigma[k] / ii >= test_stage {
            continue;
        }
        if insn.op.is_store() || !insn.op.may_be_speculative() {
            return None;
        }
        if let Some(d) = insn.def() {
            if exit_live.contains(&d) {
                return None;
            }
        }
    }
    // Abandoned pointer bumps: the exit sees over-advanced pointers.
    if bump_of.keys().any(|r| exit_live.contains(r)) {
        return None;
    }

    let slots: Vec<Slot> = sigma
        .iter()
        .map(|&s| Slot {
            sigma: s,
            stage: s / ii,
            rel: s % ii,
        })
        .collect();
    let adjust = |insn: &Insn, extra_stages: u64| -> Insn {
        let mut i = insn.clone();
        if i.op.is_mem() {
            if let Some(base) = i.src2 {
                if let Some(&step) = bump_of.get(&base) {
                    i.imm -= extra_stages as i64 * step;
                }
            }
        }
        i.id = sentinel_isa::InsnId::UNASSIGNED;
        i
    };

    fn emit_order(slots: &[Slot], include: impl Fn(u64) -> bool) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..slots.len())
            .filter(|&i| include(slots[i].stage))
            .collect();
        idx.sort_by_key(|&i| {
            (
                slots[i].rel,
                std::cmp::Reverse(slots[i].stage),
                slots[i].sigma,
                i,
            )
        });
        idx
    }

    let label = func.block(block).label.clone();
    let mut prologues = Vec::new();
    for j in 0..stages - 1 {
        prologues.push(func.add_block(format!("{label}.wpro{j}")));
    }
    let kernel = func.add_block(format!("{label}.wkernel"));

    // Rewrite the loop head into a jump to the first prologue partial
    // (predecessors keep entering through `block`).
    func.block_mut(block).insns.clear();
    func.push_insn(block, Insn::jump(prologues[0]));

    let emit_op = |func: &mut Function, target: BlockId, i: usize, slots: &[Slot]| {
        let mut insn = adjust(&shape.body[i], slots[i].stage);
        if speculate && insn.op.can_trap() && slots[i].stage < test_stage {
            insn.speculative = true;
        }
        func.push_insn(target, insn);
    };

    for (j, &pb) in prologues.iter().enumerate() {
        for &i in &emit_order(&slots, |s| s <= j as u64) {
            emit_op(func, pb, i, &slots);
        }
        for bump in &shape.bumps {
            let mut b = bump.clone();
            b.id = sentinel_isa::InsnId::UNASSIGNED;
            func.push_insn(pb, b);
        }
        let next = if j + 1 < prologues.len() {
            prologues[j + 1]
        } else {
            kernel
        };
        func.push_insn(pb, Insn::jump(next));
    }
    for &i in &emit_order(&slots, |_| true) {
        emit_op(func, kernel, i, &slots);
    }
    for bump in &shape.bumps {
        let mut b = bump.clone();
        b.id = sentinel_isa::InsnId::UNASSIGNED;
        func.push_insn(kernel, b);
    }
    func.push_insn(kernel, Insn::jump(kernel));

    Some(PipelineInfo {
        ii,
        stages,
        body_ops: shape.body.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sentinel_prog::{validate, ProgramBuilder};
    use sentinel_workloads::kernels;

    fn mdes() -> MachineDesc {
        MachineDesc::paper_issue(8)
    }

    #[test]
    fn recognizes_copy_words_loop() {
        let mut w = kernels::copy_words(16);
        let body = w.func.block_by_label("loop").unwrap();
        let info = pipeline_loop(&mut w.func, body, &mdes()).expect("pipelinable");
        assert!(info.stages >= 2, "{info:?}");
        assert!(info.ii >= 1);
        assert!(validate(&w.func).is_empty(), "{:?}", validate(&w.func));
        // New structure exists.
        assert!(w.func.block_by_label("loop.kernel").is_some());
        assert!(w.func.block_by_label("loop.orig").is_some());
        assert!(w.func.block_by_label("loop.epi").is_some());
    }

    #[test]
    fn rejects_loops_with_side_exits() {
        // The while-loop case the paper says needs speculative support.
        let mut w = kernels::scan_until_zero(32);
        let body = w.func.block_by_label("loop").unwrap();
        assert!(pipeline_loop(&mut w.func, body, &mdes()).is_none());
    }

    #[test]
    fn rejects_unanalyzable_memory() {
        // histogram read-modify-writes through a computed address.
        let mut w = kernels::histogram(16);
        let body = w.func.block_by_label("loop").unwrap();
        assert!(pipeline_loop(&mut w.func, body, &mdes()).is_none());
    }

    #[test]
    fn rejects_non_loops() {
        let mut b = ProgramBuilder::new("f");
        let e = b.block("e");
        b.push(Insn::nop());
        b.push(Insn::halt());
        let mut f = b.finish();
        assert!(pipeline_loop(&mut f, e, &mdes()).is_none());
    }

    #[test]
    fn dot_product_is_pipelinable() {
        let mut w = kernels::dot_product(24);
        let n = pipeline_all_loops(&mut w.func, &mdes());
        assert_eq!(n.len(), 1);
        assert!(validate(&w.func).is_empty());
    }
}
