//! Recovery support: the renaming transformation of §3.7.
//!
//! A *restartable instruction sequence* must never overwrite its own
//! inputs. The classic offender is an in-place update such as
//! `r2 = r2 + 1` (Figure 3's instruction `E`): a speculative instruction
//! hoisted above it would, on re-execution, see `r2` incremented twice.
//! The paper's renaming transformation splits the update into an addition
//! into a fresh register plus a restore move scheduled after the sentinels
//! of the region:
//!
//! ```text
//! E : r2  = r2 + 1      ⇒   E': r10 = r2 + 1      (uses renamed to r10)
//!                           I : r2  = r10          (pinned at region end)
//! ```
//!
//! Self-overwrites whose destination is redefined again inside the same
//! region cannot be renamed this way; they are reported as *unrenamable*
//! and the scheduler pins **all** code motion across them (restriction 3,
//! conservative form).

use std::collections::HashSet;

use sentinel_isa::{Insn, InsnId, Opcode, Reg, RegClass};
use sentinel_prog::Function;

use crate::depgraph::is_region_delimiter;

/// Result of the renaming pre-pass.
#[derive(Debug, Clone, Default)]
pub struct RenameResult {
    /// Number of self-overwriting instructions split.
    pub renamed: usize,
    /// Ids of the inserted restore moves — pinned non-speculative.
    pub pinned_moves: HashSet<InsnId>,
    /// Ids of self-overwrites that could not be renamed — the scheduler
    /// must not move anything across them (restriction 3).
    pub unrenamable: HashSet<InsnId>,
}

/// Allocates fresh virtual registers above everything the function uses.
#[derive(Debug)]
pub struct FreshRegs {
    next_int: u16,
    next_fp: u16,
}

impl FreshRegs {
    /// Creates an allocator starting above the function's register usage
    /// and the architectural register count.
    pub fn for_function(func: &Function, arch_int: usize, arch_fp: usize) -> FreshRegs {
        let (mi, mf) = func.max_reg_indices();
        FreshRegs {
            next_int: (mi.map_or(0, |i| i + 1)).max(arch_int as u16),
            next_fp: (mf.map_or(0, |i| i + 1)).max(arch_fp as u16),
        }
    }

    /// Returns a fresh register of the given class.
    pub fn fresh(&mut self, class: RegClass) -> Reg {
        match class {
            RegClass::Int => {
                let r = Reg::int(self.next_int);
                self.next_int += 1;
                r
            }
            RegClass::Fp => {
                let r = Reg::fp(self.next_fp);
                self.next_fp += 1;
                r
            }
        }
    }
}

/// Returns `true` when an instruction overwrites one of its own inputs.
pub fn is_self_overwrite(insn: &Insn) -> bool {
    match insn.def() {
        Some(d) => insn.uses().any(|s| s == d),
        None => false,
    }
}

/// Applies the renaming transformation to every block in the layout,
/// in place.
pub fn apply_recovery_renaming(func: &mut Function, fresh: &mut FreshRegs) -> RenameResult {
    let mut result = RenameResult::default();
    let blocks: Vec<_> = func.layout().to_vec();
    for bid in blocks {
        // Only blocks with a conditional branch can host speculation.
        if func.block(bid).side_exit_count() == 0 {
            continue;
        }
        let mut i = 0usize;
        while i < func.block(bid).insns.len() {
            let insn = func.block(bid).insns[i].clone();
            let renameable = is_self_overwrite(&insn)
                && !insn.op.is_mem()
                && !insn.op.is_control()
                && !insn.op.is_irreversible();
            if !renameable {
                if is_self_overwrite(&insn) {
                    // Loads like `ld r1, 0(r1)` keep restartability via the
                    // conservative restriction-3 barrier.
                    result.unrenamable.insert(insn.id);
                }
                i += 1;
                continue;
            }
            let d = insn.def().expect("self-overwrite has a destination");
            // Find the region end (recovery regions: branches + jsr/io).
            let len = func.block(bid).insns.len();
            let region_end = (i + 1..len)
                .find(|&k| is_region_delimiter(func.block(bid).insns[k].op, true))
                .unwrap_or(len);
            // A later redefinition of `d` inside the region defeats the
            // restore move; fall back to the conservative barrier.
            let redefined = (i + 1..region_end).any(|k| func.block(bid).insns[k].def() == Some(d));
            if redefined {
                result.unrenamable.insert(insn.id);
                i += 1;
                continue;
            }
            // Split: write a fresh register, rename downstream uses within
            // the region, restore at region end.
            let fresh_reg = fresh.fresh(d.class());
            func.block_mut(bid).insns[i].rename_def(d, fresh_reg);
            for k in i + 1..region_end {
                func.block_mut(bid).insns[k].rename_use(d, fresh_reg);
            }
            let mov_op = match d.class() {
                RegClass::Int => Opcode::Mov,
                RegClass::Fp => Opcode::FMov,
            };
            let mov = Insn {
                dest: Some(d),
                src1: Some(fresh_reg),
                ..Insn::new(mov_op)
            };
            let mov_id = func.insert_insn(bid, region_end, mov);
            result.pinned_moves.insert(mov_id);
            result.renamed += 1;
            i += 1;
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use sentinel_isa::BlockId;
    use sentinel_prog::{validate, ProgramBuilder};

    fn fig3_like() -> Function {
        // beq ; ld r1 ; r2 = r2+1 ; st ; r8 = r1+1 ; ld r9, 0(r2) ; halt
        let mut b = ProgramBuilder::new("f");
        let e = b.block("e");
        let t = b.block("t");
        b.switch_to(e);
        b.push(Insn::branch(Opcode::Beq, Reg::int(5), Reg::ZERO, t));
        b.push(Insn::ld_w(Reg::int(1), Reg::int(6), 0));
        b.push(Insn::addi(Reg::int(2), Reg::int(2), 1)); // E: self-overwrite
        b.push(Insn::st_w(Reg::int(7), Reg::int(4), 0));
        b.push(Insn::addi(Reg::int(8), Reg::int(1), 1));
        b.push(Insn::ld_w(Reg::int(9), Reg::int(2), 0)); // H: uses r2
        b.push(Insn::halt());
        b.switch_to(t);
        b.push(Insn::halt());
        b.finish()
    }

    #[test]
    fn splits_increment_and_renames_uses() {
        let mut f = fig3_like();
        let mut fresh = FreshRegs::for_function(&f, 64, 64);
        let r = apply_recovery_renaming(&mut f, &mut fresh);
        assert_eq!(r.renamed, 1);
        assert_eq!(r.pinned_moves.len(), 1);
        assert!(validate(&f).is_empty(), "{:?}", validate(&f));
        let e = f.entry();
        let insns = &f.block(e).insns;
        // E' writes a fresh register (>= 64).
        let ep = insns
            .iter()
            .find(|i| i.op == Opcode::AddI && i.src1 == Some(Reg::int(2)))
            .unwrap();
        let fresh_reg = ep.dest.unwrap();
        assert!(fresh_reg.index() >= 64);
        // H now reads the fresh register.
        let h = insns
            .iter()
            .find(|i| i.op == Opcode::LdW && i.dest == Some(Reg::int(9)))
            .unwrap();
        assert_eq!(h.src2, Some(fresh_reg));
        // A restore move `r2 = fresh` sits at the region end (before halt).
        let mov = insns.iter().find(|i| i.op == Opcode::Mov).unwrap();
        assert_eq!(mov.dest, Some(Reg::int(2)));
        assert_eq!(mov.src1, Some(fresh_reg));
        let mov_pos = insns.iter().position(|i| i.op == Opcode::Mov).unwrap();
        let h_pos = insns
            .iter()
            .position(|i| i.dest == Some(Reg::int(9)))
            .unwrap();
        assert!(mov_pos > h_pos, "restore after the renamed uses");
    }

    #[test]
    fn renaming_preserves_semantics() {
        // Run original and renamed through the reference-style evaluation
        // by hand: r2=5 then +1 then load-at — simulate statically: the
        // renamed block must produce the same final r2 via the move.
        let mut f = fig3_like();
        let mut fresh = FreshRegs::for_function(&f, 64, 64);
        apply_recovery_renaming(&mut f, &mut fresh);
        let e = f.entry();
        // Exactly one write to r2 remains (the restore move).
        let writes_r2 = f
            .block(e)
            .insns
            .iter()
            .filter(|i| i.def() == Some(Reg::int(2)))
            .count();
        assert_eq!(writes_r2, 1);
    }

    #[test]
    fn double_increment_first_is_unrenamable() {
        let mut b = ProgramBuilder::new("f");
        let e = b.block("e");
        let t = b.block("t");
        b.switch_to(e);
        b.push(Insn::branch(Opcode::Beq, Reg::int(5), Reg::ZERO, t));
        b.push(Insn::addi(Reg::int(2), Reg::int(2), 1));
        b.push(Insn::addi(Reg::int(2), Reg::int(2), 1));
        b.push(Insn::halt());
        b.switch_to(t);
        b.push(Insn::halt());
        let mut f = b.finish();
        let mut fresh = FreshRegs::for_function(&f, 64, 64);
        let r = apply_recovery_renaming(&mut f, &mut fresh);
        // First increment: redefined later in region -> unrenamable.
        // Second increment: renameable.
        assert_eq!(r.renamed, 1);
        assert_eq!(r.unrenamable.len(), 1);
        assert!(validate(&f).is_empty());
    }

    #[test]
    fn self_overwriting_load_is_unrenamable_barrier() {
        let mut b = ProgramBuilder::new("f");
        let e = b.block("e");
        let t = b.block("t");
        b.switch_to(e);
        b.push(Insn::branch(Opcode::Beq, Reg::int(5), Reg::ZERO, t));
        b.push(Insn::ld_w(Reg::int(1), Reg::int(1), 0)); // pointer chase step
        b.push(Insn::halt());
        b.switch_to(t);
        b.push(Insn::halt());
        let mut f = b.finish();
        let mut fresh = FreshRegs::for_function(&f, 64, 64);
        let r = apply_recovery_renaming(&mut f, &mut fresh);
        assert_eq!(r.renamed, 0);
        assert_eq!(r.unrenamable.len(), 1);
    }

    #[test]
    fn branch_free_blocks_untouched() {
        let mut b = ProgramBuilder::new("f");
        b.block("e");
        b.push(Insn::addi(Reg::int(2), Reg::int(2), 1));
        b.push(Insn::halt());
        let mut f = b.finish();
        let mut fresh = FreshRegs::for_function(&f, 64, 64);
        let r = apply_recovery_renaming(&mut f, &mut fresh);
        assert_eq!(r.renamed, 0);
        assert!(r.pinned_moves.is_empty());
    }

    #[test]
    fn fresh_regs_monotone_and_classed() {
        let f = fig3_like();
        let mut fresh = FreshRegs::for_function(&f, 64, 64);
        let a = fresh.fresh(RegClass::Int);
        let b = fresh.fresh(RegClass::Int);
        let c = fresh.fresh(RegClass::Fp);
        assert!(b.index() > a.index());
        assert!(a.is_int() && c.is_fp());
        assert!(a.index() >= 64);
        let _ = BlockId(0);
    }
}
