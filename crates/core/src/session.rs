//! The compile-session API: an instrumented, verifiable pass pipeline.
//!
//! [`CompileSession`] is the compiler-side mirror of the simulator's
//! `SimSession`: one builder that names every choice up front, then a
//! pass manager that executes the scheduling pipeline as explicit
//! [`Pass`]es — timing each run, computing its IR delta, collecting its
//! diagnostics, and checking the inter-pass IR invariants between
//! stages (always in debug builds, and under
//! [`SchedOptions::verify_passes`] in release).
//!
//! ```
//! use sentinel_core::{CompileSession, SchedOptions, SchedulingModel};
//! use sentinel_isa::MachineDesc;
//! use sentinel_prog::examples::figure1;
//!
//! let f = figure1();
//! let mdes = MachineDesc::paper_issue(8);
//! let mut session = CompileSession::for_function(&f)
//!     .mdes(&mdes)
//!     .options(SchedOptions::new(SchedulingModel::Sentinel))
//!     .build();
//! let scheduled = session.run()?;
//! assert!(scheduled.stats.speculated > 0);
//! // The pass log names every stage with wall time and IR deltas.
//! assert!(session.log().report("list-schedule").is_some());
//! # Ok::<(), sentinel_core::ScheduleError>(())
//! ```
//!
//! The pipeline stages, in order: `validate` → `superblock-prep` →
//! `clear-tags` (§3.5) → `recovery-rename` (§3.7) → `liveness` → per
//! block: `depgraph` → `reduction` → `list-schedule` (with the §4.2
//! `store-separation-retry` loop re-running the block-level stages
//! after pinning) → `regalloc` (§3.7 allocator support).

use std::sync::OnceLock;
use std::time::Instant;

use sentinel_isa::{MachineDesc, Opcode};
use sentinel_prog::cfg::Cfg;
use sentinel_prog::liveness::Liveness;
use sentinel_prog::{validate, Function};
use sentinel_trace::{CompileSink, IrDelta, PassEvent};

use crate::depgraph::{Dep, DepGraph, DepKind};
use crate::list::schedule_block;
use crate::models::SchedOptions;
use crate::pass::{IrSnapshot, Pass, PassCtx, PassLog};
use crate::pipeline::{accumulate, ScheduleError, ScheduledProgram};
use crate::recovery::{apply_recovery_renaming, FreshRegs};
use crate::reduction::reduce_with_pins;
use crate::uninit::insert_clear_tags;
use crate::verify_ir::verify_ir;

/// Test-support hook: corrupts the working IR after a named pass.
pub type MutationHook = Box<dyn Fn(&mut Function) + Send>;

fn default_mdes() -> &'static MachineDesc {
    static DEFAULT: OnceLock<MachineDesc> = OnceLock::new();
    DEFAULT.get_or_init(|| MachineDesc::paper_issue(8))
}

/// Builder for a [`CompileSession`]; see [`CompileSession::for_function`].
pub struct CompileSessionBuilder<'a> {
    func: &'a Function,
    mdes: Option<&'a MachineDesc>,
    opts: SchedOptions,
    sink: Option<Box<dyn CompileSink>>,
    mutation: Option<(&'static str, MutationHook)>,
}

impl<'a> CompileSessionBuilder<'a> {
    /// Sets the machine description to schedule for (default: the
    /// paper's issue-8 machine).
    #[must_use]
    pub fn mdes(mut self, mdes: &'a MachineDesc) -> Self {
        self.mdes = Some(mdes);
        self
    }

    /// Sets the scheduling options (default:
    /// [`SchedOptions::new`]([`SchedulingModel::Sentinel`])).
    ///
    /// [`SchedulingModel::Sentinel`]: crate::SchedulingModel::Sentinel
    #[must_use]
    pub fn options(mut self, opts: SchedOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Attaches a compile-phase observer: one
    /// [`PassEvent`](sentinel_trace::PassEvent) per pass run.
    #[must_use]
    pub fn observe(mut self, sink: Box<dyn CompileSink>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Mutation-testing hook: applies `f` to the working function after
    /// every run of the pass named `after`, so the inter-pass verifier
    /// can be shown to catch a deliberately broken pass at its own
    /// boundary. Forces verification on regardless of build profile.
    #[must_use]
    pub fn mutate_after(mut self, after: &'static str, f: MutationHook) -> Self {
        self.mutation = Some((after, f));
        self
    }

    /// Constructs the session.
    pub fn build(self) -> CompileSession<'a> {
        let mdes = match self.mdes {
            Some(m) => m,
            None => default_mdes(),
        };
        let verify = cfg!(debug_assertions) || self.opts.verify_passes || self.mutation.is_some();
        CompileSession {
            func: self.func,
            mdes,
            opts: self.opts,
            sink: self.sink,
            mutation: self.mutation,
            verify,
            log: PassLog::default(),
            seq: 0,
            ran: false,
        }
    }
}

/// A configured compilation of one function: the pass manager.
pub struct CompileSession<'a> {
    func: &'a Function,
    mdes: &'a MachineDesc,
    opts: SchedOptions,
    sink: Option<Box<dyn CompileSink>>,
    mutation: Option<(&'static str, MutationHook)>,
    verify: bool,
    log: PassLog,
    seq: u32,
    ran: bool,
}

impl<'a> CompileSession<'a> {
    /// Starts building a session for `func`.
    pub fn for_function(func: &'a Function) -> CompileSessionBuilder<'a> {
        CompileSessionBuilder {
            func,
            mdes: None,
            opts: SchedOptions::new(crate::models::SchedulingModel::Sentinel),
            sink: None,
            mutation: None,
        }
    }

    /// Whether the inter-pass verifier runs between stages in this
    /// session (always in debug builds; via
    /// [`SchedOptions::verify_passes`] or a mutation hook otherwise).
    pub fn verifies(&self) -> bool {
        self.verify
    }

    /// The pass log so far: per-pass runs, wall time, IR deltas, and
    /// diagnostics. Populated by [`CompileSession::run`], including the
    /// passes that ran before a failure.
    pub fn log(&self) -> &PassLog {
        &self.log
    }

    /// Detaches the observer sink (if any); call
    /// [`CompileSink::finish`] on it to render what it recorded.
    pub fn take_sink(&mut self) -> Option<Box<dyn CompileSink>> {
        self.sink.take()
    }

    /// Runs the full pipeline, returning the scheduled program.
    ///
    /// # Errors
    ///
    /// See [`ScheduleError`]. The pass log ([`CompileSession::log`])
    /// remains available after a failure and names the failing stage.
    pub fn run(&mut self) -> Result<ScheduledProgram, ScheduleError> {
        if self.ran {
            return Err(ScheduleError::Internal(
                "CompileSession::run called twice".into(),
            ));
        }
        self.ran = true;

        let opts = self.opts.clone();
        let mut ctx = PassCtx::new(self.func, self.mdes, &opts);

        self.run_pass(&mut ctx, &mut ValidateInput)?;
        self.run_pass(&mut ctx, &mut SuperblockPrep)?;
        self.run_pass(&mut ctx, &mut ClearTags)?;
        self.run_pass(&mut ctx, &mut RecoveryRename)?;
        self.run_pass(&mut ctx, &mut LivenessPass)?;

        for bid in ctx.func.layout().to_vec() {
            let mut attempts = 0usize;
            loop {
                attempts += 1;
                ctx.block = Some(bid);
                self.run_pass(&mut ctx, &mut BuildDepGraph)?;
                self.run_pass(&mut ctx, &mut Reduce)?;
                match self.run_pass(&mut ctx, &mut ListSchedule) {
                    Ok(()) => break,
                    Err(ScheduleError::StoreSeparation(ids)) => {
                        // §4.2: pin the violating stores non-speculative
                        // and re-run the block-level stages.
                        if attempts > ctx.func.block(bid).insns.len() + 2 {
                            return Err(ScheduleError::StoreSeparation(ids));
                        }
                        ctx.stats.pinned_stores += ids.len();
                        ctx.diag(format!(
                            "block {}: pinned {} store(s) to satisfy the N-1 bound: {ids:?}",
                            ctx.func.block(bid).label,
                            ids.len(),
                        ));
                        ctx.pinned.extend(ids);
                        let diags = std::mem::take(&mut ctx.diagnostics);
                        self.emit(
                            "store-separation-retry",
                            std::time::Duration::ZERO,
                            IrDelta::default(),
                            diags,
                        );
                    }
                    Err(e) => return Err(e),
                }
            }
        }

        self.run_pass(&mut ctx, &mut Regalloc)?;

        Ok(ScheduledProgram {
            func: std::mem::replace(&mut ctx.func, Function::new("")),
            blocks: std::mem::take(&mut ctx.schedules),
            stats: ctx.stats,
        })
    }

    /// Executes one pass run: time it, compute the IR delta, drain the
    /// diagnostics, emit the event, apply the mutation hook, and check
    /// the inter-pass invariants.
    fn run_pass(
        &mut self,
        ctx: &mut PassCtx<'_>,
        pass: &mut dyn Pass,
    ) -> Result<(), ScheduleError> {
        let before = IrSnapshot::of(&ctx.func);
        let t0 = Instant::now();
        let result = pass.run(ctx);
        let wall = t0.elapsed();
        let delta = before.delta_to(IrSnapshot::of(&ctx.func));
        let diags = std::mem::take(&mut ctx.diagnostics);
        self.emit(pass.name(), wall, delta, diags);
        result?;

        let mut mutated = false;
        if let Some((after, hook)) = &self.mutation {
            if *after == pass.name() {
                hook(&mut ctx.func);
                mutated = true;
            }
        }
        if self.verify && (pass.mutates_ir() || mutated) && ctx.func.block_count() > 0 {
            let violations = verify_ir(&ctx.func, ctx.mdes, ctx.opts, &ctx.entry_live_in);
            if !violations.is_empty() {
                return Err(ScheduleError::Verify {
                    after: pass.name(),
                    violations,
                });
            }
        }
        Ok(())
    }

    fn emit(
        &mut self,
        name: &'static str,
        wall: std::time::Duration,
        delta: IrDelta,
        diagnostics: Vec<String>,
    ) {
        if let Some(sink) = &mut self.sink {
            sink.pass(&PassEvent {
                pass: name,
                seq: self.seq,
                wall_micros: wall.as_micros() as u64,
                delta,
                diagnostics: diagnostics.clone(),
            });
        }
        self.seq += 1;
        self.log.record(name, wall, delta, diagnostics);
    }
}

// --- the passes ----------------------------------------------------------

/// Rejects structurally invalid or already-scheduled input.
struct ValidateInput;

impl Pass for ValidateInput {
    fn name(&self) -> &'static str {
        "validate"
    }

    fn mutates_ir(&self) -> bool {
        false
    }

    fn run(&mut self, ctx: &mut PassCtx<'_>) -> Result<(), ScheduleError> {
        let errs = validate(ctx.input);
        if !errs.is_empty() {
            return Err(ScheduleError::InvalidInput(errs));
        }
        for b in ctx.input.blocks() {
            for insn in &b.insns {
                if insn.speculative || matches!(insn.op, Opcode::CheckExcept | Opcode::ConfirmStore)
                {
                    return Err(ScheduleError::NotSequentialInput(insn.id));
                }
            }
        }
        Ok(())
    }
}

/// Materializes the working copy and records the input's entry live-in
/// set (the baseline for the def-before-use invariant).
struct SuperblockPrep;

impl Pass for SuperblockPrep {
    fn name(&self) -> &'static str {
        "superblock-prep"
    }

    fn run(&mut self, ctx: &mut PassCtx<'_>) -> Result<(), ScheduleError> {
        ctx.func = ctx.input.clone();
        let cfg = Cfg::build(&ctx.func);
        let lv = Liveness::compute(&ctx.func, &cfg);
        ctx.entry_live_in = lv.live_in(ctx.func.entry()).clone();
        let side_exits: usize = ctx.func.blocks().map(|b| b.side_exit_count()).sum();
        ctx.diag(format!(
            "{} superblocks, {} instructions, {} side exits",
            ctx.func.block_count(),
            ctx.func.insn_count(),
            side_exits
        ));
        Ok(())
    }
}

/// §3.5: inserts `clear_tag` for registers live into the entry block.
struct ClearTags;

impl Pass for ClearTags {
    fn name(&self) -> &'static str {
        "clear-tags"
    }

    fn run(&mut self, ctx: &mut PassCtx<'_>) -> Result<(), ScheduleError> {
        if ctx.opts.clear_uninitialized {
            ctx.stats.clear_tags = insert_clear_tags(&mut ctx.func);
            let n = ctx.stats.clear_tags;
            ctx.diag(format!("cleared {n} potentially stale tag(s)"));
        }
        Ok(())
    }
}

/// §3.7: splits self-overwrites so excepting speculative code can be
/// re-executed, pinning what cannot be renamed.
struct RecoveryRename;

impl Pass for RecoveryRename {
    fn name(&self) -> &'static str {
        "recovery-rename"
    }

    fn run(&mut self, ctx: &mut PassCtx<'_>) -> Result<(), ScheduleError> {
        if ctx.opts.recovery {
            let mut fresh =
                FreshRegs::for_function(&ctx.func, ctx.mdes.int_regs(), ctx.mdes.fp_regs());
            let rn = apply_recovery_renaming(&mut ctx.func, &mut fresh);
            ctx.stats.renames = rn.renamed;
            ctx.pinned.extend(rn.pinned_moves.iter().copied());
            ctx.pinned.extend(rn.unrenamable.iter().copied());
            if !rn.unrenamable.is_empty() {
                ctx.diag(format!(
                    "{} unrenamable self-overwrite(s) act as scheduling barriers",
                    rn.unrenamable.len()
                ));
            }
            ctx.diag(format!("renamed {} self-overwrite(s)", rn.renamed));
            ctx.unrenamable = rn.unrenamable;
        }
        Ok(())
    }
}

/// Control-flow graph and live-variable analysis over the (rewritten)
/// function; consumed by reduction's restriction-(1) liveness tests.
struct LivenessPass;

impl Pass for LivenessPass {
    fn name(&self) -> &'static str {
        "liveness"
    }

    fn mutates_ir(&self) -> bool {
        false
    }

    fn run(&mut self, ctx: &mut PassCtx<'_>) -> Result<(), ScheduleError> {
        let cfg = Cfg::build(&ctx.func);
        ctx.liveness = Some(Liveness::compute(&ctx.func, &cfg));
        ctx.cfg = Some(cfg);
        Ok(())
    }
}

/// Builds the superblock dependence graph of the current block.
struct BuildDepGraph;

impl Pass for BuildDepGraph {
    fn name(&self) -> &'static str {
        "depgraph"
    }

    fn mutates_ir(&self) -> bool {
        false
    }

    fn run(&mut self, ctx: &mut PassCtx<'_>) -> Result<(), ScheduleError> {
        let bid = ctx
            .block
            .ok_or_else(|| ScheduleError::Internal("depgraph pass without a block".into()))?;
        let mut g = DepGraph::build_with_aliasing(
            ctx.func.block(bid),
            ctx.mdes,
            ctx.opts.recovery,
            ctx.func.noalias_bases(),
        );
        // Restriction 3 (conservative form): nothing moves across an
        // unrenamable self-overwrite.
        if ctx.opts.recovery {
            for k in 0..g.original_len {
                if ctx.unrenamable.contains(&g.nodes[k].insn.id) {
                    for j in k + 1..g.original_len {
                        g.add_edge(Dep {
                            from: k,
                            to: j,
                            latency: 0,
                            kind: DepKind::Order,
                        });
                    }
                }
            }
        }
        ctx.graph = Some(g);
        ctx.reduction = None;
        Ok(())
    }
}

/// The Appendix reduction: removes control dependences the model
/// permits and marks unprotected instructions.
struct Reduce;

impl Pass for Reduce {
    fn name(&self) -> &'static str {
        "reduction"
    }

    fn mutates_ir(&self) -> bool {
        false
    }

    fn run(&mut self, ctx: &mut PassCtx<'_>) -> Result<(), ScheduleError> {
        let bid = ctx
            .block
            .ok_or_else(|| ScheduleError::Internal("reduction pass without a block".into()))?;
        let lv = ctx
            .liveness
            .take()
            .ok_or_else(|| ScheduleError::Internal("reduction before liveness".into()))?;
        let g = ctx
            .graph
            .as_mut()
            .ok_or_else(|| ScheduleError::Internal("reduction before depgraph".into()))?;
        let red = reduce_with_pins(g, &ctx.func, bid, &lv, ctx.opts, &ctx.pinned);
        ctx.liveness = Some(lv);
        ctx.reduction = Some(red);
        Ok(())
    }
}

/// The modified list scheduler (§3.3): issues the reduced graph,
/// setting speculative modifiers and inserting sentinels, then writes
/// the scheduled block back.
struct ListSchedule;

impl Pass for ListSchedule {
    fn name(&self) -> &'static str {
        "list-schedule"
    }

    fn run(&mut self, ctx: &mut PassCtx<'_>) -> Result<(), ScheduleError> {
        let bid = ctx
            .block
            .ok_or_else(|| ScheduleError::Internal("list-schedule pass without a block".into()))?;
        let PassCtx {
            func,
            mdes,
            opts,
            graph,
            reduction,
            schedules,
            stats,
            ..
        } = ctx;
        let g = graph
            .as_mut()
            .ok_or_else(|| ScheduleError::Internal("list-schedule before depgraph".into()))?;
        let red = reduction
            .as_ref()
            .ok_or_else(|| ScheduleError::Internal("list-schedule before reduction".into()))?;
        let mut fresh = || func.fresh_insn_id();
        let sched = schedule_block(g, red, mdes, opts, &mut fresh)?;
        func.block_mut(bid).insns = sched.insns.clone();
        accumulate(stats, &sched.stats);
        schedules.insert(bid, sched);
        ctx.graph = None;
        ctx.reduction = None;
        Ok(())
    }
}

/// §3.7 allocator support: maps renaming-introduced virtual registers
/// back to architectural ones, spilling with tag-preserving loads and
/// stores when needed.
struct Regalloc;

impl Pass for Regalloc {
    fn name(&self) -> &'static str {
        "regalloc"
    }

    fn run(&mut self, ctx: &mut PassCtx<'_>) -> Result<(), ScheduleError> {
        if ctx.opts.allocate {
            let aopts = crate::regalloc::AllocOptions::for_mdes(ctx.mdes, ctx.opts.recovery);
            let ar = crate::regalloc::allocate_registers(&mut ctx.func, &aopts)
                .map_err(|e| ScheduleError::Internal(format!("register allocation: {e}")))?;
            ctx.stats.regs_assigned = ar.assigned;
            ctx.stats.regs_spilled = ar.spilled;
            ctx.diag(format!(
                "assigned {} virtual register(s), spilled {}",
                ar.assigned, ar.spilled
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::SchedulingModel;
    use crate::pass::PASS_NAMES;
    use crate::pipeline::schedule_function;
    use sentinel_isa::{Insn, Reg};
    use sentinel_prog::examples::figure1;
    use sentinel_trace::CollectCompileSink;

    #[test]
    fn session_matches_schedule_function_on_every_model() {
        let f = figure1();
        let mdes = MachineDesc::paper_issue(8);
        for model in SchedulingModel::all() {
            let opts = SchedOptions::new(model);
            let direct = schedule_function(&f, &mdes, &opts).unwrap();
            let mut session = CompileSession::for_function(&f)
                .mdes(&mdes)
                .options(opts)
                .build();
            let via_session = session.run().unwrap();
            assert_eq!(direct.stats, via_session.stats, "{model}");
            for (a, b) in direct
                .func
                .blocks()
                .flat_map(|b| b.insns.iter())
                .zip(via_session.func.blocks().flat_map(|b| b.insns.iter()))
            {
                assert_eq!(a, b, "{model}");
            }
        }
    }

    #[test]
    fn log_names_every_stage_with_block_level_run_counts() {
        let f = figure1();
        let mdes = MachineDesc::paper_issue(8);
        let mut session = CompileSession::for_function(&f)
            .mdes(&mdes)
            .options(SchedOptions::new(SchedulingModel::Sentinel).with_clear_uninitialized())
            .build();
        session.run().unwrap();
        let log = session.log();
        for name in ["validate", "superblock-prep", "liveness", "regalloc"] {
            assert_eq!(log.report(name).unwrap().runs, 1, "{name}");
        }
        // Block-level passes run once per block (3 blocks in figure1).
        for name in ["depgraph", "reduction", "list-schedule"] {
            assert_eq!(log.report(name).unwrap().runs, 3, "{name}");
        }
        // Every logged pass name is canonical.
        for r in log.reports() {
            assert!(PASS_NAMES.contains(&r.name), "unknown pass {}", r.name);
        }
        // IR deltas land on the passes that produced them: clear-tags
        // inserted instructions, the scheduler marked speculation.
        assert!(log.report("clear-tags").unwrap().delta.insns_added >= 2);
        assert!(
            log.report("list-schedule")
                .unwrap()
                .delta
                .marked_speculative
                > 0
        );
    }

    #[test]
    fn observer_sink_receives_ordered_events() {
        let f = figure1();
        let mdes = MachineDesc::paper_issue(8);
        let mut session = CompileSession::for_function(&f)
            .mdes(&mdes)
            .options(SchedOptions::new(SchedulingModel::Sentinel))
            .observe(Box::new(CollectCompileSink::default()))
            .build();
        session.run().unwrap();
        let sink = session.take_sink().expect("sink attached");
        // CollectCompileSink buffers; downcast via its Debug output is
        // awkward, so re-check through finish().
        let mut sink = sink;
        let summary = sink.finish();
        assert!(summary.ends_with("pass runs"), "{summary}");
        let n: u64 = summary.split_whitespace().next().unwrap().parse().unwrap();
        assert_eq!(n, session.log().total_runs());
    }

    #[test]
    fn mutation_after_a_pass_is_caught_at_that_boundary() {
        let f = figure1();
        let mdes = MachineDesc::paper_issue(8);
        let mut session = CompileSession::for_function(&f)
            .mdes(&mdes)
            .options(SchedOptions::new(SchedulingModel::Sentinel))
            .mutate_after(
                "list-schedule",
                Box::new(|func: &mut Function| {
                    // A broken pass marks a store speculative under
                    // model S (which forbids speculative stores).
                    let entry = func.entry();
                    func.push_insn(entry, Insn::st_w(Reg::int(1), Reg::int(2), 0).speculated());
                }),
            )
            .build();
        let err = session.run().unwrap_err();
        match err {
            ScheduleError::Verify { after, violations } => {
                assert_eq!(after, "list-schedule");
                assert!(
                    violations.iter().any(|v| v.contains("forbids")),
                    "{violations:?}"
                );
            }
            other => panic!("expected Verify, got {other}"),
        }
    }

    #[test]
    fn run_twice_is_an_error() {
        let f = figure1();
        let mut session = CompileSession::for_function(&f).build();
        session.run().unwrap();
        assert!(matches!(session.run(), Err(ScheduleError::Internal(_))));
    }

    #[test]
    fn failed_validation_still_logs_the_validate_pass() {
        let f = Function::new("empty");
        let mut session = CompileSession::for_function(&f).build();
        let err = session.run().unwrap_err();
        assert!(matches!(err, ScheduleError::InvalidInput(_)));
        assert_eq!(session.log().report("validate").unwrap().runs, 1);
        assert!(session.log().report("list-schedule").is_none());
    }
}
