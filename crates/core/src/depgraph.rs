//! Dependence graph construction over one superblock.
//!
//! Nodes are the block's instructions (in original program order), plus
//! any sentinels the list scheduler inserts dynamically. Edges carry a
//! minimum issue-cycle separation (`latency`) and a kind:
//!
//! * [`DepKind::Flow`] / [`DepKind::Anti`] / [`DepKind::Output`] —
//!   register dependences,
//! * [`DepKind::Memory`] — store↔load / store↔store ordering (with a
//!   simple base+offset disambiguator),
//! * [`DepKind::Control`] — branch → later-instruction edges, the ones
//!   dependence-graph *reduction* removes to enable speculation (§2.1),
//! * [`DepKind::Order`] — irremovable ordering: nothing moves *down* past
//!   a branch, and opaque irreversible instructions (`jsr`, `io`) are full
//!   barriers,
//! * [`DepKind::Sentinel`] — edges pinning a dynamically inserted sentinel
//!   into its home block.

use sentinel_isa::{Insn, MachineDesc, Opcode, Reg};
use sentinel_prog::Block;

/// Edge classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DepKind {
    /// Register read-after-write.
    Flow,
    /// Register write-after-read.
    Anti,
    /// Register write-after-write.
    Output,
    /// Memory ordering.
    Memory,
    /// Control dependence from a branch to a later instruction (removable
    /// by reduction).
    Control,
    /// Irremovable ordering (no downward motion past branches; barriers).
    Order,
    /// Sentinel pinning edges added during scheduling.
    Sentinel,
}

/// An edge `from → to`: `to` may issue no earlier than
/// `cycle(from) + latency`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dep {
    /// Source node index.
    pub from: usize,
    /// Destination node index.
    pub to: usize,
    /// Minimum cycle separation.
    pub latency: u32,
    /// Kind.
    pub kind: DepKind,
}

/// A node: the instruction plus its original position (inserted sentinels
/// have `orig_pos == None`).
#[derive(Debug, Clone)]
pub struct Node {
    /// The instruction (speculative flag updated during scheduling).
    pub insn: Insn,
    /// Original position in the block, if the instruction came from it.
    pub orig_pos: Option<usize>,
}

/// The dependence graph of one block.
#[derive(Debug, Clone)]
pub struct DepGraph {
    /// Nodes; indices `0..original_len` are the block's instructions in
    /// original order.
    pub nodes: Vec<Node>,
    /// Number of original instructions.
    pub original_len: usize,
    succs: Vec<Vec<Dep>>,
    preds: Vec<Vec<Dep>>,
}

/// Whether `op` delimits a sentinel *home block* (region). Branches and
/// halts always do; with the §3.7 recovery constraints, irreversible
/// instructions also define region boundaries (restriction 2).
pub fn is_region_delimiter(op: Opcode, recovery: bool) -> bool {
    op.is_control() || (recovery && op.is_irreversible())
}

/// A memory reference summary used for disambiguation: base register, the
/// SSA-ish version of that base at the reference point, byte offset, and
/// access size.
#[derive(Debug, Clone, Copy, PartialEq)]
struct MemRef {
    base: Reg,
    base_version: u32,
    offset: i64,
    bytes: i64,
}

impl MemRef {
    /// Provably-disjoint check. Two references are disjoint when
    ///
    /// * they use the same base register at the same definition version
    ///   and their `[offset, offset+bytes)` intervals do not overlap, or
    /// * they use *different* base registers that are both declared
    ///   `noalias` (pairwise-disjoint arrays) and neither base has been
    ///   redefined in the block (version 0 — the live-in value the
    ///   declaration covers).
    ///
    /// Anything else conservatively aliases.
    fn disjoint(&self, other: &MemRef, noalias: &std::collections::BTreeSet<Reg>) -> bool {
        if self.base == other.base {
            return self.base_version == other.base_version
                && (self.offset + self.bytes <= other.offset
                    || other.offset + other.bytes <= self.offset);
        }
        self.base_version == 0
            && other.base_version == 0
            && noalias.contains(&self.base)
            && noalias.contains(&other.base)
    }
}

fn mem_ref(insn: &Insn, versions: &std::collections::HashMap<Reg, u32>) -> Option<MemRef> {
    if !insn.op.is_mem() {
        return None;
    }
    let base = insn.src2?;
    let bytes = match insn.op {
        Opcode::LdB | Opcode::StB => 1,
        _ => 8,
    };
    Some(MemRef {
        base,
        base_version: versions.get(&base).copied().unwrap_or(0),
        offset: insn.imm,
        bytes,
    })
}

impl DepGraph {
    /// Builds the full (unreduced) dependence graph of a block. Flow-edge
    /// latencies come from `mdes`.
    ///
    /// `recovery` widens barrier treatment per §3.7 (it does not change
    /// register/memory edges, only which instructions later count as
    /// region delimiters — kept here for symmetry of the public API).
    pub fn build(block: &Block, mdes: &MachineDesc, recovery: bool) -> DepGraph {
        DepGraph::build_with_aliasing(block, mdes, recovery, &Default::default())
    }

    /// Like [`DepGraph::build`], honoring program-level `noalias` base
    /// declarations (see
    /// [`Function::declare_noalias`](sentinel_prog::Function::declare_noalias))
    /// when disambiguating memory references.
    pub fn build_with_aliasing(
        block: &Block,
        mdes: &MachineDesc,
        recovery: bool,
        noalias: &std::collections::BTreeSet<Reg>,
    ) -> DepGraph {
        let n = block.insns.len();
        let mut g = DepGraph {
            nodes: block
                .insns
                .iter()
                .enumerate()
                .map(|(i, insn)| Node {
                    insn: insn.clone(),
                    orig_pos: Some(i),
                })
                .collect(),
            original_len: n,
            succs: vec![Vec::new(); n],
            preds: vec![Vec::new(); n],
        };
        let _ = recovery;

        // --- register dependences -------------------------------------
        use std::collections::HashMap;
        let mut last_def: HashMap<Reg, usize> = HashMap::new();
        let mut readers_since_def: HashMap<Reg, Vec<usize>> = HashMap::new();
        let mut versions: HashMap<Reg, u32> = HashMap::new();
        // Memory state.
        let mut last_store: Option<usize> = None;
        let mut stores_since: Vec<(usize, Option<MemRef>)> = Vec::new(); // all stores, for alias-refined edges
        let mut loads_since_store: Vec<(usize, Option<MemRef>)> = Vec::new();
        // Barrier state.
        let mut last_barrier: Option<usize> = None;

        for (i, insn) in block.insns.iter().enumerate() {
            // Flow: last def of each source.
            for src in insn.uses() {
                if let Some(&d) = last_def.get(&src) {
                    let lat = mdes.latency(block.insns[d].op);
                    g.add_edge(Dep {
                        from: d,
                        to: i,
                        latency: lat,
                        kind: DepKind::Flow,
                    });
                }
                readers_since_def.entry(src).or_default().push(i);
            }
            if let Some(d) = insn.def() {
                // Output: previous def of the same register.
                if let Some(&p) = last_def.get(&d) {
                    let lp = mdes.latency(block.insns[p].op) as i64;
                    let li = mdes.latency(insn.op) as i64;
                    let lat = (lp - li + 1).max(1) as u32;
                    g.add_edge(Dep {
                        from: p,
                        to: i,
                        latency: lat,
                        kind: DepKind::Output,
                    });
                }
                // Anti: readers of the old value.
                if let Some(rs) = readers_since_def.get(&d) {
                    for &r in rs {
                        if r != i {
                            g.add_edge(Dep {
                                from: r,
                                to: i,
                                latency: 0,
                                kind: DepKind::Anti,
                            });
                        }
                    }
                }
                last_def.insert(d, i);
                readers_since_def.insert(d, Vec::new());
                *versions.entry(d).or_insert(0) += 1;
            }

            // --- memory ordering ---------------------------------------
            let mref = mem_ref(insn, &versions);
            if insn.op.is_load() {
                // Flow from possibly-aliasing earlier stores.
                for &(s, sref) in &stores_since {
                    let disjoint =
                        matches!((mref, sref), (Some(a), Some(b)) if a.disjoint(&b, noalias));
                    if !disjoint {
                        let lat = mdes.latency(block.insns[s].op);
                        g.add_edge(Dep {
                            from: s,
                            to: i,
                            latency: lat,
                            kind: DepKind::Memory,
                        });
                    }
                }
                loads_since_store.push((i, mref));
            }
            if insn.op.is_store() {
                // Stores stay in FIFO order (store-buffer order, §4.1).
                if let Some(s) = last_store {
                    g.add_edge(Dep {
                        from: s,
                        to: i,
                        latency: 0,
                        kind: DepKind::Memory,
                    });
                }
                // Anti from possibly-aliasing earlier loads.
                for &(l, lref) in &loads_since_store {
                    let disjoint =
                        matches!((mref, lref), (Some(a), Some(b)) if a.disjoint(&b, noalias));
                    if !disjoint {
                        g.add_edge(Dep {
                            from: l,
                            to: i,
                            latency: 0,
                            kind: DepKind::Memory,
                        });
                    }
                }
                last_store = Some(i);
                stores_since.push((i, mref));
                loads_since_store.clear();
            }

            // --- control and barriers ----------------------------------
            if insn.op.is_cond_branch() {
                // Nothing may move down past a branch…
                for j in 0..i {
                    g.add_edge(Dep {
                        from: j,
                        to: i,
                        latency: 0,
                        kind: DepKind::Order,
                    });
                }
                // …and moving *up* past it is speculation: removable edges.
                for j in i + 1..n {
                    g.add_edge(Dep {
                        from: i,
                        to: j,
                        latency: 0,
                        kind: DepKind::Control,
                    });
                }
            } else if matches!(insn.op, Opcode::Jump | Opcode::Halt) {
                for j in 0..i {
                    g.add_edge(Dep {
                        from: j,
                        to: i,
                        latency: 0,
                        kind: DepKind::Order,
                    });
                }
                for j in i + 1..n {
                    g.add_edge(Dep {
                        from: i,
                        to: j,
                        latency: 0,
                        kind: DepKind::Order,
                    });
                }
            } else if insn.op.is_irreversible() {
                // Opaque call / I/O: a full scheduling barrier (sound for
                // unknown memory and side effects; subsumes §3.7
                // restriction 1).
                for j in 0..i {
                    g.add_edge(Dep {
                        from: j,
                        to: i,
                        latency: 0,
                        kind: DepKind::Order,
                    });
                }
                for j in i + 1..n {
                    g.add_edge(Dep {
                        from: i,
                        to: j,
                        latency: 0,
                        kind: DepKind::Order,
                    });
                }
            }
            let _ = &last_barrier;
            if insn.op.is_irreversible() {
                last_barrier = Some(i);
            }
        }
        g
    }

    fn ensure(&mut self, idx: usize) {
        while self.succs.len() <= idx {
            self.succs.push(Vec::new());
            self.preds.push(Vec::new());
        }
    }

    /// Adds an edge, deduplicating identical `(from, to, kind)` pairs by
    /// keeping the larger latency.
    pub fn add_edge(&mut self, dep: Dep) {
        debug_assert_ne!(dep.from, dep.to, "self edge");
        self.ensure(dep.from.max(dep.to));
        if let Some(existing) = self.succs[dep.from]
            .iter_mut()
            .find(|e| e.to == dep.to && e.kind == dep.kind)
        {
            if existing.latency < dep.latency {
                existing.latency = dep.latency;
                let p = self.preds[dep.to]
                    .iter_mut()
                    .find(|e| e.from == dep.from && e.kind == dep.kind)
                    .expect("pred mirror");
                p.latency = dep.latency;
            }
            return;
        }
        self.succs[dep.from].push(dep);
        self.preds[dep.to].push(dep);
    }

    /// Adds a node (an inserted sentinel) and returns its index.
    pub fn add_node(&mut self, insn: Insn) -> usize {
        let idx = self.nodes.len();
        self.nodes.push(Node {
            insn,
            orig_pos: None,
        });
        self.ensure(idx);
        idx
    }

    /// Removes the control edge `branch → to`, returning `true` if one
    /// existed.
    pub fn remove_control_edge(&mut self, branch: usize, to: usize) -> bool {
        let before = self.succs[branch].len();
        self.succs[branch].retain(|e| !(e.to == to && e.kind == DepKind::Control));
        self.preds[to].retain(|e| !(e.from == branch && e.kind == DepKind::Control));
        self.succs[branch].len() != before
    }

    /// Successor edges of a node.
    pub fn succs(&self, i: usize) -> &[Dep] {
        &self.succs[i]
    }

    /// Predecessor edges of a node.
    pub fn preds(&self, i: usize) -> &[Dep] {
        &self.preds[i]
    }

    /// Number of nodes (original + inserted).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Indices of original conditional-branch nodes, in program order.
    pub fn branch_positions(&self) -> Vec<usize> {
        (0..self.original_len)
            .filter(|&i| self.nodes[i].insn.op.is_cond_branch())
            .collect()
    }

    /// The position of the first region delimiter strictly after `pos`
    /// (or `original_len` if none): the end of `pos`'s home block.
    pub fn region_end(&self, pos: usize, recovery: bool) -> usize {
        (pos + 1..self.original_len)
            .find(|&i| is_region_delimiter(self.nodes[i].insn.op, recovery))
            .unwrap_or(self.original_len)
    }

    /// Critical-path heights (used as list-scheduling priorities) over the
    /// current edges. Inserted nodes are included.
    pub fn heights(&self, latency_of: impl Fn(&Insn) -> u32) -> Vec<u64> {
        let n = self.len();
        let mut h = vec![0u64; n];
        // Process in reverse topological order; original order is a valid
        // topological order for original nodes (all edges go forward), and
        // inserted nodes only link into existing ones, so iterate until
        // fixpoint (cheap: graphs are DAGs, a couple of passes suffice).
        let mut changed = true;
        while changed {
            changed = false;
            for i in (0..n).rev() {
                let base = latency_of(&self.nodes[i].insn) as u64;
                let mut best = base;
                for e in &self.succs[i] {
                    let v = e.latency as u64 + h[e.to];
                    if v > best {
                        best = v;
                    }
                }
                if h[i] != best {
                    h[i] = best;
                    changed = true;
                }
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sentinel_isa::{BlockId, Reg};
    use sentinel_prog::ProgramBuilder;

    fn block_of(insns: Vec<Insn>) -> Block {
        let mut b = ProgramBuilder::new("t");
        let e = b.block("entry");
        let t = b.block("t");
        b.switch_to(e);
        for i in insns {
            b.push(i);
        }
        b.switch_to(t);
        b.push(Insn::halt());
        let f = b.finish();
        f.block(e).clone()
    }

    fn has_edge(g: &DepGraph, from: usize, to: usize, kind: DepKind) -> bool {
        g.succs(from).iter().any(|e| e.to == to && e.kind == kind)
    }

    #[test]
    fn flow_anti_output_edges() {
        // 0: r1 = 5 ; 1: r2 = r1+1 ; 2: r1 = 7
        let b = block_of(vec![
            Insn::li(Reg::int(1), 5),
            Insn::addi(Reg::int(2), Reg::int(1), 1),
            Insn::li(Reg::int(1), 7),
        ]);
        let g = DepGraph::build(&b, &MachineDesc::paper_issue(1), false);
        assert!(has_edge(&g, 0, 1, DepKind::Flow));
        assert!(has_edge(&g, 1, 2, DepKind::Anti));
        assert!(has_edge(&g, 0, 2, DepKind::Output));
    }

    #[test]
    fn flow_latency_matches_producer_class() {
        // load (2) feeding add.
        let b = block_of(vec![
            Insn::ld_w(Reg::int(1), Reg::int(2), 0),
            Insn::addi(Reg::int(3), Reg::int(1), 1),
        ]);
        let g = DepGraph::build(&b, &MachineDesc::paper_issue(1), false);
        let e = g.succs(0).iter().find(|e| e.to == 1).unwrap();
        assert_eq!(e.latency, 2);
        assert_eq!(e.kind, DepKind::Flow);
    }

    #[test]
    fn store_load_ordering_conservative() {
        // st r1, 0(r2) ; ld r3, 0(r4)  — different bases: may alias.
        let b = block_of(vec![
            Insn::st_w(Reg::int(1), Reg::int(2), 0),
            Insn::ld_w(Reg::int(3), Reg::int(4), 0),
        ]);
        let g = DepGraph::build(&b, &MachineDesc::paper_issue(1), false);
        assert!(has_edge(&g, 0, 1, DepKind::Memory));
    }

    #[test]
    fn same_base_disjoint_offsets_disambiguated() {
        // st r1, 0(r2) ; ld r3, 8(r2) — same base version, disjoint.
        let b = block_of(vec![
            Insn::st_w(Reg::int(1), Reg::int(2), 0),
            Insn::ld_w(Reg::int(3), Reg::int(2), 8),
        ]);
        let g = DepGraph::build(&b, &MachineDesc::paper_issue(1), false);
        assert!(!has_edge(&g, 0, 1, DepKind::Memory));
    }

    #[test]
    fn noalias_bases_disambiguate_across_arrays() {
        // st r1, 0(r2) ; ld r3, 0(r4) — r2 and r4 declared disjoint arrays.
        let b = block_of(vec![
            Insn::st_w(Reg::int(1), Reg::int(2), 0),
            Insn::ld_w(Reg::int(3), Reg::int(4), 0),
        ]);
        let noalias: std::collections::BTreeSet<Reg> =
            [Reg::int(2), Reg::int(4)].into_iter().collect();
        let g = DepGraph::build_with_aliasing(&b, &MachineDesc::paper_issue(1), false, &noalias);
        assert!(!has_edge(&g, 0, 1, DepKind::Memory));
        // Only one base declared: conservative again.
        let partial: std::collections::BTreeSet<Reg> = [Reg::int(2)].into_iter().collect();
        let g2 = DepGraph::build_with_aliasing(&b, &MachineDesc::paper_issue(1), false, &partial);
        assert!(has_edge(&g2, 0, 1, DepKind::Memory));
    }

    #[test]
    fn noalias_promise_expires_on_redefinition() {
        // r4 is rewritten before the load: its value may now point anywhere.
        let b = block_of(vec![
            Insn::st_w(Reg::int(1), Reg::int(2), 0),
            Insn::mov(Reg::int(4), Reg::int(2)),
            Insn::ld_w(Reg::int(3), Reg::int(4), 0),
        ]);
        let noalias: std::collections::BTreeSet<Reg> =
            [Reg::int(2), Reg::int(4)].into_iter().collect();
        let g = DepGraph::build_with_aliasing(&b, &MachineDesc::paper_issue(1), false, &noalias);
        assert!(has_edge(&g, 0, 2, DepKind::Memory));
    }

    #[test]
    fn same_base_redefined_conservative() {
        // st r1, 0(r2) ; r2 = r2+8 ; ld r3, 8(r2) — version changed: alias.
        let b = block_of(vec![
            Insn::st_w(Reg::int(1), Reg::int(2), 0),
            Insn::addi(Reg::int(2), Reg::int(2), 8),
            Insn::ld_w(Reg::int(3), Reg::int(2), 8),
        ]);
        let g = DepGraph::build(&b, &MachineDesc::paper_issue(1), false);
        assert!(has_edge(&g, 0, 2, DepKind::Memory));
    }

    #[test]
    fn stores_stay_fifo_ordered() {
        let b = block_of(vec![
            Insn::st_w(Reg::int(1), Reg::int(2), 0),
            Insn::st_w(Reg::int(1), Reg::int(2), 64),
        ]);
        let g = DepGraph::build(&b, &MachineDesc::paper_issue(1), false);
        assert!(has_edge(&g, 0, 1, DepKind::Memory), "stores never reorder");
    }

    #[test]
    fn branch_edges_both_directions() {
        // 0: add ; 1: beq ; 2: add
        let b = block_of(vec![
            Insn::addi(Reg::int(1), Reg::int(1), 1),
            Insn::branch(Opcode::Beq, Reg::int(1), Reg::ZERO, BlockId(1)),
            Insn::addi(Reg::int(2), Reg::int(2), 1),
        ]);
        let mut g = DepGraph::build(&b, &MachineDesc::paper_issue(1), false);
        assert!(has_edge(&g, 0, 1, DepKind::Order), "no downward motion");
        assert!(has_edge(&g, 1, 2, DepKind::Control), "speculation edge");
        assert!(g.remove_control_edge(1, 2));
        assert!(!has_edge(&g, 1, 2, DepKind::Control));
        assert!(!g.remove_control_edge(1, 2), "already removed");
    }

    #[test]
    fn jsr_is_a_full_barrier() {
        let b = block_of(vec![
            Insn::addi(Reg::int(1), Reg::int(1), 1),
            Insn::jsr(),
            Insn::ld_w(Reg::int(2), Reg::int(3), 0),
        ]);
        let g = DepGraph::build(&b, &MachineDesc::paper_issue(1), false);
        assert!(has_edge(&g, 0, 1, DepKind::Order));
        assert!(has_edge(&g, 1, 2, DepKind::Order));
    }

    #[test]
    fn region_end_finds_next_delimiter() {
        let b = block_of(vec![
            Insn::ld_w(Reg::int(1), Reg::int(2), 0), // 0
            Insn::branch(Opcode::Beq, Reg::int(1), Reg::ZERO, BlockId(1)), // 1
            Insn::jsr(),                             // 2
            Insn::addi(Reg::int(3), Reg::int(1), 1), // 3
        ]);
        let g = DepGraph::build(&b, &MachineDesc::paper_issue(1), false);
        assert_eq!(g.region_end(0, false), 1);
        // Without recovery, jsr does not delimit regions.
        assert_eq!(g.region_end(1, false), 4);
        // With recovery it does (restriction 2).
        assert_eq!(g.region_end(1, true), 2);
        assert_eq!(g.region_end(3, true), 4);
    }

    #[test]
    fn heights_reflect_critical_path() {
        // ld (2) -> add (1) -> st(1): height(ld) = 2+1+1... edges: ld->add lat2, add->st lat1.
        let b = block_of(vec![
            Insn::ld_w(Reg::int(1), Reg::int(2), 0),
            Insn::addi(Reg::int(3), Reg::int(1), 1),
            Insn::st_w(Reg::int(3), Reg::int(2), 0),
        ]);
        let g = DepGraph::build(&b, &MachineDesc::paper_issue(1), false);
        let h = g.heights(|i| sentinel_isa::MachineDesc::paper_issue(1).latency(i.op));
        assert!(h[0] > h[1], "earlier chain nodes have larger height");
        assert!(h[1] > 0);
        assert_eq!(h[0], 2 + 1 + 1);
    }

    #[test]
    fn add_node_extends_graph() {
        let b = block_of(vec![Insn::nop()]);
        let mut g = DepGraph::build(&b, &MachineDesc::paper_issue(1), false);
        let j = g.add_node(Insn::check_exception(Reg::int(1)));
        g.add_edge(Dep {
            from: 0,
            to: j,
            latency: 1,
            kind: DepKind::Sentinel,
        });
        assert_eq!(g.len(), 2);
        assert_eq!(g.preds(j).len(), 1);
        assert_eq!(g.nodes[j].orig_pos, None);
    }

    #[test]
    fn duplicate_edges_keep_max_latency() {
        let b = block_of(vec![Insn::nop(), Insn::nop()]);
        let mut g = DepGraph::build(&b, &MachineDesc::paper_issue(1), false);
        g.add_edge(Dep {
            from: 0,
            to: 1,
            latency: 1,
            kind: DepKind::Sentinel,
        });
        g.add_edge(Dep {
            from: 0,
            to: 1,
            latency: 5,
            kind: DepKind::Sentinel,
        });
        g.add_edge(Dep {
            from: 0,
            to: 1,
            latency: 2,
            kind: DepKind::Sentinel,
        });
        let edges: Vec<_> = g
            .succs(0)
            .iter()
            .filter(|e| e.kind == DepKind::Sentinel)
            .collect();
        assert_eq!(edges.len(), 1);
        assert_eq!(edges[0].latency, 5);
    }
}
