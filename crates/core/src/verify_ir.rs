//! Inter-pass IR invariant checking.
//!
//! [`verify_ir`] is run by [`CompileSession`](crate::CompileSession)
//! between compiler passes — always in debug builds, and under
//! [`SchedOptions::verify_passes`] in release — so a pass that silently
//! miscompiles is caught at its own boundary with a named pass and a
//! list of violations, instead of surfacing as a wrong simulation
//! result hundreds of thousands of cycles later.
//!
//! The invariants:
//!
//! 1. **Structural integrity** — everything
//!    [`validate`] checks: blocks and labels,
//!    unique assigned ids, existing branch targets, operand shapes and
//!    register classes, architectural speculation legality.
//! 2. **Model speculation legality** — the speculative modifier only on
//!    opcodes the scheduling model may move above branches (e.g. no
//!    speculative store outside model T), and boost levels within the
//!    boosting model's shadow depth.
//! 3. **Sentinel ownership** — `check_exception` / `confirm_store`
//!    only appear under the sentinel models that insert them.
//! 4. **§4.2 store separation** — every `confirm_store` index lies
//!    within `N − 1` of the machine's probationary store buffer.
//! 5. **Def-before-use under liveness** — rewriting must not introduce
//!    new upward-exposed uses: the set of registers live into the entry
//!    block never grows past the input function's (renamed temporaries
//!    and inserted sentinels must be defined before they are read).

use sentinel_isa::{MachineDesc, Opcode};
use sentinel_prog::cfg::Cfg;
use sentinel_prog::liveness::{Liveness, RegSet, RegSetExt};
use sentinel_prog::{validate, Function};

use crate::models::SchedOptions;

/// Checks every inter-pass invariant over `func`, returning the
/// violations found (empty = the IR is sound at this boundary).
///
/// `entry_live_in` is the register set live into the *input* function's
/// entry block, recorded before any pass ran.
pub fn verify_ir(
    func: &Function,
    mdes: &MachineDesc,
    opts: &SchedOptions,
    entry_live_in: &RegSet,
) -> Vec<String> {
    let mut violations: Vec<String> = Vec::new();

    // 1. Structural integrity (delegated to the program-layer validator).
    for e in validate(func) {
        violations.push(format!("structural: {e}"));
    }
    if !violations.is_empty() {
        // Operand-shape errors make the dataflow checks below
        // meaningless; report the structural breakage alone.
        return violations;
    }

    let model = opts.model;
    for b in func.blocks() {
        for insn in &b.insns {
            // 2. Model speculation legality.
            if insn.speculative && !model.may_speculate(insn.op) {
                violations.push(format!(
                    "model: {} ({}) is speculative, which {model} forbids",
                    insn.id, insn.op
                ));
            }
            if insn.boost > 0 {
                match model.boost_levels() {
                    Some(levels) if insn.boost <= levels => {}
                    Some(levels) => violations.push(format!(
                        "model: {} boosted across {} branches but the machine has {} shadow level(s)",
                        insn.id, insn.boost, levels
                    )),
                    None => violations.push(format!(
                        "model: {} carries a boost level under non-boosting {model}",
                        insn.id
                    )),
                }
            }

            // 3. Sentinel ownership.
            if matches!(insn.op, Opcode::CheckExcept | Opcode::ConfirmStore)
                && !model.uses_sentinels()
            {
                violations.push(format!(
                    "model: sentinel {} ({}) under {model}, which inserts none",
                    insn.id, insn.op
                ));
            }

            // 4. §4.2 store separation: a confirm's tail-relative index
            // must fit within the probationary buffer.
            if insn.op == Opcode::ConfirmStore {
                let bound = mdes.store_buffer_size().saturating_sub(1) as i64;
                if insn.imm > bound {
                    violations.push(format!(
                        "store-separation: confirm {} index {} exceeds N-1 = {bound} (block {})",
                        insn.id, insn.imm, b.label
                    ));
                }
            }
        }
    }

    // 5. Def-before-use: entry live-in must not grow.
    let cfg = Cfg::build(func);
    let lv = Liveness::compute(func, &cfg);
    let entry = func.entry();
    for reg in lv.live_in(entry).iter_sorted() {
        if !entry_live_in.contains(&reg) {
            violations.push(format!(
                "dataflow: {reg} became upward-exposed at entry (used before any definition)"
            ));
        }
    }

    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::SchedulingModel;
    use sentinel_isa::{Insn, LatencyTable, Reg};
    use sentinel_prog::ProgramBuilder;

    fn mdes() -> MachineDesc {
        MachineDesc::builder()
            .issue_width(4)
            .store_buffer_size(4)
            .latencies(LatencyTable::unit())
            .build()
    }

    fn entry_live(func: &Function) -> RegSet {
        let cfg = Cfg::build(func);
        let lv = Liveness::compute(func, &cfg);
        lv.live_in(func.entry()).clone()
    }

    fn simple() -> Function {
        let mut b = ProgramBuilder::new("f");
        b.block("entry");
        b.push(Insn::ld_w(Reg::int(1), Reg::int(2), 0));
        b.push(Insn::addi(Reg::int(3), Reg::int(1), 1));
        b.push(Insn::halt());
        b.finish()
    }

    #[test]
    fn clean_function_verifies_under_every_model() {
        let f = simple();
        let live = entry_live(&f);
        for model in SchedulingModel::all() {
            let v = verify_ir(&f, &mdes(), &SchedOptions::new(model), &live);
            assert!(v.is_empty(), "{model}: {v:?}");
        }
    }

    #[test]
    fn structural_breakage_is_reported_first() {
        let mut f = simple();
        let e = f.entry();
        f.block_mut(e).insns[0].id = f.block(e).insns[1].id; // duplicate id
        let v = verify_ir(
            &f,
            &mdes(),
            &SchedOptions::new(SchedulingModel::Sentinel),
            &entry_live(&simple()),
        );
        assert!(v.iter().any(|m| m.starts_with("structural:")), "{v:?}");
    }

    #[test]
    fn speculative_store_illegal_outside_model_t() {
        let mut b = ProgramBuilder::new("f");
        b.block("entry");
        b.push(Insn::st_w(Reg::int(1), Reg::int(2), 0).speculated());
        b.push(Insn::halt());
        let f = b.finish();
        let live = entry_live(&f);
        let v = verify_ir(
            &f,
            &mdes(),
            &SchedOptions::new(SchedulingModel::Sentinel),
            &live,
        );
        assert!(v.iter().any(|m| m.contains("forbids")), "{v:?}");
        // ...but legal under T.
        let v = verify_ir(
            &f,
            &mdes(),
            &SchedOptions::new(SchedulingModel::SentinelStores),
            &live,
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn confirm_index_beyond_buffer_is_flagged() {
        let mut b = ProgramBuilder::new("f");
        b.block("entry");
        b.push(Insn::confirm_store(7)); // N = 4 → bound 3
        b.push(Insn::halt());
        let f = b.finish();
        let v = verify_ir(
            &f,
            &mdes(),
            &SchedOptions::new(SchedulingModel::SentinelStores),
            &entry_live(&f),
        );
        assert!(v.iter().any(|m| m.contains("store-separation")), "{v:?}");
    }

    #[test]
    fn sentinel_under_percolation_model_is_flagged() {
        let mut b = ProgramBuilder::new("f");
        b.block("entry");
        b.push(Insn::check_exception(Reg::int(1)));
        b.push(Insn::halt());
        let f = b.finish();
        let v = verify_ir(
            &f,
            &mdes(),
            &SchedOptions::new(SchedulingModel::GeneralPercolation),
            &entry_live(&f),
        );
        assert!(v.iter().any(|m| m.contains("inserts none")), "{v:?}");
    }

    #[test]
    fn new_upward_exposed_use_is_flagged() {
        // The "pass" forgot to define the renamed temporary r9 before
        // reading it.
        let mut b = ProgramBuilder::new("f");
        b.block("entry");
        b.push(Insn::addi(Reg::int(3), Reg::int(9), 1));
        b.push(Insn::halt());
        let f = b.finish();
        let original = simple();
        let v = verify_ir(
            &f,
            &mdes(),
            &SchedOptions::new(SchedulingModel::Sentinel),
            &entry_live(&original),
        );
        assert!(v.iter().any(|m| m.contains("upward-exposed")), "{v:?}");
    }

    #[test]
    fn boost_levels_bounded_by_model() {
        let mut b = ProgramBuilder::new("f");
        b.block("entry");
        let mut i = Insn::ld_w(Reg::int(1), Reg::int(2), 0);
        i.boost = 3;
        b.push(i);
        b.push(Insn::halt());
        let f = b.finish();
        let live = entry_live(&f);
        let ok = verify_ir(
            &f,
            &mdes(),
            &SchedOptions::new(SchedulingModel::Boosting(4)),
            &live,
        );
        assert!(ok.is_empty(), "{ok:?}");
        let deep = verify_ir(
            &f,
            &mdes(),
            &SchedOptions::new(SchedulingModel::Boosting(2)),
            &live,
        );
        assert!(deep.iter().any(|m| m.contains("shadow level")), "{deep:?}");
        let wrong = verify_ir(
            &f,
            &mdes(),
            &SchedOptions::new(SchedulingModel::Sentinel),
            &live,
        );
        assert!(
            wrong.iter().any(|m| m.contains("non-boosting")),
            "{wrong:?}"
        );
    }
}
