//! Sentinel scheduling — the paper's primary contribution.
//!
//! This crate implements the compile-time half of *Sentinel Scheduling for
//! VLIW and Superscalar Processors* (Mahlke et al., ASPLOS 1992):
//!
//! * [`depgraph`] — superblock dependence graphs (register, memory,
//!   control, and ordering dependences),
//! * [`reduction`] — the Appendix algorithm: control-dependence removal
//!   per scheduling model plus protected/unprotected marking,
//! * [`list`] — the modified list scheduler that sets speculative
//!   modifiers and inserts `check_exception` / `confirm_store` sentinels
//!   into home blocks (§3.3, §4.2),
//! * [`recovery`] — the §3.7 renaming transformation and restartable
//!   sequence support,
//! * [`uninit`] — §3.5 `clear_tag` insertion, and
//! * [`schedule_function`] / [`schedule_program`] — the end-to-end
//!   pipeline.
//!
//! # Example
//!
//! ```
//! use sentinel_core::{schedule_program, SchedulingModel};
//! use sentinel_isa::MachineDesc;
//! use sentinel_prog::examples::figure1;
//!
//! let scheduled = schedule_program(
//!     &figure1(),
//!     &MachineDesc::paper_issue(8),
//!     SchedulingModel::Sentinel,
//! )?;
//! // Speculated loads now carry the speculative modifier.
//! let main = scheduled.entry();
//! assert!(scheduled.block(main).insns.iter().any(|i| i.speculative));
//! # Ok::<(), sentinel_core::ScheduleError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod depgraph;
pub mod list;
pub mod modulo;
pub mod recovery;
pub mod reduction;
pub mod regalloc;
pub mod uninit;

mod models;
mod pipeline;

pub use list::{BlockSchedStats, BlockSchedule};
pub use models::{SchedOptions, SchedulingModel};
pub use pipeline::{
    schedule_function, schedule_program, SchedStats, ScheduleError, ScheduledProgram,
};
