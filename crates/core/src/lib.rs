//! Sentinel scheduling — the paper's primary contribution.
//!
//! This crate implements the compile-time half of *Sentinel Scheduling for
//! VLIW and Superscalar Processors* (Mahlke et al., ASPLOS 1992):
//!
//! * [`depgraph`] — superblock dependence graphs (register, memory,
//!   control, and ordering dependences),
//! * [`reduction`] — the Appendix algorithm: control-dependence removal
//!   per scheduling model plus protected/unprotected marking,
//! * [`list`] — the modified list scheduler that sets speculative
//!   modifiers and inserts `check_exception` / `confirm_store` sentinels
//!   into home blocks (§3.3, §4.2),
//! * [`recovery`] — the §3.7 renaming transformation and restartable
//!   sequence support,
//! * [`uninit`] — §3.5 `clear_tag` insertion, and
//! * [`schedule_function`] / [`schedule_program`] — the end-to-end
//!   pipeline.
//!
//! The pipeline is an explicit pass manager: [`CompileSession`] runs the
//! stages as named [`pass::Pass`]es, timing each run, computing its IR
//! delta, collecting diagnostics, and checking the
//! [`verify_ir`](verify_ir::verify_ir) inter-pass invariants between
//! stages (always in debug builds, and under
//! [`SchedOptions::verify_passes`] in release). [`schedule_function`]
//! is the thin one-call wrapper over it.
//!
//! # Example
//!
//! ```
//! use sentinel_core::{schedule_program, SchedulingModel};
//! use sentinel_isa::MachineDesc;
//! use sentinel_prog::examples::figure1;
//!
//! let scheduled = schedule_program(
//!     &figure1(),
//!     &MachineDesc::paper_issue(8),
//!     SchedulingModel::Sentinel,
//! )?;
//! // Speculated loads now carry the speculative modifier.
//! let main = scheduled.entry();
//! assert!(scheduled.block(main).insns.iter().any(|i| i.speculative));
//! # Ok::<(), sentinel_core::ScheduleError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod depgraph;
pub mod list;
pub mod modulo;
pub mod pass;
pub mod recovery;
pub mod reduction;
pub mod regalloc;
pub mod uninit;
pub mod verify_ir;

mod models;
mod pipeline;
mod session;

pub use list::{BlockSchedStats, BlockSchedule};
pub use models::{SchedOptions, SchedulingModel};
pub use pass::{Pass, PassCtx, PassLog, PassReport, PASS_NAMES};
pub use pipeline::{
    schedule_function, schedule_program, SchedStats, ScheduleError, ScheduledProgram,
};
pub use session::{CompileSession, CompileSessionBuilder, MutationHook};
