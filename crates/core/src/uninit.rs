//! Uninitialized-data handling (paper §3.5).
//!
//! A register that is read before being written may carry a stale
//! exception tag from a previous context, which would trip a spurious
//! exception at its first (sentinel-checked) use. The compiler performs
//! live-variable analysis and inserts `clear_tag` instructions for every
//! register live into the function entry.

use sentinel_isa::Insn;
use sentinel_prog::cfg::Cfg;
use sentinel_prog::liveness::{Liveness, RegSetExt};
use sentinel_prog::Function;

/// Inserts `clear_tag` instructions at the top of the entry block for all
/// registers live into the function. Returns how many were inserted.
pub fn insert_clear_tags(func: &mut Function) -> usize {
    let cfg = Cfg::build(func);
    let lv = Liveness::compute(func, &cfg);
    let entry = func.entry();
    let regs = lv.live_in(entry).iter_sorted();
    for (k, r) in regs.iter().enumerate() {
        func.insert_insn(entry, k, Insn::clear_tag(*r));
    }
    regs.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sentinel_isa::{Opcode, Reg};
    use sentinel_prog::{validate, ProgramBuilder};

    #[test]
    fn clears_exactly_the_live_in_registers() {
        let mut b = ProgramBuilder::new("f");
        b.block("e");
        b.push(Insn::addi(Reg::int(2), Reg::int(1), 1)); // r1 live-in
        b.push(Insn::fst(Reg::fp(3), Reg::int(2), 0)); // f3 live-in, r2 defined
        b.push(Insn::halt());
        let mut f = b.finish();
        let n = insert_clear_tags(&mut f);
        assert_eq!(n, 2);
        let e = f.entry();
        let insns = &f.block(e).insns;
        assert_eq!(insns[0].op, Opcode::ClearTag);
        assert_eq!(insns[0].dest, Some(Reg::int(1)));
        assert_eq!(insns[1].op, Opcode::ClearTag);
        assert_eq!(insns[1].dest, Some(Reg::fp(3)));
        assert!(validate(&f).is_empty());
    }

    #[test]
    fn no_live_ins_no_insertions() {
        let mut b = ProgramBuilder::new("f");
        b.block("e");
        b.push(Insn::li(Reg::int(1), 3));
        b.push(Insn::addi(Reg::int(2), Reg::int(1), 1));
        b.push(Insn::halt());
        let mut f = b.finish();
        assert_eq!(insert_clear_tags(&mut f), 0);
    }

    #[test]
    fn loop_carried_live_in_cleared() {
        let mut b = ProgramBuilder::new("f");
        let head = b.block("head");
        let done = b.block("done");
        b.switch_to(head);
        b.push(Insn::addi(Reg::int(1), Reg::int(1), -1));
        b.push(Insn::branch(Opcode::Bne, Reg::int(1), Reg::ZERO, head));
        b.switch_to(done);
        b.push(Insn::halt());
        let mut f = b.finish();
        assert_eq!(insert_clear_tags(&mut f), 1);
        assert_eq!(f.block(head).insns[0].op, Opcode::ClearTag);
    }
}
