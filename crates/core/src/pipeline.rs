//! The end-to-end scheduling pipeline: errors, statistics, results, and
//! thin convenience wrappers.
//!
//! The pipeline itself lives in [`CompileSession`](crate::CompileSession)
//! — an explicit pass manager that times, diffs, and verifies every
//! stage. [`schedule_function`] and [`schedule_program`] are the
//! one-call wrappers over it for callers that do not need the pass log.

use std::collections::HashMap;

use sentinel_isa::{BlockId, InsnId, MachineDesc};
use sentinel_prog::{Function, ValidateError};

use crate::list::{BlockSchedStats, BlockSchedule};
use crate::models::{SchedOptions, SchedulingModel};
use crate::session::CompileSession;

/// Errors from [`schedule_function`].
#[derive(Debug, Clone, PartialEq)]
pub enum ScheduleError {
    /// The input function is structurally invalid.
    InvalidInput(Vec<ValidateError>),
    /// The input already contains speculative modifiers or sentinel
    /// opcodes; the scheduler requires clean sequential code.
    NotSequentialInput(InsnId),
    /// A speculative store could not be kept within `N − 1` stores of its
    /// confirm (paper §4.2). Internal to the pipeline's retry loop; only
    /// surfaces if pinning fails to converge.
    StoreSeparation(Vec<InsnId>),
    /// The inter-pass IR verifier found violations after the named pass
    /// (see [`verify_ir`](crate::verify_ir::verify_ir)).
    Verify {
        /// The pass after which the violations were detected.
        after: &'static str,
        /// The violations, in check order.
        violations: Vec<String>,
    },
    /// Scheduler invariant violation (a bug).
    Internal(String),
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleError::InvalidInput(errs) => {
                write!(f, "invalid input function ({} error(s)", errs.len())?;
                for e in errs.iter().take(3) {
                    write!(f, "; {e}")?;
                }
                if errs.len() > 3 {
                    write!(f, "; …")?;
                }
                write!(f, ")")
            }
            ScheduleError::NotSequentialInput(id) => {
                write!(f, "input is not sequential code at {id}")
            }
            ScheduleError::StoreSeparation(ids) => {
                write!(f, "store separation constraint unsatisfiable for {ids:?}")
            }
            ScheduleError::Verify { after, violations } => {
                write!(
                    f,
                    "IR verification failed after pass '{after}' ({} violation(s)",
                    violations.len()
                )?;
                for v in violations.iter().take(3) {
                    write!(f, "; {v}")?;
                }
                if violations.len() > 3 {
                    write!(f, "; …")?;
                }
                write!(f, ")")
            }
            ScheduleError::Internal(msg) => write!(f, "internal scheduler error: {msg}"),
        }
    }
}

impl std::error::Error for ScheduleError {}

/// Aggregate statistics over a scheduled function.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Blocks scheduled.
    pub blocks: usize,
    /// Instructions marked speculative.
    pub speculated: usize,
    /// `check_exception` sentinels inserted.
    pub checks_inserted: usize,
    /// `confirm_store` sentinels inserted.
    pub confirms_inserted: usize,
    /// Stores pinned non-speculative by the §4.2 separation constraint.
    pub pinned_stores: usize,
    /// Self-overwrites split by the §3.7 renaming transformation.
    pub renames: usize,
    /// `clear_tag` instructions inserted (§3.5).
    pub clear_tags: usize,
    /// Virtual registers assigned to architectural registers (§3.7
    /// allocator support; only with [`SchedOptions::allocate`]).
    pub regs_assigned: usize,
    /// Virtual registers spilled via tag-preserving instructions.
    pub regs_spilled: usize,
}

/// A scheduled program: the rewritten function plus per-block schedules.
///
/// `ScheduledProgram` is `Send + Sync` (asserted below): the evaluation
/// grid engine schedules and simulates cells on worker threads, and a
/// scheduled program may cross or be shared between them.
#[derive(Debug, Clone)]
pub struct ScheduledProgram {
    /// The scheduled function (same block ids/labels/layout as the input;
    /// block contents reordered, sentinels inserted).
    pub func: Function,
    /// Per-block schedule details (issue cycles, per-block stats).
    pub blocks: HashMap<BlockId, BlockSchedule>,
    /// Aggregate statistics.
    pub stats: SchedStats,
}

// Compile-time guarantee that scheduled programs can cross threads
// (measurement inputs of the parallel evaluation grid).
const _: () = {
    const fn thread_safe<T: Send + Sync>() {}
    thread_safe::<ScheduledProgram>();
    thread_safe::<SchedStats>();
};

/// Schedules every layout block of `func` as a superblock under the given
/// machine description and options.
///
/// This is the one-call wrapper over
/// [`CompileSession`](crate::CompileSession); build a session directly to
/// observe per-pass timing, IR deltas, and diagnostics.
///
/// # Errors
///
/// See [`ScheduleError`].
///
/// # Examples
///
/// ```
/// use sentinel_core::{schedule_function, SchedOptions, SchedulingModel};
/// use sentinel_isa::MachineDesc;
/// use sentinel_prog::examples::figure1;
///
/// let f = figure1();
/// let mdes = MachineDesc::paper_issue(8);
/// let s = schedule_function(&f, &mdes, &SchedOptions::new(SchedulingModel::Sentinel))?;
/// assert!(s.stats.speculated > 0);
/// # Ok::<(), sentinel_core::ScheduleError>(())
/// ```
pub fn schedule_function(
    func: &Function,
    mdes: &MachineDesc,
    opts: &SchedOptions,
) -> Result<ScheduledProgram, ScheduleError> {
    CompileSession::for_function(func)
        .mdes(mdes)
        .options(opts.clone())
        .build()
        .run()
}

pub(crate) fn accumulate(total: &mut SchedStats, b: &BlockSchedStats) {
    total.blocks += 1;
    total.speculated += b.speculated;
    total.checks_inserted += b.checks_inserted;
    total.confirms_inserted += b.confirms_inserted;
}

/// Convenience wrapper: schedules with default options for a model and
/// returns just the rewritten function.
///
/// # Errors
///
/// See [`ScheduleError`].
pub fn schedule_program(
    func: &Function,
    mdes: &MachineDesc,
    model: SchedulingModel,
) -> Result<Function, ScheduleError> {
    schedule_function(func, mdes, &SchedOptions::new(model)).map(|s| s.func)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sentinel_isa::{Insn, LatencyTable, Opcode, Reg};
    use sentinel_prog::examples::{figure1, figure3};
    use sentinel_prog::{validate, ProgramBuilder};
    use std::collections::HashSet;

    fn unit(width: usize) -> MachineDesc {
        MachineDesc::builder()
            .issue_width(width)
            .latencies(LatencyTable::unit())
            .build()
    }

    #[test]
    fn schedules_all_models_on_figure1() {
        let f = figure1();
        for model in SchedulingModel::all() {
            let s = schedule_function(&f, &unit(8), &SchedOptions::new(model))
                .unwrap_or_else(|e| panic!("{model}: {e}"));
            assert!(validate(&s.func).is_empty());
            assert_eq!(s.stats.blocks, 3);
        }
    }

    #[test]
    fn sentinel_beats_restricted_on_loaded_branch() {
        // A branch gated by a load: the canonical shape where restricted
        // percolation loses (it cannot start the dependent load early).
        let mut b = ProgramBuilder::new("lb");
        let e = b.block("e");
        let t = b.block("t");
        b.switch_to(e);
        b.push(Insn::ld_w(Reg::int(5), Reg::int(3), 0));
        b.push(Insn::branch(Opcode::Beq, Reg::int(5), Reg::ZERO, t));
        b.push(Insn::ld_w(Reg::int(1), Reg::int(2), 0));
        b.push(Insn::addi(Reg::int(4), Reg::int(1), 1));
        b.push(Insn::st_w(Reg::int(4), Reg::int(2), 8));
        b.push(Insn::halt());
        b.switch_to(t);
        b.push(Insn::halt());
        let f = b.finish();
        let mdes = MachineDesc::paper_issue(8);
        let r = schedule_function(
            &f,
            &mdes,
            &SchedOptions::new(SchedulingModel::RestrictedPercolation),
        )
        .unwrap();
        let s =
            schedule_function(&f, &mdes, &SchedOptions::new(SchedulingModel::Sentinel)).unwrap();
        let main = f.entry();
        assert!(
            s.blocks[&main].stats.cycles < r.blocks[&main].stats.cycles,
            "sentinel {} vs restricted {}",
            s.blocks[&main].stats.cycles,
            r.blocks[&main].stats.cycles
        );
    }

    #[test]
    fn figure3_recovery_constraints() {
        let f = figure3();
        let s = schedule_function(
            &f,
            &unit(8),
            &SchedOptions::new(SchedulingModel::Sentinel).with_recovery(),
        )
        .unwrap();
        assert!(validate(&s.func).is_empty());
        // The self-increment E was renamed.
        assert_eq!(s.stats.renames, 1);
        let main = f.entry();
        let insns = &s.func.block(main).insns;
        // A restore move exists and comes after the store F (the paper's
        // final schedule places I after F… our constraint only requires it
        // after the sentinels; check presence and that the jsr stayed first).
        assert!(insns.iter().any(|i| i.op == Opcode::Mov));
        assert_eq!(insns[0].op, Opcode::Jsr, "nothing crosses the jsr barrier");
        // D (ld r1) may not move above the jsr but may move above the branch.
        let d = insns
            .iter()
            .position(|i| i.op == Opcode::LdW && i.dest == Some(Reg::int(1)))
            .unwrap();
        let c = insns.iter().position(|i| i.op == Opcode::Beq).unwrap();
        assert!(d > 0);
        assert!(d < c, "D speculated above C");
        assert!(insns[d].speculative);
    }

    #[test]
    fn rejects_invalid_input() {
        let f = Function::new("empty");
        assert!(matches!(
            schedule_function(&f, &unit(2), &SchedOptions::new(SchedulingModel::Sentinel)),
            Err(ScheduleError::InvalidInput(_))
        ));
    }

    #[test]
    fn rejects_prescheduled_input() {
        let mut b = ProgramBuilder::new("f");
        b.block("e");
        b.push(Insn::li(Reg::int(1), 1).speculated());
        b.push(Insn::halt());
        let f = b.finish();
        assert!(matches!(
            schedule_function(&f, &unit(2), &SchedOptions::new(SchedulingModel::Sentinel)),
            Err(ScheduleError::NotSequentialInput(_))
        ));
    }

    #[test]
    fn rejects_input_with_sentinel_opcodes() {
        // A sentinel opcode (not just a speculative modifier) also makes
        // the input non-sequential — and the error names the instruction.
        let mut b = ProgramBuilder::new("f");
        b.block("e");
        b.push(Insn::li(Reg::int(1), 1));
        b.push(Insn::check_exception(Reg::int(1)));
        b.push(Insn::halt());
        let f = b.finish();
        let check_id = f.block(f.entry()).insns[1].id;
        match schedule_function(&f, &unit(2), &SchedOptions::new(SchedulingModel::Sentinel)) {
            Err(ScheduleError::NotSequentialInput(id)) => assert_eq!(id, check_id),
            other => panic!("expected NotSequentialInput, got {other:?}"),
        }
    }

    #[test]
    fn invalid_input_display_names_the_errors() {
        let f = Function::new("empty");
        let err = schedule_function(&f, &unit(2), &SchedOptions::new(SchedulingModel::Sentinel))
            .unwrap_err();
        let msg = err.to_string();
        // Not just a count: the first validation errors are spelled out.
        assert!(msg.contains("1 error(s)"), "{msg}");
        assert!(msg.contains("no blocks"), "{msg}");
    }

    #[test]
    fn invalid_input_display_truncates_long_error_lists() {
        let errs = vec![ValidateError::Empty; 5];
        let msg = ScheduleError::InvalidInput(errs).to_string();
        assert!(msg.contains("5 error(s)"), "{msg}");
        assert!(msg.contains("…"), "{msg}");
        // Only the first three are spelled out.
        assert_eq!(msg.matches("no blocks").count(), 3, "{msg}");
    }

    #[test]
    fn clear_uninitialized_inserts_tags() {
        let f = figure1(); // r2, r4 live-in
        let s = schedule_function(
            &f,
            &unit(8),
            &SchedOptions::new(SchedulingModel::Sentinel).with_clear_uninitialized(),
        )
        .unwrap();
        assert!(s.stats.clear_tags >= 2);
        assert!(s
            .func
            .block(s.func.entry())
            .insns
            .iter()
            .any(|i| i.op == Opcode::ClearTag));
    }

    #[test]
    fn store_separation_pinning_converges() {
        // Many stores above a branch with a tiny buffer: the pipeline pins
        // as needed and still produces a valid schedule.
        let mut b = ProgramBuilder::new("f");
        let e = b.block("e");
        let t = b.block("t");
        b.switch_to(e);
        b.push(Insn::branch(Opcode::Beq, Reg::int(1), Reg::ZERO, t));
        for k in 0..6 {
            b.push(Insn::st_w(Reg::int(2), Reg::int(3), 8 * k));
        }
        b.push(Insn::halt());
        b.switch_to(t);
        b.push(Insn::halt());
        let f = b.finish();
        let mdes = MachineDesc::builder()
            .issue_width(8)
            .store_buffer_size(2)
            .latencies(LatencyTable::unit())
            .build();
        let s = schedule_function(
            &f,
            &mdes,
            &SchedOptions::new(SchedulingModel::SentinelStores),
        )
        .unwrap();
        assert!(validate(&s.func).is_empty());
        // Every confirm index respects N-1 = 1.
        for insn in &s.func.block(f.entry()).insns {
            if insn.op == Opcode::ConfirmStore {
                assert!(insn.imm <= 1, "confirm index {} too large", insn.imm);
            }
        }
    }

    #[test]
    fn ids_remain_unique_after_scheduling() {
        let f = figure1();
        let s = schedule_function(
            &f,
            &unit(8),
            &SchedOptions::new(SchedulingModel::SentinelStores),
        )
        .unwrap();
        let mut seen = std::collections::HashSet::new();
        for b in s.func.blocks() {
            for i in &b.insns {
                assert!(seen.insert(i.id), "duplicate id {}", i.id);
            }
        }
    }

    #[test]
    fn original_ids_preserved() {
        // The simulator compares trap PCs against reference ids, so the
        // scheduler must not renumber original instructions.
        let f = figure1();
        let orig_ids: HashSet<_> = f
            .blocks()
            .flat_map(|b| b.insns.iter().map(|i| i.id))
            .collect();
        let s =
            schedule_function(&f, &unit(8), &SchedOptions::new(SchedulingModel::Sentinel)).unwrap();
        let new_ids: HashSet<_> = s
            .func
            .blocks()
            .flat_map(|b| b.insns.iter().map(|i| i.id))
            .collect();
        assert!(orig_ids.is_subset(&new_ids));
    }
}
