//! Dependence-graph reduction and protected/unprotected marking — the
//! paper's Appendix algorithm.
//!
//! Reduction removes control dependences `BR → I` to enable speculative
//! code motion, subject to:
//!
//! 1. the scheduling model allows `I`'s opcode above branches at all
//!    ([`SchedulingModel::may_speculate`]),
//! 2. restriction (1) of §2.1: `dest(I)` is not live when `BR` is taken
//!    (not in the live-in set of `BR`'s target),
//! 3. a safety pin for values dead within their own home block (a
//!    redefinition before any use would silently discard a deferred
//!    exception tag), and
//! 4. with recovery enabled, the static half of §3.7 restriction 4: an
//!    instruction whose destination is an input of earlier instructions
//!    may not be hoisted above the branch separating it from those
//!    readers (their inputs must stay intact up to their sentinels).
//!
//! The same pass computes the *unprotected* marking: a potential
//! exception-causing instruction delegates its sentinel duty to the first
//! use of its destination within its home block (shared sentinel); an
//! instruction with no such use is unprotected and receives an explicit
//! sentinel if speculated (§3.1).

use sentinel_isa::BlockId;
use sentinel_prog::liveness::Liveness;
use sentinel_prog::Function;

use crate::depgraph::DepGraph;
#[cfg(test)]
use crate::depgraph::DepKind;
use crate::models::{SchedOptions, SchedulingModel};

/// Result of reduction over one block's dependence graph.
#[derive(Debug, Clone)]
pub struct Reduction {
    /// Per original node: needs an explicit sentinel if speculated.
    pub unprotected: Vec<bool>,
    /// Per original node: at least one control dependence was removed
    /// (the node *may* move above some branch).
    pub speculatable: Vec<bool>,
    /// Per original node: pinned by the dead-value safety rule (kept
    /// non-speculative).
    pub pinned: Vec<bool>,
    /// Number of control dependences removed.
    pub removed_edges: usize,
}

/// First event for `reg` in positions `start..=end_inclusive`: `Use(pos)`
/// or `Redef(pos)`, scanning in program order.
#[derive(Debug, PartialEq, Eq)]
enum FirstEvent {
    Use(usize),
    Redef(usize),
    None,
}

fn first_event(
    g: &DepGraph,
    reg: sentinel_isa::Reg,
    start: usize,
    end_inclusive: usize,
) -> FirstEvent {
    for u in start..=end_inclusive.min(g.original_len.saturating_sub(1)) {
        let insn = &g.nodes[u].insn;
        if insn.uses().any(|r| r == reg) {
            return FirstEvent::Use(u);
        }
        if insn.def() == Some(reg) {
            return FirstEvent::Redef(u);
        }
    }
    FirstEvent::None
}

/// Runs reduction in place on `g` (the graph of `block` in `func`),
/// removing control dependences and computing the unprotected marking.
pub fn reduce(
    g: &mut DepGraph,
    func: &Function,
    block: BlockId,
    liveness: &Liveness,
    opts: &SchedOptions,
) -> Reduction {
    reduce_with_pins(g, func, block, liveness, opts, &Default::default())
}

/// Like [`reduce`], with an extra set of instruction ids that must stay
/// non-speculative: recovery-renaming restore moves, unrenamable
/// self-overwrites, and stores pinned by the §4.2 separation-constraint
/// retry loop.
pub fn reduce_with_pins(
    g: &mut DepGraph,
    func: &Function,
    block: BlockId,
    liveness: &Liveness,
    opts: &SchedOptions,
    extra_pinned: &std::collections::HashSet<sentinel_isa::InsnId>,
) -> Reduction {
    let _ = func;
    let n = g.original_len;
    let mut unprotected = vec![false; n];
    let mut duty = vec![false; n];
    let mut pinned = vec![false; n];
    let mut speculatable = vec![false; n];
    let mut removed = 0usize;
    let _ = block;
    #[allow(clippy::needless_range_loop)]
    for i in 0..n {
        if extra_pinned.contains(&g.nodes[i].insn.id) {
            pinned[i] = true;
        }
    }

    // --- protected/unprotected marking (Appendix) ----------------------
    for i in 0..n {
        let insn = g.nodes[i].insn.clone();
        let carrier = duty[i];
        let trapping = insn.op.can_trap();
        if !(carrier || trapping) {
            continue;
        }
        match insn.def() {
            None => {
                // Stores (and other dest-less trap sources): always
                // unprotected (§4.2); their sentinel is `confirm_store`.
                unprotected[i] = true;
            }
            Some(d) => {
                let re = g.region_end(i, opts.recovery);
                // Uses *at* the delimiter count ("at or before the first
                // succeeding control instruction").
                let end = if re < n { re } else { n.saturating_sub(1) };
                match first_event(g, d, i + 1, end) {
                    FirstEvent::Use(u) => {
                        // Shared sentinel: the use carries the duty on.
                        duty[u] = true;
                    }
                    FirstEvent::Redef(_) => {
                        // Dead within the home block: a speculative fault
                        // would be lost when the redefinition clears the
                        // tag. Pin the instruction non-speculative.
                        pinned[i] = true;
                    }
                    FirstEvent::None => {
                        unprotected[i] = true;
                    }
                }
            }
        }
    }

    // --- control-dependence removal -------------------------------------
    let branches = g.branch_positions();
    for i in 0..n {
        let insn = g.nodes[i].insn.clone();
        if pinned[i] || !opts.model.may_speculate(insn.op) {
            continue;
        }
        for &b in branches.iter().filter(|&&b| b < i) {
            // Boosting (§2.3): an instruction may cross at most `levels`
            // branches — the hardware has that many shadow levels.
            if let Some(levels) = opts.model.boost_levels() {
                let crossed = branches.iter().filter(|&&x| b <= x && x < i).count();
                if crossed > levels as usize {
                    continue;
                }
            }
            let target = g.nodes[b].insn.target.expect("branch target");
            // Restriction (1): dest not live when the branch is taken.
            // (Boosting enforces neither restriction: the shadow register
            // file discards wrong-path writes.)
            if let Some(d) = insn.def() {
                if opts.model.enforces_liveness_restriction()
                    && liveness.live_in(target).contains(&d)
                {
                    continue;
                }
                // Recovery restriction 4 (static half): readers of `d`
                // between the branch and `i` need `d`'s old value to
                // survive until their sentinels fire.
                if opts.recovery {
                    let has_reader = (b + 1..i).any(|r| g.nodes[r].insn.uses().any(|s| s == d));
                    if has_reader {
                        continue;
                    }
                }
            } else if !opts.model.speculative_stores() && insn.op.is_store() {
                continue;
            }
            if g.remove_control_edge(b, i) {
                speculatable[i] = true;
                removed += 1;
            }
        }
    }
    let _ = SchedulingModel::all();

    Reduction {
        unprotected,
        speculatable,
        pinned,
        removed_edges: removed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sentinel_isa::{Insn, Opcode, Reg};
    use sentinel_prog::cfg::Cfg;
    use sentinel_prog::examples::figure1;
    use sentinel_prog::ProgramBuilder;

    fn setup(f: &Function) -> (Cfg, Liveness) {
        let cfg = Cfg::build(f);
        let lv = Liveness::compute(f, &cfg);
        (cfg, lv)
    }

    fn reduce_entry(f: &Function, opts: &SchedOptions) -> (DepGraph, Reduction) {
        let (_, lv) = setup(f);
        let e = f.entry();
        let mut g = DepGraph::build(
            f.block(e),
            &sentinel_isa::MachineDesc::paper_issue(1),
            opts.recovery,
        );
        let r = reduce(&mut g, f, e, &lv, opts);
        (g, r)
    }

    #[test]
    fn figure1_unprotected_marking_matches_paper() {
        // Paper §3.4: "instructions E and F are identified as unprotected,
        // since they are the last uses of the potential trap-causing
        // instructions B and C".
        let f = figure1();
        let opts = SchedOptions::new(SchedulingModel::Sentinel);
        let (_, r) = reduce_entry(&f, &opts);
        // Positions: 0=A(beq) 1=B(ld) 2=C(ld) 3=D(addi) 4=E(addi) 5=F(st) 6=jump
        assert!(!r.unprotected[1], "B protected: D uses r1");
        assert!(!r.unprotected[2], "C protected: E uses r3");
        assert!(!r.unprotected[3], "D protected: F uses r4");
        assert!(r.unprotected[4], "E unprotected (last use of C's chain)");
        assert!(r.unprotected[5], "F (store) unprotected");
    }

    #[test]
    fn sentinel_model_removes_load_control_deps() {
        let f = figure1();
        let opts = SchedOptions::new(SchedulingModel::Sentinel);
        let (g, r) = reduce_entry(&f, &opts);
        // B (ld, pos 1) may move above A (beq, pos 0).
        assert!(r.speculatable[1]);
        assert!(!g.preds(1).iter().any(|e| e.kind == DepKind::Control));
        // F (store) may NOT in model S.
        assert!(!r.speculatable[5]);
        assert!(g.preds(5).iter().any(|e| e.kind == DepKind::Control));
        assert!(r.removed_edges >= 4);
    }

    #[test]
    fn restricted_model_keeps_trapping_deps() {
        let f = figure1();
        let opts = SchedOptions::new(SchedulingModel::RestrictedPercolation);
        let (g, r) = reduce_entry(&f, &opts);
        assert!(!r.speculatable[1], "loads stay below branches");
        assert!(g.preds(1).iter().any(|e| e.kind == DepKind::Control));
        // D (addi, non-trapping, dest r4 not live at l1) may move.
        assert!(r.speculatable[3]);
    }

    #[test]
    fn store_model_removes_store_control_deps() {
        let f = figure1();
        let opts = SchedOptions::new(SchedulingModel::SentinelStores);
        let (_, r) = reduce_entry(&f, &opts);
        assert!(r.speculatable[5], "stores may move in model T");
        assert!(r.unprotected[5]);
    }

    #[test]
    fn liveness_blocks_hoisting_when_dest_live_at_target() {
        // beq -> target uses r5; r5 = ... after the branch cannot hoist.
        let mut b = ProgramBuilder::new("f");
        let e = b.block("e");
        let t = b.block("t");
        b.switch_to(e);
        b.push(Insn::branch(Opcode::Beq, Reg::int(1), Reg::ZERO, t));
        b.push(Insn::addi(Reg::int(5), Reg::int(2), 1));
        b.push(Insn::halt());
        b.switch_to(t);
        b.push(Insn::st_w(Reg::int(5), Reg::int(6), 0));
        b.push(Insn::halt());
        let f = b.finish();
        let opts = SchedOptions::new(SchedulingModel::Sentinel);
        let (g, r) = reduce_entry(&f, &opts);
        assert!(!r.speculatable[1], "r5 live at taken target");
        assert!(g.preds(1).iter().any(|e| e.kind == DepKind::Control));
    }

    #[test]
    fn dead_value_in_region_pins_trapping_insn() {
        // ld r1 ; r1 = 7 (redef, no use) ; branch...
        let mut b = ProgramBuilder::new("f");
        let e = b.block("e");
        let t = b.block("t");
        b.switch_to(e);
        b.push(Insn::branch(Opcode::Beq, Reg::int(9), Reg::ZERO, t));
        b.push(Insn::ld_w(Reg::int(1), Reg::int(2), 0));
        b.push(Insn::li(Reg::int(1), 7));
        b.push(Insn::halt());
        b.switch_to(t);
        b.push(Insn::halt());
        let f = b.finish();
        let opts = SchedOptions::new(SchedulingModel::Sentinel);
        let (_, r) = reduce_entry(&f, &opts);
        assert!(r.pinned[1], "dead load pinned to stay non-speculative");
        assert!(!r.speculatable[1]);
    }

    #[test]
    fn duty_chain_delegates_to_last_use() {
        // ld r1 ; r2 = r1+1 ; r3 = r2+1 ; branch. Chain: ld -> addi -> addi.
        let mut b = ProgramBuilder::new("f");
        let e = b.block("e");
        let t = b.block("t");
        b.switch_to(e);
        b.push(Insn::branch(Opcode::Beq, Reg::int(9), Reg::ZERO, t));
        b.push(Insn::ld_w(Reg::int(1), Reg::int(2), 0)); // 1
        b.push(Insn::addi(Reg::int(3), Reg::int(1), 1)); // 2: uses r1
        b.push(Insn::addi(Reg::int(4), Reg::int(3), 1)); // 3: uses r3
        b.push(Insn::halt());
        b.switch_to(t);
        b.push(Insn::halt());
        let f = b.finish();
        let opts = SchedOptions::new(SchedulingModel::Sentinel);
        let (_, r) = reduce_entry(&f, &opts);
        assert!(!r.unprotected[1], "ld protected by its use");
        assert!(!r.unprotected[2], "first addi protected by second");
        assert!(r.unprotected[3], "chain end unprotected");
    }

    #[test]
    fn branch_use_serves_as_sentinel() {
        // ld r1 ; beq r1, r0, t : the branch is the use.
        let mut b = ProgramBuilder::new("f");
        let e = b.block("e");
        let t = b.block("t");
        b.switch_to(e);
        b.push(Insn::ld_w(Reg::int(1), Reg::int(2), 0)); // 0
        b.push(Insn::branch(Opcode::Beq, Reg::int(1), Reg::ZERO, t)); // 1
        b.push(Insn::halt());
        b.switch_to(t);
        b.push(Insn::halt());
        let f = b.finish();
        let opts = SchedOptions::new(SchedulingModel::Sentinel);
        let (_, r) = reduce_entry(&f, &opts);
        assert!(!r.unprotected[0], "the branch reads r1 and is the sentinel");
    }

    #[test]
    fn recovery_restriction4_blocks_hoisting_over_reader() {
        // beq ; r9 = r2+1 (reads r2) ; r2 = mem (writes r2, wants to hoist)
        // Under recovery the writer cannot cross the branch because the
        // reader's input must survive to its sentinel.
        let mut b = ProgramBuilder::new("f");
        let e = b.block("e");
        let t = b.block("t");
        b.switch_to(e);
        b.push(Insn::branch(Opcode::Beq, Reg::int(1), Reg::ZERO, t));
        b.push(Insn::addi(Reg::int(9), Reg::int(2), 1));
        b.push(Insn::ld_w(Reg::int(2), Reg::int(3), 0));
        b.push(Insn::halt());
        b.switch_to(t);
        b.push(Insn::halt());
        let f = b.finish();

        let plain = SchedOptions::new(SchedulingModel::Sentinel);
        let (_, r1) = reduce_entry(&f, &plain);
        assert!(r1.speculatable[2], "without recovery the load may hoist");

        let rec = SchedOptions::new(SchedulingModel::Sentinel).with_recovery();
        let (_, r2) = reduce_entry(&f, &rec);
        assert!(!r2.speculatable[2], "recovery keeps the writer below");
    }
}
