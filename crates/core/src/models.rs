//! Scheduling models (paper §2 and §3).

use std::fmt;

use sentinel_isa::Opcode;

/// The four compared scheduling models.
///
/// The derived order follows the paper's presentation order (R < G < S
/// < T < B) so models can key ordered maps and sort deterministically
/// in evaluation-grid plans and reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SchedulingModel {
    /// **R** — restricted percolation (§2.2): both restrictions enforced;
    /// only provably non-trapping instructions may move above branches.
    RestrictedPercolation,
    /// **G** — general percolation (§2.4): trapping instructions move
    /// above branches as *silent* versions; exceptions may be lost. Stores
    /// never move.
    GeneralPercolation,
    /// **S** — sentinel scheduling (§3): full speculation of non-store
    /// instructions with precise exception detection via exception tags
    /// and sentinels.
    Sentinel,
    /// **T** — sentinel scheduling with speculative stores (§4): adds
    /// store motion above branches via the probationary store buffer and
    /// `confirm_store` sentinels.
    SentinelStores,
    /// **B** — instruction boosting (§2.3, Smith/Lam/Horowitz): results of
    /// instructions moved above branches are buffered in shadow register
    /// files and shadow store buffers until the branches resolve. Neither
    /// scheduling restriction applies, but an instruction may cross at
    /// most this many branches (the hardware provides that many shadow
    /// levels).
    Boosting(u8),
}

impl SchedulingModel {
    /// Whether this model may move `op` above a branch at all
    /// (restriction (2) handling; restriction (1) — destination liveness —
    /// is checked separately).
    pub fn may_speculate(self, op: Opcode) -> bool {
        if !op.may_be_speculative() {
            return false;
        }
        match self {
            SchedulingModel::RestrictedPercolation => !op.can_trap(),
            SchedulingModel::GeneralPercolation | SchedulingModel::Sentinel => !op.is_store(),
            SchedulingModel::SentinelStores => true,
            SchedulingModel::Boosting(levels) => levels > 0,
        }
    }

    /// Whether the model requires sentinel bookkeeping (exception tags,
    /// `check_exception`, `confirm_store`).
    pub fn uses_sentinels(self) -> bool {
        matches!(
            self,
            SchedulingModel::Sentinel | SchedulingModel::SentinelStores
        )
    }

    /// Whether stores may move above branches (via probationary store
    /// buffers under model T, or shadow store buffers under boosting).
    pub fn speculative_stores(self) -> bool {
        matches!(
            self,
            SchedulingModel::SentinelStores | SchedulingModel::Boosting(_)
        )
    }

    /// The boosting level limit, if this is the boosting model.
    pub fn boost_levels(self) -> Option<u8> {
        match self {
            SchedulingModel::Boosting(n) => Some(n),
            _ => None,
        }
    }

    /// Whether the model enforces restriction (1) — destination liveness
    /// at branch targets. Boosting does not (§2.3 "the scheduler enforces
    /// neither restriction"): the shadow register file undoes wrong-path
    /// writes in hardware.
    pub fn enforces_liveness_restriction(self) -> bool {
        !matches!(self, SchedulingModel::Boosting(_))
    }

    /// All models, in the paper's presentation order.
    pub fn all() -> [SchedulingModel; 4] {
        [
            SchedulingModel::RestrictedPercolation,
            SchedulingModel::GeneralPercolation,
            SchedulingModel::Sentinel,
            SchedulingModel::SentinelStores,
        ]
    }

    /// The single-letter tag used in the paper's figures.
    pub fn tag(self) -> &'static str {
        match self {
            SchedulingModel::RestrictedPercolation => "R",
            SchedulingModel::GeneralPercolation => "G",
            SchedulingModel::Sentinel => "S",
            SchedulingModel::SentinelStores => "T",
            SchedulingModel::Boosting(_) => "B",
        }
    }
}

impl fmt::Display for SchedulingModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedulingModel::RestrictedPercolation => f.write_str("restricted percolation"),
            SchedulingModel::GeneralPercolation => f.write_str("general percolation"),
            SchedulingModel::Sentinel => f.write_str("sentinel scheduling"),
            SchedulingModel::SentinelStores => {
                f.write_str("sentinel scheduling with speculative stores")
            }
            SchedulingModel::Boosting(n) => write!(f, "instruction boosting ({n} level(s))"),
        }
    }
}

/// Scheduler options.
#[derive(Debug, Clone)]
pub struct SchedOptions {
    /// The scheduling model.
    pub model: SchedulingModel,
    /// Enforce the restartable-sequence constraints of §3.7 so that every
    /// signaled exception can be recovered by re-execution.
    pub recovery: bool,
    /// Insert `clear_tag` instructions for registers live into the entry
    /// block (§3.5 uninitialized-data handling).
    pub clear_uninitialized: bool,
    /// Run register allocation after scheduling, mapping
    /// renaming-introduced virtual registers back to architectural ones
    /// (§3.7 "Register Allocator Support"), spilling with the
    /// tag-preserving instructions when needed.
    pub allocate: bool,
    /// Run the inter-pass IR verifier between compiler passes even in
    /// release builds (debug builds always verify). Surfaced as the
    /// `--verify-passes` flag on the CLI and the reproduction driver.
    pub verify_passes: bool,
}

impl SchedOptions {
    /// Options for a model with recovery and uninitialized-tag clearing
    /// disabled (the paper's §5 measurement configuration).
    pub fn new(model: SchedulingModel) -> SchedOptions {
        SchedOptions {
            model,
            recovery: false,
            clear_uninitialized: false,
            allocate: false,
            verify_passes: false,
        }
    }

    /// Enables post-scheduling register allocation (§3.7).
    pub fn with_allocation(mut self) -> Self {
        self.allocate = true;
        self
    }

    /// Enables the §3.7 recovery constraints.
    pub fn with_recovery(mut self) -> Self {
        self.recovery = true;
        self
    }

    /// Enables §3.5 uninitialized-tag clearing.
    pub fn with_clear_uninitialized(mut self) -> Self {
        self.clear_uninitialized = true;
        self
    }

    /// Enables release-build inter-pass IR verification.
    pub fn with_verify_passes(mut self) -> Self {
        self.verify_passes = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn restricted_blocks_trapping_ops() {
        let m = SchedulingModel::RestrictedPercolation;
        assert!(m.may_speculate(Opcode::Add));
        assert!(!m.may_speculate(Opcode::LdW));
        assert!(!m.may_speculate(Opcode::Div));
        assert!(!m.may_speculate(Opcode::FAdd));
        assert!(!m.may_speculate(Opcode::StW));
    }

    #[test]
    fn general_and_sentinel_allow_trapping_but_not_stores() {
        for m in [
            SchedulingModel::GeneralPercolation,
            SchedulingModel::Sentinel,
        ] {
            assert!(m.may_speculate(Opcode::LdW));
            assert!(m.may_speculate(Opcode::Div));
            assert!(m.may_speculate(Opcode::FDiv));
            assert!(!m.may_speculate(Opcode::StW));
            assert!(!m.may_speculate(Opcode::FSt));
        }
    }

    #[test]
    fn sentinel_stores_allows_stores() {
        let m = SchedulingModel::SentinelStores;
        assert!(m.may_speculate(Opcode::StW));
        assert!(m.may_speculate(Opcode::LdW));
    }

    #[test]
    fn control_never_speculates() {
        for m in SchedulingModel::all() {
            assert!(!m.may_speculate(Opcode::Beq));
            assert!(!m.may_speculate(Opcode::Jsr));
            assert!(!m.may_speculate(Opcode::Halt));
            assert!(!m.may_speculate(Opcode::CheckExcept));
        }
    }

    #[test]
    fn tags_and_display() {
        assert_eq!(SchedulingModel::Sentinel.tag(), "S");
        assert_eq!(SchedulingModel::SentinelStores.tag(), "T");
        assert!(SchedulingModel::GeneralPercolation
            .to_string()
            .contains("general"));
        assert!(SchedulingModel::Sentinel.uses_sentinels());
        assert!(!SchedulingModel::GeneralPercolation.uses_sentinels());
    }

    #[test]
    fn options_builders() {
        let o = SchedOptions::new(SchedulingModel::Sentinel)
            .with_recovery()
            .with_clear_uninitialized();
        assert!(o.recovery && o.clear_uninitialized);
    }
}
