//! Register-allocator support (paper §3.7, "Register Allocator Support").
//!
//! Speculative code motion runs before register allocation; the renaming
//! transformation introduces *virtual* registers (indices at or above the
//! architectural count). This pass maps them back onto architectural
//! registers, honoring the paper's constraint:
//!
//! > "It is necessary to extend the live range of source registers for
//! > instructions subsequent to a speculative instruction to reach the
//! > sentinel for that speculative instruction. This ensures that the
//! > register allocator does not reuse these source registers and violate
//! > the restartable property enforced by the code scheduler."
//!
//! Virtual registers here are block-local by construction (the renaming
//! transformation defines and fully consumes them within one block), so
//! allocation is per block: each virtual register's live range — extended
//! to the end of its home region so restartable inputs survive to their
//! sentinels — is assigned an architectural register that is dead and
//! unwritten across that range. When none exists, the value is **spilled
//! with the tag-preserving instructions** `st.tag` / `ld.tag` (paper
//! §3.2), which preserve a deferred exception tag across the spill: a
//! speculative fault parked in a spilled register still reaches its
//! sentinel.

use std::collections::HashMap;

use sentinel_isa::{BlockId, Insn, Opcode, Reg, RegClass};
use sentinel_prog::cfg::Cfg;
use sentinel_prog::liveness::Liveness;
use sentinel_prog::Function;

use crate::depgraph::is_region_delimiter;

/// Allocation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AllocError {
    /// The program already uses the architectural registers reserved as
    /// spill scratch (the top two of each class).
    ScratchInUse(Reg),
    /// An instruction reads more distinct spilled values than there are
    /// scratch registers.
    TooManySpilledOperands(sentinel_isa::InsnId),
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocError::ScratchInUse(r) => {
                write!(f, "scratch register {r} is used by the program")
            }
            AllocError::TooManySpilledOperands(id) => {
                write!(f, "instruction {id} reads too many spilled values")
            }
        }
    }
}

impl std::error::Error for AllocError {}

/// Allocation statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocResult {
    /// Virtual registers assigned to architectural registers.
    pub assigned: usize,
    /// Virtual registers spilled to memory.
    pub spilled: usize,
}

/// Options for [`allocate_registers`].
#[derive(Debug, Clone)]
pub struct AllocOptions {
    /// Architectural integer register count (virtuals are indices ≥ this).
    pub int_regs: usize,
    /// Architectural fp register count.
    pub fp_regs: usize,
    /// Base address of the spill area. Spill slots are never reused for
    /// program data; tag-preserving accesses model a dedicated,
    /// always-resident spill page.
    pub spill_base: u64,
    /// Extend virtual live ranges to their region end so restartable
    /// inputs survive to their sentinels (set when the schedule was
    /// produced with recovery constraints).
    pub recovery_extension: bool,
}

impl AllocOptions {
    /// Options matching a machine description.
    pub fn for_mdes(mdes: &sentinel_isa::MachineDesc, recovery: bool) -> AllocOptions {
        AllocOptions {
            int_regs: mdes.int_regs(),
            fp_regs: mdes.fp_regs(),
            spill_base: 0x7FFF_0000,
            recovery_extension: recovery,
        }
    }

    fn arch_count(&self, class: RegClass) -> usize {
        match class {
            RegClass::Int => self.int_regs,
            RegClass::Fp => self.fp_regs,
        }
    }

    /// The two reserved data-scratch registers of a class (top indices).
    fn data_scratch(&self, class: RegClass) -> [Reg; 2] {
        let n = self.arch_count(class) as u16;
        match class {
            RegClass::Int => [Reg::int(n - 1), Reg::int(n - 2)],
            RegClass::Fp => [Reg::fp(n - 1), Reg::fp(n - 2)],
        }
    }

    /// The reserved integer register holding spill-slot addresses.
    fn addr_scratch(&self) -> Reg {
        Reg::int(self.int_regs as u16 - 3)
    }

    /// All reserved registers.
    fn reserved(&self) -> Vec<Reg> {
        let mut v = self.data_scratch(RegClass::Int).to_vec();
        v.extend(self.data_scratch(RegClass::Fp));
        v.push(self.addr_scratch());
        v
    }
}

/// A block-local virtual register's live range, in instruction positions.
#[derive(Debug, Clone)]
struct VirtualRange {
    reg: Reg,
    def: usize,
    /// Last use (inclusive).
    last_use: usize,
    /// Range end after the §3.7 extension (inclusive).
    end: usize,
}

fn is_virtual(r: Reg, opts: &AllocOptions) -> bool {
    (r.index() as usize) >= opts.arch_count(r.class())
}

/// Collects the (block-local) virtual ranges of a block.
///
/// # Panics
///
/// Panics if a virtual register is used before its block-local definition
/// (the renaming transformation never produces that shape).
fn collect_ranges(func: &Function, block: BlockId, opts: &AllocOptions) -> Vec<VirtualRange> {
    let insns = &func.block(block).insns;
    let mut first_def: HashMap<Reg, usize> = HashMap::new();
    let mut last_use: HashMap<Reg, usize> = HashMap::new();
    for (p, insn) in insns.iter().enumerate() {
        for u in insn.uses() {
            if is_virtual(u, opts) {
                assert!(
                    first_def.contains_key(&u),
                    "virtual {u} used before definition in {block}"
                );
                last_use.insert(u, p);
            }
        }
        if let Some(d) = insn.def() {
            if is_virtual(d, opts) {
                first_def.entry(d).or_insert(p);
            }
        }
    }
    first_def
        .into_iter()
        .map(|(reg, def)| {
            let lu = last_use.get(&reg).copied().unwrap_or(def);
            let end = if opts.recovery_extension {
                // Extend to the end of the last use's region: the value
                // must survive until the sentinels of that region fire.
                (lu..insns.len())
                    .find(|&k| is_region_delimiter(insns[k].op, true))
                    .unwrap_or(insns.len().saturating_sub(1))
            } else {
                lu
            };
            VirtualRange {
                reg,
                def,
                last_use: lu,
                end,
            }
        })
        .collect()
}

/// Is architectural register `a` free over `[start, end]` of `block`?
fn arch_reg_free(
    func: &Function,
    lv: &Liveness,
    block: BlockId,
    a: Reg,
    start: usize,
    end: usize,
) -> bool {
    let insns = &func.block(block).insns;
    #[allow(clippy::needless_range_loop)]
    for p in start..=end.min(insns.len().saturating_sub(1)) {
        if lv.live_before(func, block, p).contains(&a) {
            return false;
        }
        if insns[p].def() == Some(a) || insns[p].uses().any(|u| u == a) {
            return false;
        }
    }
    // Also: `a` must not be live immediately after the range (we would
    // clobber a value needed later).
    if lv
        .live_before(func, block, (end + 1).min(insns.len()))
        .contains(&a)
    {
        return false;
    }
    true
}

/// Allocates all virtual registers of a scheduled function, in place.
///
/// # Errors
///
/// See [`AllocError`].
///
/// # Examples
///
/// ```
/// use sentinel_core::regalloc::{allocate_registers, AllocOptions};
/// use sentinel_isa::{Insn, MachineDesc, Reg};
/// use sentinel_prog::ProgramBuilder;
///
/// // r100 is a virtual register introduced by the recovery renaming.
/// let mut b = ProgramBuilder::new("f");
/// b.block("entry");
/// b.push(Insn::addi(Reg::int(100), Reg::int(1), 1));
/// b.push(Insn::st_w(Reg::int(100), Reg::int(2), 0));
/// b.push(Insn::halt());
/// let mut f = b.finish();
/// let opts = AllocOptions::for_mdes(&MachineDesc::paper_issue(8), false);
/// let result = allocate_registers(&mut f, &opts)?;
/// assert_eq!(result.assigned, 1);
/// assert!(f.max_reg_indices().0.unwrap() < 64);
/// # Ok::<(), sentinel_core::regalloc::AllocError>(())
/// ```
pub fn allocate_registers(
    func: &mut Function,
    opts: &AllocOptions,
) -> Result<AllocResult, AllocError> {
    assert!(
        opts.int_regs >= 4 && opts.fp_regs >= 2,
        "register files too small to reserve spill scratch"
    );
    // Reserved scratch registers must be untouched by the program.
    for s in opts.reserved() {
        for b in func.blocks() {
            for insn in &b.insns {
                if insn.dest == Some(s) || insn.raw_srcs().any(|r| r == s) {
                    return Err(AllocError::ScratchInUse(s));
                }
            }
        }
    }

    let mut result = AllocResult::default();
    let mut next_spill_slot: u64 = 0;
    let blocks: Vec<BlockId> = func.layout().to_vec();
    for bid in blocks {
        // Ranges are recomputed per block; liveness is recomputed after
        // each block's rewrites (cheap at our scale, and keeps the
        // analysis exact in the presence of spill code).
        loop {
            let cfg = Cfg::build(func);
            let lv = Liveness::compute(func, &cfg);
            let mut ranges = collect_ranges(func, bid, opts);
            if ranges.is_empty() {
                break;
            }
            // Allocate the earliest-defined range first.
            ranges.sort_by_key(|r| r.def);
            let vr = ranges.remove(0);
            let class = vr.reg.class();
            let reserved = opts.reserved();
            // Candidate architectural registers, skipping r0 and scratch.
            let lo = if class == RegClass::Int { 1 } else { 0 };
            let candidate = (lo..opts.arch_count(class) as u16)
                .map(|i| match class {
                    RegClass::Int => Reg::int(i),
                    RegClass::Fp => Reg::fp(i),
                })
                .filter(|a| !reserved.contains(a))
                .find(|a| arch_reg_free(func, &lv, bid, *a, vr.def, vr.end));
            match candidate {
                Some(a) => {
                    rewrite_range(func, bid, &vr, a);
                    result.assigned += 1;
                }
                None => {
                    let slot = opts.spill_base + 8 * next_spill_slot;
                    next_spill_slot += 1;
                    spill_range(func, bid, &vr, slot, opts)?;
                    result.spilled += 1;
                }
            }
        }
    }
    Ok(result)
}

/// Renames every def/use of `vr.reg` in `[def, last_use]` to `a`.
fn rewrite_range(func: &mut Function, block: BlockId, vr: &VirtualRange, a: Reg) {
    let insns = &mut func.block_mut(block).insns;
    for insn in insns[vr.def..=vr.last_use].iter_mut() {
        insn.rename_def(vr.reg, a);
        insn.rename_use(vr.reg, a);
    }
}

/// Spills `vr.reg` to `slot`: the defining instruction writes a scratch
/// register followed by a tag-preserving save; every use is preceded by a
/// tag-preserving restore into a scratch register.
fn spill_range(
    func: &mut Function,
    block: BlockId,
    vr: &VirtualRange,
    slot: u64,
    opts: &AllocOptions,
) -> Result<(), AllocError> {
    let class = vr.reg.class();
    let data = opts.data_scratch(class);
    let addr = opts.addr_scratch();

    // Walk positions from the end so insertions do not shift earlier ones.
    for p in (vr.def..=vr.last_use).rev() {
        let insn = func.block(block).insns[p].clone();
        let reads = insn.uses().any(|u| u == vr.reg);
        let writes = insn.def() == Some(vr.reg);
        let mut cur = p;
        if reads {
            // Pick a data scratch not already consumed by a previous
            // spill's patch of this instruction.
            let d = if !insn.raw_srcs().any(|r| r == data[0]) {
                data[0]
            } else if !insn.raw_srcs().any(|r| r == data[1]) {
                data[1]
            } else {
                return Err(AllocError::TooManySpilledOperands(insn.id));
            };
            let mut patched = insn.clone();
            patched.rename_use(vr.reg, d);
            func.block_mut(block).insns[p] = patched;
            func.insert_insn(block, p, Insn::ld_tag(d, addr, 0));
            func.insert_insn(block, p, Insn::li(addr, slot as i64));
            cur = p + 2;
        }
        if writes {
            let mut patched = func.block(block).insns[cur].clone();
            patched.rename_def(vr.reg, data[0]);
            func.block_mut(block).insns[cur] = patched;
            func.insert_insn(block, cur + 1, Insn::li(addr, slot as i64));
            func.insert_insn(block, cur + 2, Insn::st_tag(data[0], addr, 0));
        }
    }
    let _ = Opcode::StTag;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sentinel_isa::MachineDesc;
    use sentinel_prog::{validate, ProgramBuilder};

    fn opts(int_regs: usize) -> AllocOptions {
        AllocOptions {
            int_regs,
            fp_regs: 64,
            spill_base: 0x7FFF_0000,
            recovery_extension: false,
        }
    }

    /// entry: v = r1 + 1 ; st v, 0(r3) ; halt   (v = virtual r100)
    fn with_virtual() -> Function {
        let mut b = ProgramBuilder::new("f");
        b.block("entry");
        b.push(Insn::addi(Reg::int(100), Reg::int(1), 1));
        b.push(Insn::st_w(Reg::int(100), Reg::int(3), 0));
        b.push(Insn::halt());
        b.finish()
    }

    fn max_int_reg(f: &Function) -> u16 {
        f.max_reg_indices().0.unwrap_or(0)
    }

    #[test]
    fn assigns_virtual_to_free_arch_reg() {
        let mut f = with_virtual();
        let r = allocate_registers(&mut f, &opts(64)).unwrap();
        assert_eq!(r.assigned, 1);
        assert_eq!(r.spilled, 0);
        assert!(max_int_reg(&f) < 64, "no virtuals remain");
        assert!(validate(&f).is_empty());
        // The def and the use renamed consistently.
        let e = f.entry();
        let d = f.block(e).insns[0].dest.unwrap();
        assert_eq!(f.block(e).insns[1].src1, Some(d));
    }

    #[test]
    fn does_not_clobber_live_registers() {
        // r2 is live across the virtual's range (defined before, used
        // after) — the allocator must not pick it.
        let mut b = ProgramBuilder::new("f");
        b.block("entry");
        b.push(Insn::li(Reg::int(2), 7));
        b.push(Insn::addi(Reg::int(100), Reg::int(1), 1));
        b.push(Insn::st_w(Reg::int(100), Reg::int(3), 0));
        b.push(Insn::st_w(Reg::int(2), Reg::int(3), 8)); // r2 used later
        b.push(Insn::halt());
        let mut f = b.finish();
        allocate_registers(&mut f, &opts(64)).unwrap();
        let e = f.entry();
        let assigned = f.block(e).insns[1].dest.unwrap();
        assert_ne!(assigned, Reg::int(2), "live register must not be reused");
        assert_ne!(assigned, Reg::ZERO);
    }

    #[test]
    fn spills_when_no_register_is_free() {
        // Arch = 8 int regs (r7, r6 reserved as scratch); keep r1..r5
        // live across the virtual's range so nothing is free.
        let mut b = ProgramBuilder::new("f");
        b.block("entry");
        for i in 1..=5 {
            b.push(Insn::li(Reg::int(i), i as i64));
        }
        b.push(Insn::addi(Reg::int(100), Reg::int(1), 1)); // virtual def
        b.push(Insn::st_w(Reg::int(100), Reg::int(1), 0)); // virtual use
        for i in 1..=5 {
            // All of r1..r5 still live here.
            b.push(Insn::st_w(Reg::int(i), Reg::int(1), 8 * i as i64));
        }
        b.push(Insn::halt());
        let mut f = b.finish();
        let r = allocate_registers(&mut f, &opts(9)).unwrap();
        assert_eq!(r.spilled, 1, "must spill");
        assert!(max_int_reg(&f) < 9);
        assert!(validate(&f).is_empty(), "{:?}", validate(&f));
        // Spill code uses the tag-preserving instructions.
        let e = f.entry();
        let ops: Vec<Opcode> = f.block(e).insns.iter().map(|i| i.op).collect();
        assert!(ops.contains(&Opcode::StTag));
        assert!(ops.contains(&Opcode::LdTag));
    }

    #[test]
    fn spilled_code_executes_correctly() {
        let mut b = ProgramBuilder::new("f");
        b.block("entry");
        for i in 1..=5 {
            b.push(Insn::li(Reg::int(i), 10 * i as i64));
        }
        b.push(Insn::li(Reg::int(5), 0x1000)); // base
        b.push(Insn::addi(Reg::int(100), Reg::int(1), 1)); // v = 11
        b.push(Insn::st_w(Reg::int(100), Reg::int(5), 0));
        for i in 1..=4 {
            b.push(Insn::st_w(Reg::int(i), Reg::int(5), 8 * i as i64));
        }
        b.push(Insn::halt());
        let mut f = b.finish();
        let r = allocate_registers(&mut f, &opts(9)).unwrap();
        assert!(r.spilled >= 1 || r.assigned >= 1);
        assert!(max_int_reg(&f) < 9);
        // Run it.
        let mdes = MachineDesc::builder().int_regs(9).build();
        let mut m = sentinel_sim::SimSession::for_function(&f)
            .config(sentinel_sim::SimConfig::for_mdes(mdes))
            .build();
        m.memory_mut().map_region(0x1000, 0x100);
        assert_eq!(m.run().unwrap(), sentinel_sim::RunOutcome::Halted);
        assert_eq!(m.memory().read_word(0x1000).unwrap(), 11);
        assert_eq!(m.memory().read_word(0x1008).unwrap(), 10);
    }

    #[test]
    fn scratch_conflict_detected() {
        let mut b = ProgramBuilder::new("f");
        b.block("entry");
        b.push(Insn::li(Reg::int(63), 1)); // scratch of a 64-reg machine
        b.push(Insn::addi(Reg::int(100), Reg::int(1), 1));
        b.push(Insn::st_w(Reg::int(100), Reg::int(1), 0));
        b.push(Insn::halt());
        let mut f = b.finish();
        assert_eq!(
            allocate_registers(&mut f, &opts(64)),
            Err(AllocError::ScratchInUse(Reg::int(63)))
        );
    }

    #[test]
    fn recovery_extension_widens_ranges() {
        // v's last use is before a store X that writes a register;
        // without extension an arch reg dead after the use could be
        // reused inside the region; with extension the range reaches the
        // region end. We check the observable: extension never assigns a
        // register that is redefined before the region ends.
        let mut b = ProgramBuilder::new("f");
        let e = b.block("entry");
        let t = b.block("t");
        b.switch_to(e);
        b.push(Insn::addi(Reg::int(100), Reg::int(1), 1)); // v def
        b.push(Insn::st_w(Reg::int(100), Reg::int(1), 0)); // v last use
        b.push(Insn::li(Reg::int(9), 5)); // r9 written inside region
        b.push(Insn::branch(Opcode::Beq, Reg::int(9), Reg::ZERO, t)); // region end
        b.push(Insn::halt());
        b.switch_to(t);
        b.push(Insn::halt());
        let mut f = b.finish();
        let mut o = opts(64);
        o.recovery_extension = true;
        allocate_registers(&mut f, &o).unwrap();
        let assigned = f.block(e).insns[0].dest.unwrap();
        assert_ne!(assigned, Reg::int(9), "extended range excludes r9");
        assert!(validate(&f).is_empty());
    }

    #[test]
    fn no_virtuals_is_a_noop() {
        let mut b = ProgramBuilder::new("f");
        b.block("entry");
        b.push(Insn::li(Reg::int(1), 1));
        b.push(Insn::halt());
        let mut f = b.finish();
        let before = f.to_string();
        let r = allocate_registers(&mut f, &opts(64)).unwrap();
        assert_eq!(r, AllocResult::default());
        assert_eq!(f.to_string(), before);
    }
}
