//! The compiler pass abstraction: named stages over a shared context.
//!
//! The scheduling pipeline used to be one monolithic function calling
//! helpers in a fixed order. It is now a sequence of [`Pass`]es, each
//! with a uniform `run(&mut PassCtx) -> Result<(), ScheduleError>`
//! interface, executed by [`CompileSession`](crate::CompileSession):
//! the manager times every run, computes the IR delta it produced,
//! collects the structured diagnostics it raised, and (in debug builds
//! or under [`SchedOptions::verify_passes`]) checks the inter-pass IR
//! invariants with [`verify_ir`](crate::verify_ir::verify_ir) so a
//! broken pass is caught at its own boundary instead of at simulation
//! time.
//!
//! Function-level passes run once; the block-level passes (`depgraph`,
//! `reduction`, `list-schedule`) run once per block — and again per
//! block on every §4.2 store-separation retry — so a [`PassReport`]
//! aggregates all runs of one name.

use std::collections::{HashMap, HashSet};
use std::time::Duration;

use sentinel_isa::{BlockId, InsnId, MachineDesc};
use sentinel_prog::cfg::Cfg;
use sentinel_prog::liveness::{Liveness, RegSet};
use sentinel_prog::Function;
use sentinel_trace::IrDelta;

use crate::depgraph::DepGraph;
use crate::list::BlockSchedule;
use crate::models::SchedOptions;
use crate::pipeline::{SchedStats, ScheduleError};
use crate::reduction::Reduction;

/// Canonical pass names, in pipeline order. `store-separation-retry`
/// appears in a log only when the §4.2 constraint forced a retry.
pub const PASS_NAMES: [&str; 10] = [
    "validate",
    "superblock-prep",
    "clear-tags",
    "recovery-rename",
    "liveness",
    "depgraph",
    "reduction",
    "list-schedule",
    "store-separation-retry",
    "regalloc",
];

/// Shared state the passes read and mutate.
///
/// The working function starts as a clone of the input (made by the
/// `superblock-prep` pass); analyses (`cfg`, `liveness`) and the
/// per-block scratch (`graph`, `reduction`) are filled by the passes
/// that compute them and consumed by the ones that follow.
pub struct PassCtx<'a> {
    /// The untouched input function.
    pub input: &'a Function,
    /// Target machine description.
    pub mdes: &'a MachineDesc,
    /// Scheduling options.
    pub opts: &'a SchedOptions,
    /// The function being rewritten (clone of `input`).
    pub func: Function,
    /// Registers live into the input's entry block (recorded before any
    /// rewriting; `verify_ir` checks no pass introduces new ones).
    pub entry_live_in: RegSet,
    /// Control-flow graph of `func` (computed by the `liveness` pass).
    pub cfg: Option<Cfg>,
    /// Live-variable analysis of `func` (computed by the `liveness` pass).
    pub liveness: Option<Liveness>,
    /// Instruction ids pinned non-speculative: recovery restore moves,
    /// unrenamable self-overwrites, and §4.2-pinned stores.
    pub pinned: HashSet<InsnId>,
    /// Unrenamable self-overwrites (§3.7 restriction 3: nothing moves
    /// across them).
    pub unrenamable: HashSet<InsnId>,
    /// The block currently moving through the block-level passes.
    pub block: Option<BlockId>,
    /// Dependence graph of `block` (built by `depgraph`).
    pub graph: Option<DepGraph>,
    /// Reduction of `graph` (built by `reduction`).
    pub reduction: Option<Reduction>,
    /// Finished per-block schedules.
    pub schedules: HashMap<BlockId, BlockSchedule>,
    /// Aggregate statistics.
    pub stats: SchedStats,
    /// Diagnostics raised by the current pass run (drained into the
    /// [`PassReport`] by the manager after the run).
    pub diagnostics: Vec<String>,
}

impl<'a> PassCtx<'a> {
    /// A fresh context over `input`. The working copy is not made here
    /// but by the `superblock-prep` pass, so its cost is attributed.
    pub fn new(input: &'a Function, mdes: &'a MachineDesc, opts: &'a SchedOptions) -> PassCtx<'a> {
        PassCtx {
            input,
            mdes,
            opts,
            func: Function::new(input.name()),
            entry_live_in: RegSet::default(),
            cfg: None,
            liveness: None,
            pinned: HashSet::new(),
            unrenamable: HashSet::new(),
            block: None,
            graph: None,
            reduction: None,
            schedules: HashMap::new(),
            stats: SchedStats::default(),
            diagnostics: Vec::new(),
        }
    }

    /// Raises a structured non-fatal diagnostic on the current run.
    pub fn diag(&mut self, msg: impl Into<String>) {
        self.diagnostics.push(msg.into());
    }

    /// The liveness analysis, which must have been computed.
    pub fn liveness_ref(&self) -> Result<&Liveness, ScheduleError> {
        self.liveness
            .as_ref()
            .ok_or_else(|| ScheduleError::Internal("liveness pass did not run".into()))
    }
}

/// One named compiler stage.
pub trait Pass {
    /// Stable kebab-case name (one of [`PASS_NAMES`]).
    fn name(&self) -> &'static str;

    /// Executes the stage against the shared context.
    ///
    /// # Errors
    ///
    /// Any [`ScheduleError`]; the manager stops the pipeline at the
    /// first failing pass and reports it by name.
    fn run(&mut self, ctx: &mut PassCtx<'_>) -> Result<(), ScheduleError>;

    /// Whether the stage may mutate the IR. Analysis passes answer
    /// `false`, which lets the manager skip the inter-pass IR check
    /// after them (the IR cannot have changed).
    fn mutates_ir(&self) -> bool {
        true
    }
}

/// Aggregated record of every run of one pass name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassReport {
    /// Pass name.
    pub name: &'static str,
    /// Number of runs (blocks × retry attempts for block-level passes).
    pub runs: u32,
    /// Total wall-clock time across runs.
    pub wall: Duration,
    /// Summed IR delta across runs.
    pub delta: IrDelta,
    /// Diagnostics raised across runs, in execution order.
    pub diagnostics: Vec<String>,
}

impl PassReport {
    /// A zeroed report for `name`.
    pub fn new(name: &'static str) -> PassReport {
        PassReport {
            name,
            runs: 0,
            wall: Duration::ZERO,
            delta: IrDelta::default(),
            diagnostics: Vec::new(),
        }
    }
}

/// The per-compilation pass log: one [`PassReport`] per pass name, in
/// first-execution order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PassLog {
    reports: Vec<PassReport>,
}

impl PassLog {
    /// Records one run of `name`, merging into its report.
    pub fn record(
        &mut self,
        name: &'static str,
        wall: Duration,
        delta: IrDelta,
        diagnostics: Vec<String>,
    ) {
        let report = match self.reports.iter_mut().find(|r| r.name == name) {
            Some(r) => r,
            None => {
                self.reports.push(PassReport::new(name));
                self.reports.last_mut().expect("just pushed")
            }
        };
        report.runs += 1;
        report.wall += wall;
        report.delta.insns_added += delta.insns_added;
        report.delta.insns_removed += delta.insns_removed;
        report.delta.marked_speculative += delta.marked_speculative;
        report.diagnostics.extend(diagnostics);
    }

    /// The reports, in first-execution order.
    pub fn reports(&self) -> &[PassReport] {
        &self.reports
    }

    /// The report for `name`, if that pass ran.
    pub fn report(&self, name: &str) -> Option<&PassReport> {
        self.reports.iter().find(|r| r.name == name)
    }

    /// Total pass runs across all names.
    pub fn total_runs(&self) -> u64 {
        self.reports.iter().map(|r| u64::from(r.runs)).sum()
    }

    /// Renders the log as an aligned table (the `--explain` output):
    /// name, runs, total wall time, IR delta, then diagnostics indented
    /// under their pass.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<24}{:>6}{:>12}{:>8}{:>8}{:>8}",
            "pass", "runs", "wall", "+insns", "-insns", "+spec"
        );
        for r in &self.reports {
            let _ = writeln!(
                out,
                "{:<24}{:>6}{:>11.1?}{:>8}{:>8}{:>8}",
                r.name,
                r.runs,
                r.wall,
                r.delta.insns_added,
                r.delta.insns_removed,
                r.delta.marked_speculative
            );
            for d in &r.diagnostics {
                let _ = writeln!(out, "    · {d}");
            }
        }
        out
    }
}

/// Whole-function counts the manager diffs to compute an [`IrDelta`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IrSnapshot {
    /// Total instructions.
    pub insns: usize,
    /// Instructions carrying the speculative modifier.
    pub speculative: usize,
}

impl IrSnapshot {
    /// Counts `func`.
    pub fn of(func: &Function) -> IrSnapshot {
        let mut insns = 0;
        let mut speculative = 0;
        for b in func.blocks() {
            insns += b.insns.len();
            speculative += b.insns.iter().filter(|i| i.speculative).count();
        }
        IrSnapshot { insns, speculative }
    }

    /// The delta from `self` (before) to `after`.
    pub fn delta_to(&self, after: IrSnapshot) -> IrDelta {
        IrDelta {
            insns_added: after.insns.saturating_sub(self.insns),
            insns_removed: self.insns.saturating_sub(after.insns),
            marked_speculative: after.speculative.saturating_sub(self.speculative),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pass_log_merges_runs_by_name() {
        let mut log = PassLog::default();
        log.record(
            "depgraph",
            Duration::from_micros(5),
            IrDelta::default(),
            vec![],
        );
        log.record(
            "depgraph",
            Duration::from_micros(7),
            IrDelta {
                insns_added: 2,
                ..Default::default()
            },
            vec!["note".into()],
        );
        log.record(
            "regalloc",
            Duration::from_micros(1),
            IrDelta::default(),
            vec![],
        );
        assert_eq!(log.reports().len(), 2);
        let d = log.report("depgraph").unwrap();
        assert_eq!(d.runs, 2);
        assert_eq!(d.wall, Duration::from_micros(12));
        assert_eq!(d.delta.insns_added, 2);
        assert_eq!(d.diagnostics, vec!["note".to_string()]);
        assert_eq!(log.total_runs(), 3);
    }

    #[test]
    fn render_lists_passes_in_execution_order() {
        let mut log = PassLog::default();
        log.record("validate", Duration::ZERO, IrDelta::default(), vec![]);
        log.record(
            "list-schedule",
            Duration::ZERO,
            IrDelta::default(),
            vec!["pinned 1 store".into()],
        );
        let out = log.render();
        let v = out.find("validate").unwrap();
        let l = out.find("list-schedule").unwrap();
        assert!(v < l);
        assert!(out.contains("· pinned 1 store"));
    }

    #[test]
    fn snapshot_deltas() {
        let before = IrSnapshot {
            insns: 10,
            speculative: 1,
        };
        let after = IrSnapshot {
            insns: 13,
            speculative: 4,
        };
        let d = before.delta_to(after);
        assert_eq!(d.insns_added, 3);
        assert_eq!(d.insns_removed, 0);
        assert_eq!(d.marked_speculative, 3);
        let back = after.delta_to(before);
        assert_eq!(back.insns_removed, 3);
    }
}
