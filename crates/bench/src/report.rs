//! Plain-text and CSV report emitters for the figure data.

use std::fmt::Write as _;

use sentinel_core::SchedulingModel;
use sentinel_workloads::BenchClass;

use crate::figures::{mean_improvement, BenchSpeedups, WIDTHS};

/// Renders a figure's speedups as an aligned text table: one row per
/// benchmark, one column per (model, width).
pub fn speedup_table(rows: &[BenchSpeedups], models: &[SchedulingModel]) -> String {
    let mut out = String::new();
    let _ = write!(out, "{:<12}", "benchmark");
    for &m in models {
        for &w in &WIDTHS {
            let _ = write!(out, "{:>9}", format!("{}x{}", m.tag(), w));
        }
    }
    let _ = writeln!(out);
    for r in rows {
        let _ = write!(out, "{:<12}", r.bench);
        for &m in models {
            for &w in &WIDTHS {
                let _ = write!(out, "{:>9.2}", r.speedup(m, w));
            }
        }
        let _ = writeln!(out);
    }
    out
}

/// Renders the same data as CSV (`benchmark,class,model,width,speedup`).
pub fn speedup_csv(rows: &[BenchSpeedups], models: &[SchedulingModel]) -> String {
    let mut out = String::from("benchmark,class,model,width,speedup\n");
    for r in rows {
        for &m in models {
            for &w in &WIDTHS {
                let _ = writeln!(
                    out,
                    "{},{},{},{},{:.4}",
                    r.bench,
                    r.class,
                    m.tag(),
                    w,
                    r.speedup(m, w)
                );
            }
        }
    }
    out
}

/// The paper's §5.2 headline statistics for a figure's data: mean
/// improvement of `a` over `b` per class and width, as percentages.
pub fn improvement_summary(
    rows: &[BenchSpeedups],
    a: SchedulingModel,
    b: SchedulingModel,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "mean improvement of {} over {} (geometric):", a.tag(), b.tag());
    for &w in &WIDTHS {
        let nn = (mean_improvement(rows, a, b, w, Some(BenchClass::NonNumeric)) - 1.0) * 100.0;
        let nu = (mean_improvement(rows, a, b, w, Some(BenchClass::Numeric)) - 1.0) * 100.0;
        let all = (mean_improvement(rows, a, b, w, None) - 1.0) * 100.0;
        let _ = writeln!(
            out,
            "  issue {w}: non-numeric {nn:+6.1}%   numeric {nu:+6.1}%   all {all:+6.1}%"
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::measure_workloads;
    use sentinel_workloads::{generate, WorkloadSpec};

    fn tiny_rows() -> Vec<BenchSpeedups> {
        let mut s = WorkloadSpec::test_default("tiny", 3);
        s.iterations = 10;
        let w = generate(&s);
        measure_workloads(
            &[w],
            &[
                SchedulingModel::RestrictedPercolation,
                SchedulingModel::Sentinel,
            ],
        )
    }

    #[test]
    fn tables_render() {
        let rows = tiny_rows();
        let models = [
            SchedulingModel::RestrictedPercolation,
            SchedulingModel::Sentinel,
        ];
        let t = speedup_table(&rows, &models);
        assert!(t.contains("tiny"));
        assert!(t.contains("Rx2") && t.contains("Sx8"));
        let csv = speedup_csv(&rows, &models);
        assert!(csv.lines().count() >= 7); // header + 6 data rows
        assert!(csv.starts_with("benchmark,"));
        let sum = improvement_summary(
            &rows,
            SchedulingModel::Sentinel,
            SchedulingModel::RestrictedPercolation,
        );
        assert!(sum.contains("issue 8"));
    }
}
