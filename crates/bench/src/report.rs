//! Plain-text and CSV report emitters for the figure data.

use std::fmt::Write as _;

use sentinel_core::SchedulingModel;
use sentinel_trace::StallReason;
use sentinel_workloads::BenchClass;

use crate::figures::{mean_improvement, BenchSpeedups, WIDTHS};

/// Renders a figure's speedups as an aligned text table: one row per
/// benchmark, one column per (model, width). A degraded cell (one whose
/// measurement panicked and was isolated by the grid engine) renders as
/// `err`; its cause is listed by [`failed_cell_report`].
pub fn speedup_table(rows: &[BenchSpeedups], models: &[SchedulingModel]) -> String {
    let mut out = String::new();
    let _ = write!(out, "{:<12}", "benchmark");
    for &m in models {
        for &w in &WIDTHS {
            let _ = write!(out, "{:>9}", format!("{}x{}", m.tag(), w));
        }
    }
    let _ = writeln!(out);
    for r in rows {
        let _ = write!(out, "{:<12}", r.bench);
        for &m in models {
            for &w in &WIDTHS {
                match r.try_speedup(m, w) {
                    Some(sp) => {
                        let _ = write!(out, "{sp:>9.2}");
                    }
                    None => {
                        let _ = write!(out, "{:>9}", "err");
                    }
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

/// Renders the same data as CSV (`benchmark,class,model,width,speedup`);
/// degraded cells emit `err` in the speedup column.
pub fn speedup_csv(rows: &[BenchSpeedups], models: &[SchedulingModel]) -> String {
    let mut out = String::from("benchmark,class,model,width,speedup\n");
    for r in rows {
        for &m in models {
            for &w in &WIDTHS {
                let _ = write!(out, "{},{},{},{},", r.bench, r.class, m.tag(), w);
                match r.try_speedup(m, w) {
                    Some(sp) => {
                        let _ = writeln!(out, "{sp:.4}");
                    }
                    None => {
                        let _ = writeln!(out, "err");
                    }
                }
            }
        }
    }
    out
}

/// One line per degraded cell (`bench (model xW): cause`), empty when
/// every cell measured cleanly — appended to figure output so a failure
/// is *reported*, not silent.
pub fn failed_cell_report(rows: &[BenchSpeedups]) -> String {
    let mut out = String::new();
    for r in rows {
        for (&(m, w), cause) in &r.failed {
            let first_line = cause.lines().next().unwrap_or("");
            let _ = writeln!(out, "DEGRADED {} ({} x{w}): {first_line}", r.bench, m.tag());
        }
    }
    out
}

/// Renders a per-benchmark cycle-attribution table for one (model,
/// width) point: the fraction of cycles in which at least one
/// instruction issued, plus the share charged to each stall reason.
/// Reasons that are zero across every row are omitted to keep the
/// table narrow.
pub fn stall_breakdown_table(
    rows: &[BenchSpeedups],
    model: SchedulingModel,
    width: usize,
) -> String {
    let points: Vec<_> = rows
        .iter()
        .filter_map(|r| r.raw.get(&(model, width)).map(|m| (r.bench.as_str(), m)))
        .collect();
    let live: Vec<StallReason> = StallReason::ALL
        .iter()
        .copied()
        .filter(|&reason| points.iter().any(|(_, m)| m.stats.stalls.get(reason) > 0))
        .collect();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "cycle breakdown [{} x{}] (% of cycles):",
        model.tag(),
        width
    );
    let _ = write!(out, "{:<12}{:>8}", "benchmark", "issue");
    for &reason in &live {
        let _ = write!(out, "{:>18}", reason.name());
    }
    let _ = writeln!(out);
    for (bench, m) in &points {
        let _ = write!(out, "{:<12}{:>7.1}%", bench, m.issue_pct());
        for &reason in &live {
            let _ = write!(out, "{:>17.1}%", m.stall_pct(reason));
        }
        let _ = writeln!(out);
    }
    if live.is_empty() {
        let _ = writeln!(out, "  (no stall cycles recorded)");
    }
    out
}

/// The same attribution data as CSV
/// (`benchmark,model,width,cycles,issue_pct,<reason>...`).
pub fn stall_breakdown_csv(rows: &[BenchSpeedups], model: SchedulingModel, width: usize) -> String {
    let mut out = String::from("benchmark,model,width,cycles,issue_pct");
    for &reason in &StallReason::ALL {
        let _ = write!(out, ",{}", reason.name());
    }
    out.push('\n');
    for r in rows {
        let Some(m) = r.raw.get(&(model, width)) else {
            continue;
        };
        let _ = write!(
            out,
            "{},{},{},{},{:.4}",
            r.bench,
            model.tag(),
            width,
            m.cycles,
            m.issue_pct()
        );
        for &reason in &StallReason::ALL {
            let _ = write!(out, ",{:.4}", m.stall_pct(reason));
        }
        out.push('\n');
    }
    out
}

/// The paper's §5.2 headline statistics for a figure's data: mean
/// improvement of `a` over `b` per class and width, as percentages.
pub fn improvement_summary(
    rows: &[BenchSpeedups],
    a: SchedulingModel,
    b: SchedulingModel,
) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "mean improvement of {} over {} (geometric):",
        a.tag(),
        b.tag()
    );
    for &w in &WIDTHS {
        let nn = (mean_improvement(rows, a, b, w, Some(BenchClass::NonNumeric)) - 1.0) * 100.0;
        let nu = (mean_improvement(rows, a, b, w, Some(BenchClass::Numeric)) - 1.0) * 100.0;
        let all = (mean_improvement(rows, a, b, w, None) - 1.0) * 100.0;
        let _ = writeln!(
            out,
            "  issue {w}: non-numeric {nn:+6.1}%   numeric {nu:+6.1}%   all {all:+6.1}%"
        );
    }
    out
}

/// Renders the compile-phase pass-timing histograms of a metrics
/// snapshot as an aligned table: one row per pass that ran, with run
/// counts and wall-clock aggregates. Returns an empty string when no
/// pass timing was recorded (pass names sort alphabetically — the
/// metrics registry is a `BTreeMap` — so the table is deterministic).
pub fn pass_timing_table(metrics: &sentinel_trace::Metrics) -> String {
    const PREFIX: &str = "compile.pass.";
    let mut out = String::new();
    for (name, h) in metrics.histograms() {
        let Some(pass) = name
            .strip_prefix(PREFIX)
            .and_then(|p| p.strip_suffix(".micros"))
        else {
            continue;
        };
        if out.is_empty() {
            let _ = writeln!(
                out,
                "{:<24}{:>10}{:>12}{:>12}{:>12}",
                "pass", "compiles", "total ms", "mean µs", "max µs"
            );
        }
        let _ = writeln!(
            out,
            "{:<24}{:>10}{:>12.2}{:>12.1}{:>12}",
            pass,
            h.count(),
            h.sum() as f64 / 1000.0,
            h.mean(),
            h.max()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::measure_workloads;
    use sentinel_workloads::{generate, WorkloadSpec};

    fn tiny_rows() -> Vec<BenchSpeedups> {
        let mut s = WorkloadSpec::test_default("tiny", 3);
        s.iterations = 10;
        let w = generate(&s);
        measure_workloads(
            &[w],
            &[
                SchedulingModel::RestrictedPercolation,
                SchedulingModel::Sentinel,
            ],
        )
    }

    #[test]
    fn tables_render() {
        let rows = tiny_rows();
        let models = [
            SchedulingModel::RestrictedPercolation,
            SchedulingModel::Sentinel,
        ];
        let t = speedup_table(&rows, &models);
        assert!(t.contains("tiny"));
        assert!(t.contains("Rx2") && t.contains("Sx8"));
        let csv = speedup_csv(&rows, &models);
        assert!(csv.lines().count() >= 7); // header + 6 data rows
        assert!(csv.starts_with("benchmark,"));
        let sum = improvement_summary(
            &rows,
            SchedulingModel::Sentinel,
            SchedulingModel::RestrictedPercolation,
        );
        assert!(sum.contains("issue 8"));
    }

    #[test]
    fn degraded_cells_render_as_err_rows() {
        let mut rows = tiny_rows();
        // Degrade one cell by hand: drop its speedup and record a cause.
        let key = (SchedulingModel::Sentinel, 8);
        rows[0].speedups.remove(&key);
        rows[0].raw.remove(&key);
        rows[0]
            .failed
            .insert(key, "injected fault for tiny [S x8]".into());
        let models = [
            SchedulingModel::RestrictedPercolation,
            SchedulingModel::Sentinel,
        ];
        let t = speedup_table(&rows, &models);
        assert!(t.contains("err"), "{t}");
        let csv = speedup_csv(&rows, &models);
        assert!(csv.contains("tiny,non-numeric,S,8,err"), "{csv}");
        let rep = failed_cell_report(&rows);
        assert!(
            rep.contains("DEGRADED tiny (S x8): injected fault"),
            "{rep}"
        );
        assert_eq!(failed_cell_report(&tiny_rows()), "");
    }

    #[test]
    fn stall_breakdown_renders() {
        let rows = tiny_rows();
        let t = stall_breakdown_table(&rows, SchedulingModel::Sentinel, 8);
        assert!(t.contains("cycle breakdown [S x8]"), "{t}");
        assert!(t.contains("tiny"), "{t}");
        assert!(t.contains("issue"), "{t}");
        let csv = stall_breakdown_csv(&rows, SchedulingModel::Sentinel, 8);
        assert!(
            csv.starts_with("benchmark,model,width,cycles,issue_pct,raw-interlock"),
            "{csv}"
        );
        assert_eq!(csv.lines().count(), 2); // header + one bench
                                            // Issue % plus all stall %s must cover 100% of cycles.
        let m = &rows[0].raw[&(SchedulingModel::Sentinel, 8)];
        let covered: f64 = m.issue_pct()
            + sentinel_trace::StallReason::ALL
                .iter()
                .map(|&r| m.stall_pct(r))
                .sum::<f64>();
        assert!((covered - 100.0).abs() < 1e-6, "covered {covered}");
    }

    /// Guards the reproduce stdout determinism contract against the
    /// serve subsystem: registering every `serve.*` metric (as a
    /// co-resident server would) must not add rows to the pass-timing
    /// table, which filters strictly on the `compile.pass.` prefix.
    #[test]
    fn serve_metrics_do_not_leak_into_pass_timing_table() {
        let mut m = sentinel_trace::Metrics::new();
        m.observe("compile.pass.schedule.micros", 42);
        let baseline = pass_timing_table(&m);

        use sentinel_trace::serve as sm;
        for name in [
            sm::CONNECTIONS,
            sm::REQUESTS,
            sm::RESPONSES_OK,
            sm::REJECTED,
        ] {
            m.count(name, 7);
        }
        for name in [sm::REQUEST_MICROS, sm::QUEUE_WAIT_MICROS] {
            m.observe(name, 1234);
        }
        use sentinel_trace::store as st;
        for name in [
            st::STORE_HIT,
            st::STORE_MISS,
            st::STORE_DISK_HIT,
            st::STORE_EVICT,
            st::STORE_CORRUPT,
            st::STORE_FULL,
        ] {
            m.count(name, 3);
        }
        assert_eq!(pass_timing_table(&m), baseline);
        assert!(baseline.contains("schedule"));
    }
}
