//! Deterministic text serialization of grid [`Measurement`]s for the
//! persistent store.
//!
//! The bench grid spills completed cells into the shared
//! content-addressed store (`sentinel-spec`), whose bodies are UTF-8
//! text. A measurement is all integers, so it serializes exactly: a
//! versioned header line, then one `key=value` line per field in a
//! fixed order — [`encode`] and [`decode`] round-trip bit-for-bit,
//! which is what lets a warm `reproduce --cache-dir` run print stdout
//! byte-identical to a cold one.
//!
//! [`decode`] is strict: a missing line, an extra line, an unknown
//! stall reason, or a version header from a future format all return
//! `Err`, and the grid treats any decode error as a cache miss (the
//! cell is re-measured and the entry overwritten). Stale or foreign
//! bodies — e.g. a serve response JSON sharing a directory — degrade
//! to recomputation, never to a wrong row.

use std::fmt::Write as _;

use sentinel_core::SchedStats;
use sentinel_sim::Stats;
use sentinel_spec::{model_str, parse_model};
use sentinel_trace::event::StallReason;

use crate::runner::Measurement;

/// First line of every encoded measurement.
pub const FORMAT_HEADER: &str = "measurement/v1";

macro_rules! with_stat_fields {
    ($mac:ident) => {
        $mac!(
            cycles,
            issuing_cycles,
            dyn_insns,
            dyn_speculative,
            dyn_checks,
            dyn_confirms,
            tag_sets,
            tag_propagations,
            silent_garbage_writes,
            branches,
            branches_taken,
            loads,
            stores,
            sb_releases,
            sb_cancels,
            sb_forwards,
            sb_stall_cycles,
            recoveries,
            dyn_boosted,
            shadow_commits,
            shadow_squashes
        )
    };
}

macro_rules! with_sched_fields {
    ($mac:ident) => {
        $mac!(
            blocks,
            speculated,
            checks_inserted,
            confirms_inserted,
            pinned_stores,
            renames,
            clear_tags,
            regs_assigned,
            regs_spilled
        )
    };
}

/// Serialize `m` to the versioned text form.
pub fn encode(m: &Measurement) -> String {
    let mut out = String::with_capacity(1024);
    let _ = writeln!(out, "{FORMAT_HEADER}");
    let _ = writeln!(out, "bench={}", m.bench);
    let _ = writeln!(out, "model={}", model_str(m.model));
    let _ = writeln!(out, "width={}", m.width);
    let _ = writeln!(out, "cycles={}", m.cycles);
    macro_rules! emit_stats {
        ($($f:ident),*) => {
            $( let _ = writeln!(out, concat!("stat.", stringify!($f), "={}"), m.stats.$f); )*
        };
    }
    with_stat_fields!(emit_stats);
    for reason in StallReason::ALL {
        let _ = writeln!(
            out,
            "stall.{}={}",
            reason.name(),
            m.stats.stalls.get(reason)
        );
    }
    macro_rules! emit_sched {
        ($($f:ident),*) => {
            $( let _ = writeln!(out, concat!("sched.", stringify!($f), "={}"), m.sched.$f); )*
        };
    }
    with_sched_fields!(emit_sched);
    out
}

/// Parse the text form back into a [`Measurement`].
///
/// # Errors
///
/// A message naming the first malformed, missing, or trailing line;
/// callers treat every error as "not a cached measurement".
pub fn decode(body: &str) -> Result<Measurement, String> {
    let mut lines = body.lines();
    match lines.next() {
        Some(FORMAT_HEADER) => {}
        Some(other) => return Err(format!("not a measurement body (header '{other}')")),
        None => return Err("empty body".to_string()),
    }
    let mut next = |key: &str| -> Result<String, String> {
        let line = lines
            .next()
            .ok_or_else(|| format!("body ends before field '{key}'"))?;
        line.strip_prefix(key)
            .and_then(|rest| rest.strip_prefix('='))
            .map(str::to_string)
            .ok_or_else(|| format!("expected line '{key}=...', got '{line}'"))
    };
    let bench = next("bench")?;
    let model = parse_model(&next("model")?).map_err(|e| e.to_string())?;
    let width = next("width")?
        .parse::<usize>()
        .map_err(|_| "bad width".to_string())?;
    let cycles = next("cycles")?
        .parse::<u64>()
        .map_err(|_| "bad cycles".to_string())?;
    let mut stats = Stats::default();
    macro_rules! read_stats {
        ($($f:ident),*) => {
            $(
                stats.$f = next(concat!("stat.", stringify!($f)))?
                    .parse::<u64>()
                    .map_err(|_| concat!("bad stat.", stringify!($f)).to_string())?;
            )*
        };
    }
    with_stat_fields!(read_stats);
    for reason in StallReason::ALL {
        let n = next(&format!("stall.{}", reason.name()))?
            .parse::<u64>()
            .map_err(|_| format!("bad stall.{}", reason.name()))?;
        stats.stalls.add(reason, n);
    }
    let mut sched = SchedStats::default();
    macro_rules! read_sched {
        ($($f:ident),*) => {
            $(
                sched.$f = next(concat!("sched.", stringify!($f)))?
                    .parse::<usize>()
                    .map_err(|_| concat!("bad sched.", stringify!($f)).to_string())?;
            )*
        };
    }
    with_sched_fields!(read_sched);
    if let Some(extra) = lines.next() {
        return Err(format!(
            "trailing line '{extra}' after a complete measurement"
        ));
    }
    Ok(Measurement {
        bench,
        model,
        width,
        cycles,
        stats,
        sched,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sentinel_core::SchedulingModel;

    fn sample() -> Measurement {
        let mut stats = Stats {
            cycles: 1234,
            issuing_cycles: 1000,
            dyn_insns: 5000,
            dyn_speculative: 700,
            dyn_checks: 40,
            dyn_confirms: 12,
            tag_sets: 3,
            tag_propagations: 9,
            branches: 400,
            branches_taken: 390,
            loads: 800,
            stores: 300,
            sb_forwards: 5,
            ..Default::default()
        };
        stats.stalls.add(StallReason::RawInterlock, 100);
        stats.stalls.add(StallReason::StoreBufferFull, 34);
        let sched = SchedStats {
            blocks: 7,
            speculated: 21,
            checks_inserted: 4,
            renames: 2,
            ..Default::default()
        };
        Measurement {
            bench: "wc".to_string(),
            model: SchedulingModel::Boosting(3),
            width: 4,
            cycles: 1234,
            stats,
            sched,
        }
    }

    #[test]
    fn measurements_round_trip_exactly() {
        let m = sample();
        let body = encode(&m);
        assert!(body.starts_with(FORMAT_HEADER));
        let back = decode(&body).unwrap();
        assert_eq!(back, m);
        // And the encoding itself is stable under a round trip.
        assert_eq!(encode(&back), body);
    }

    #[test]
    fn foreign_and_damaged_bodies_are_errors_not_rows() {
        assert!(decode("").is_err());
        assert!(decode("{\"cycles\":42}").is_err(), "serve JSON is rejected");
        assert!(
            decode("measurement/v2\nbench=wc\n").is_err(),
            "future format"
        );
        let body = encode(&sample());
        // Truncate mid-body.
        let cut = &body[..body.len() / 2];
        assert!(decode(cut).is_err());
        // Append junk.
        let mut extra = body.clone();
        extra.push_str("junk=1\n");
        assert!(decode(&extra).is_err());
        // Swap two lines: strict ordering catches it.
        let mut lines: Vec<&str> = body.lines().collect();
        lines.swap(1, 2);
        assert!(decode(&lines.join("\n")).is_err());
    }
}
