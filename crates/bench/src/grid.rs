//! The evaluation grid engine.
//!
//! The paper's evaluation is a dense grid — 17 benchmarks × several
//! scheduling models × several issue widths, plus ablation knobs. This
//! module turns the schedule → simulate → measure path into an engine
//! instead of a nest of for-loops:
//!
//! * a [`Cell`] names one grid point (bench, model, width, knobs);
//! * a [`GridSession`] owns the shared workload suite (one `Arc`, built
//!   once), a memoizing [`ResultCache`], and
//!   a worker pool size;
//! * [`GridSession::eval`] dedups the requested cells against the
//!   cache, evaluates the missing ones on scoped threads, and returns
//!   outcomes **in request order** — byte-identical output no matter
//!   how threads interleave;
//! * a panicking cell is caught per cell ([`std::panic::catch_unwind`])
//!   and degrades to a [`CellError`] row instead of aborting the run.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use sentinel_core::SchedulingModel;
use sentinel_sim::cache::CacheConfig;
use sentinel_sim::{Engine, ProgramCache};
use sentinel_spec::{fnv64, JobSpec, ProgramRef, Store};
use sentinel_trace::{Metrics, SharedMetrics};
use sentinel_workloads::{suite, Workload};

use crate::cache::{ResultCache, CELL_MICROS};
use crate::runner::{
    prepare, simulate_prepared, MeasureConfig, MeasureError, Measurement, Prepared,
};

/// Marker file a persistent cache directory carries: the fingerprint of
/// the workload suite whose measurements it holds. A directory built
/// from a different suite (regenerated workloads, different seed
/// corpus) must not serve its rows — same cell names, different
/// programs.
const SUITE_FP_FILE: &str = "suite.fp";

/// In-memory entry budget for the grid's persistent store — comfortably
/// above the full paper grid (17 benchmarks × models × widths plus
/// ablations is a few hundred cells).
const GRID_STORE_CAPACITY: usize = 4096;

/// Histogram names for per-pass compile timing, one per canonical pass
/// (trace metrics require `&'static str` names, so the fixed pass
/// vocabulary maps to a fixed metric table).
const PASS_MICROS: [(&str, &str); 10] = [
    ("validate", "compile.pass.validate.micros"),
    ("superblock-prep", "compile.pass.superblock-prep.micros"),
    ("clear-tags", "compile.pass.clear-tags.micros"),
    ("recovery-rename", "compile.pass.recovery-rename.micros"),
    ("liveness", "compile.pass.liveness.micros"),
    ("depgraph", "compile.pass.depgraph.micros"),
    ("reduction", "compile.pass.reduction.micros"),
    ("list-schedule", "compile.pass.list-schedule.micros"),
    (
        "store-separation-retry",
        "compile.pass.store-separation-retry.micros",
    ),
    ("regalloc", "compile.pass.regalloc.micros"),
];

/// The timing-histogram name for a pass, if it is a canonical one.
pub fn pass_metric(pass: &str) -> Option<&'static str> {
    PASS_MICROS
        .iter()
        .find(|(name, _)| *name == pass)
        .map(|(_, metric)| *metric)
}

/// One point of the evaluation grid: a benchmark measured under a
/// scheduling model and a machine/scheduler configuration.
///
/// Two figures (or ablations) asking for the same cell are the same
/// work; the session's cache ensures it is done once. The derived `Ord`
/// gives plans and reports a deterministic order that is independent of
/// request order and thread interleaving.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Cell {
    /// Benchmark name (must exist in the session's workload set).
    pub bench: String,
    /// Scheduling model.
    pub model: SchedulingModel,
    /// Issue width.
    pub width: usize,
    /// Enforce the §3.7 recovery constraints during scheduling.
    pub recovery: bool,
    /// Store-buffer entries (8 on the paper's machine).
    pub store_buffer: usize,
    /// Optional timing-only data cache (`None` = the paper's 100%-hit
    /// assumption).
    pub cache: Option<CacheConfig>,
}

impl Cell {
    /// The paper's §5 configuration of `bench` for a model and width.
    pub fn paper(bench: &str, model: SchedulingModel, width: usize) -> Cell {
        Cell {
            bench: bench.to_string(),
            model,
            width,
            recovery: false,
            store_buffer: 8,
            cache: None,
        }
    }

    /// The paper's *base machine* point for `bench`: issue 1,
    /// restricted percolation. Every speedup in every figure divides by
    /// this cell, so it is the most shared point in the grid.
    pub fn base(bench: &str) -> Cell {
        Cell::paper(bench, SchedulingModel::RestrictedPercolation, 1)
    }

    /// The canonical [`JobSpec`] this cell denotes under `engine`.
    ///
    /// This is the same spec a serve `/v1/simulate` request for the
    /// suite benchmark derives, so one spec hash addresses the cell in
    /// the grid's persistent store, in serve's response cache, and on
    /// the `sentinel simulate --spec` command line.
    pub fn spec(&self, engine: Engine) -> JobSpec {
        let mut spec = JobSpec::simulate(
            ProgramRef::Suite(self.bench.clone()),
            self.model,
            self.width,
        );
        spec.engine = engine;
        spec.recovery = self.recovery;
        spec.store_buffer = self.store_buffer;
        spec.cache = self.cache.clone();
        spec
    }

    /// The measurement configuration this cell denotes.
    pub fn config(&self) -> MeasureConfig {
        let mut cfg = MeasureConfig::paper(self.model, self.width);
        cfg.recovery = self.recovery;
        cfg.store_buffer = self.store_buffer;
        cfg.cache = self.cache.clone();
        cfg
    }
}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{} x{}", self.bench, self.model.tag(), self.width)?;
        if self.recovery {
            write!(f, " +recovery")?;
        }
        if self.store_buffer != 8 {
            write!(f, " sb={}", self.store_buffer)?;
        }
        if let Some(c) = &self.cache {
            write!(f, " cache(p={})", c.miss_penalty)?;
        }
        write!(f, "]")
    }
}

/// Why a cell produced no measurement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellError {
    /// The panic payload (or lookup failure) as text.
    pub message: String,
}

impl CellError {
    /// An error with the given message.
    pub fn new(message: String) -> CellError {
        CellError { message }
    }
}

impl fmt::Display for CellError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for CellError {}

/// A cell's evaluation result: the measurement, or the degraded error
/// row a panicking cell turns into.
pub type CellOutcome = Result<Measurement, CellError>;

/// Test-only fault hook: cells matched by the predicate panic instead
/// of measuring, exercising the degraded-row path.
pub type FaultHook = Arc<dyn Fn(&Cell) -> bool + Send + Sync>;

/// The number of worker threads to use by default: one per available
/// hardware thread (fall back to 1 if parallelism cannot be queried).
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A measurement session over a fixed workload set: shared suite,
/// memoizing cache, and a worker-pool size.
///
/// One session should span an entire `reproduce` invocation so every
/// figure and ablation draws from (and feeds) the same cache.
pub struct GridSession {
    workloads: Arc<Vec<Workload>>,
    by_name: HashMap<String, usize>,
    cache: ResultCache,
    /// Compiled programs, shared by every worker thread and keyed by the
    /// cell's schedule hash ([`JobSpec::schedule_hash`]): one compile —
    /// and, under [`Engine::Turbo`], one decode — per distinct
    /// (bench, model, width, recovery, store-buffer) point per session,
    /// no matter how many cells, ablation knobs, or `--jobs` workers
    /// touch it.
    programs: ProgramCache<Result<Prepared, MeasureError>>,
    jobs: usize,
    engine: Engine,
    verify_passes: bool,
    fault_hook: Option<FaultHook>,
}

impl GridSession {
    /// A session over an explicit workload set.
    pub fn new(workloads: Arc<Vec<Workload>>, jobs: usize) -> GridSession {
        let by_name = workloads
            .iter()
            .enumerate()
            .map(|(i, w)| (w.name.clone(), i))
            .collect();
        let metrics = SharedMetrics::new();
        GridSession {
            workloads,
            by_name,
            cache: ResultCache::new(metrics.clone()),
            programs: ProgramCache::with_metrics(GRID_STORE_CAPACITY, metrics),
            jobs: jobs.max(1),
            engine: Engine::default(),
            verify_passes: false,
            fault_hook: None,
        }
    }

    /// A session over the paper's 17-benchmark suite (built once per
    /// process, shared via `Arc`).
    pub fn suite(jobs: usize) -> GridSession {
        GridSession::new(suite::shared(), jobs)
    }

    /// The worker-pool size.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The execution engine cells run on ([`Engine::Fast`] by default).
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// Selects the execution engine for the whole session. The result
    /// cache is keyed by [`Cell`] only, so pick the engine **before**
    /// evaluating anything — the two engines are held to identical
    /// measurements by the differential suite, but timing summaries
    /// would mix otherwise.
    pub fn set_engine(&mut self, engine: Engine) {
        assert_eq!(
            self.cells_cached(),
            0,
            "set_engine after cells were measured"
        );
        self.engine = engine;
    }

    /// Attaches a persistent store under `dir`: measurements evaluated
    /// by this session spill to disk, and cells already spilled by an
    /// earlier run are served without re-measuring. Pick the directory
    /// **before** evaluating anything, like [`GridSession::set_engine`].
    ///
    /// The directory is fingerprinted against the session's workload
    /// suite ([`GridSession::suite_fingerprint`]); a directory built
    /// from a different suite has its spilled measurements dropped
    /// (recorded `.spec` files are kept — they are suite-independent).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors creating, fingerprinting, or
    /// warm-loading the directory.
    pub fn set_cache_dir(&mut self, dir: &Path) -> std::io::Result<()> {
        assert_eq!(
            self.cells_cached(),
            0,
            "set_cache_dir after cells were measured"
        );
        std::fs::create_dir_all(dir)?;
        let fp = format!("{:016x}", self.suite_fingerprint());
        let marker = dir.join(SUITE_FP_FILE);
        match std::fs::read_to_string(&marker) {
            Ok(prev) if prev.trim() == fp => {}
            Ok(prev) => {
                eprintln!(
                    "grid: cache dir {} holds measurements for a different workload \
                     suite ({} != {fp}); dropping them",
                    dir.display(),
                    prev.trim()
                );
                for entry in std::fs::read_dir(dir)? {
                    let path = entry?.path();
                    if path.extension().and_then(|e| e.to_str()) == Some("sc") {
                        std::fs::remove_file(&path)?;
                    }
                }
                std::fs::write(&marker, format!("{fp}\n"))?;
            }
            Err(_) => std::fs::write(&marker, format!("{fp}\n"))?,
        }
        let metrics = self.cache.metrics().clone();
        let store = Store::new(GRID_STORE_CAPACITY, metrics.clone()).attach_dir(dir)?;
        self.cache = ResultCache::with_store(metrics, store);
        Ok(())
    }

    /// The persistent store's directory, if one is attached.
    pub fn cache_dir(&self) -> Option<&Path> {
        self.cache.store_dir()
    }

    /// FNV-1a fingerprint of the session's workload set — every
    /// program, memory image, and live-out contract, in suite order
    /// ([`Workload::identity_bytes`]). Two sessions share spilled
    /// measurements only when this matches.
    pub fn suite_fingerprint(&self) -> u64 {
        let mut bytes = Vec::new();
        for w in self.workloads.iter() {
            bytes.extend_from_slice(&w.identity_bytes());
        }
        fnv64(&bytes)
    }

    /// Whether cells compile with the inter-pass IR verifier on.
    pub fn verify_passes(&self) -> bool {
        self.verify_passes
    }

    /// Runs every cell's compile with the inter-pass IR verifier on,
    /// even in release builds (`--verify-passes`). Verification changes
    /// no measured number, so the result cache stays keyed by [`Cell`].
    pub fn set_verify_passes(&mut self, on: bool) {
        self.verify_passes = on;
    }

    /// The session's workloads, in suite order.
    pub fn workloads(&self) -> &[Workload] {
        &self.workloads
    }

    /// The workload named `bench`, if present.
    pub fn workload(&self, bench: &str) -> Option<&Workload> {
        self.by_name.get(bench).map(|&i| &self.workloads[i])
    }

    /// The metrics registry (cache hit/miss/evaluated counters and the
    /// per-cell timing histogram).
    pub fn metrics(&self) -> Metrics {
        self.cache.metrics().snapshot()
    }

    /// Number of distinct cells measured so far.
    pub fn cells_cached(&self) -> usize {
        self.cache.len()
    }

    /// Installs a test-only fault hook: any planned cell matched by
    /// `hook` panics instead of measuring. The panic is confined to the
    /// cell, which degrades to a [`CellError`] row.
    pub fn set_fault_hook(&mut self, hook: FaultHook) {
        self.fault_hook = Some(hook);
    }

    /// Evaluates `cells`, returning one outcome per requested cell, in
    /// request order.
    ///
    /// Duplicates (within the request or against previous calls) are
    /// served from the cache; the distinct missing cells are measured
    /// on up to [`GridSession::jobs`] scoped worker threads. Results
    /// are deterministic: outcome order is the request order, and cache
    /// insertion follows the plan order, never thread completion order.
    ///
    /// Calls are expected to come from one coordinating thread at a
    /// time (the at-most-once guarantee is per `eval` pass; two fully
    /// concurrent `eval` calls could race to measure the same missing
    /// cell).
    pub fn eval(&self, cells: &[Cell]) -> Vec<CellOutcome> {
        // Plan: the distinct cells not already cached, in first-request
        // order. Lookups count one hit/miss per *distinct* cell per call.
        let mut seen: HashSet<&Cell> = HashSet::new();
        let mut missing: Vec<Cell> = Vec::new();
        for cell in cells {
            if seen.insert(cell) {
                let key = self.cell_key(cell);
                if self.cache.lookup(cell, key.as_deref()).is_none() {
                    missing.push(cell.clone());
                }
            }
        }

        self.run_missing(&missing);

        cells
            .iter()
            .map(|c| {
                self.cache
                    .peek(c)
                    .expect("evaluated cell must be in the cache")
            })
            .collect()
    }

    /// Evaluates one cell (cached like any other).
    pub fn cell(&self, cell: Cell) -> CellOutcome {
        self.eval(std::slice::from_ref(&cell)).pop().unwrap()
    }

    /// Evaluates one cell and unwraps it, panicking with the cell name
    /// on a degraded row (callers that cannot tolerate error rows).
    pub fn measurement(&self, cell: Cell) -> Measurement {
        let name = cell.to_string();
        self.cell(cell)
            .unwrap_or_else(|e| panic!("{name}: {}", e.message))
    }

    /// Measures the missing cells and commits them to the cache in plan
    /// order.
    fn run_missing(&self, missing: &[Cell]) {
        if missing.is_empty() {
            return;
        }
        let workers = self.jobs.min(missing.len());
        let slots: Vec<OnceLock<CellOutcome>> = missing.iter().map(|_| OnceLock::new()).collect();
        if workers <= 1 {
            for (cell, slot) in missing.iter().zip(&slots) {
                let _ = slot.set(self.run_cell(cell));
            }
        } else {
            let next = AtomicUsize::new(0);
            std::thread::scope(|s| {
                for _ in 0..workers {
                    s.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(cell) = missing.get(i) else { break };
                        let _ = slots[i].set(self.run_cell(cell));
                    });
                }
            });
        }
        for (cell, slot) in missing.iter().zip(slots) {
            let outcome = slot.into_inner().expect("worker filled every slot");
            let key = self.cell_key(cell);
            self.cache.insert(cell.clone(), key.as_deref(), outcome);
        }
    }

    /// The store key for a cell — its canonical spec encoding under the
    /// session engine — when a persistent store is attached (keys are
    /// pointless work otherwise).
    fn cell_key(&self, cell: &Cell) -> Option<String> {
        self.cache
            .has_store()
            .then(|| cell.spec(self.engine).canonical())
    }

    /// Schedules + simulates one cell with panic isolation.
    ///
    /// The compile half goes through the session's shared
    /// [`ProgramCache`]: cells that denote the same schedule point (same
    /// bench/model/width/recovery/store-buffer — the engine and the
    /// timing-only data cache do not affect scheduling) share one
    /// [`Prepared`], and compile-pass metrics are recorded inside the
    /// fill, once per compile rather than once per cell.
    fn run_cell(&self, cell: &Cell) -> CellOutcome {
        let Some(w) = self.workload(&cell.bench) else {
            return Err(CellError::new(format!(
                "unknown benchmark '{}'",
                cell.bench
            )));
        };
        let t0 = Instant::now();
        let hook = self.fault_hook.clone();
        let result = catch_unwind(AssertUnwindSafe(|| {
            if let Some(hook) = &hook {
                if hook(cell) {
                    panic!("injected fault for {cell}");
                }
            }
            let mut cfg = cell.config();
            cfg.engine = self.engine;
            cfg.verify_passes = self.verify_passes;
            let key = cell.spec(self.engine).schedule_hash();
            let metrics = self.cache.metrics().clone();
            let prepared = self.programs.get_or_fill(key, || {
                let p = prepare(w, &cfg)?;
                metrics.count(sentinel_trace::compile::PASS_RUNS, p.passes.total_runs());
                for r in p.passes.reports() {
                    if let Some(name) = pass_metric(r.name) {
                        metrics.observe(name, r.wall.as_micros() as u64);
                    }
                }
                Ok(p)
            });
            match prepared.as_ref() {
                Ok(p) => simulate_prepared(w, &cfg, p),
                Err(e) => Err(e.clone()),
            }
        }));
        self.cache
            .metrics()
            .observe(CELL_MICROS, t0.elapsed().as_micros() as u64);
        match result {
            // Measurement failures (schedule rejection included) degrade
            // to an error row naming the cell — no panic involved.
            Ok(Ok(m)) => Ok(m),
            Ok(Err(e)) => Err(CellError::new(format!("{cell}: {e}"))),
            Err(payload) => Err(CellError::new(panic_message(payload))),
        }
    }
}

/// Renders a panic payload as text (the common `&str` / `String` cases,
/// with a fallback for exotic payloads).
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "cell panicked (non-string payload)".to_string()
    }
}

/// Applies `f` to every item on up to `jobs` scoped worker threads,
/// returning results in item order (a deterministic parallel `map`).
///
/// Used by the ablations whose per-benchmark work is not a pure grid
/// cell (program-mutating transforms such as superblock re-formation or
/// unrolling) but is still embarrassingly parallel. A panic in `f`
/// propagates — unlike grid cells, these transforms are expected to be
/// infallible.
pub fn parallel_map<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = jobs.max(1).min(items.len());
    // Mutex (not OnceLock) slots: OnceLock<R> is only Sync when R: Sync,
    // and results never contend — each slot is written exactly once.
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    if workers <= 1 {
        for (item, slot) in items.iter().zip(&slots) {
            *slot.lock().expect("slot lock") = Some(f(item));
        }
    } else {
        let next = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(item) = items.get(i) else { break };
                    *slots[i].lock().expect("slot lock") = Some(f(item));
                });
            }
        });
    }
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("slot lock")
                .expect("worker filled every slot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{EVAL_COUNTER, HIT_COUNTER, MISS_COUNTER};
    use sentinel_workloads::{generate, WorkloadSpec};

    fn tiny_session(jobs: usize) -> GridSession {
        let mut s = WorkloadSpec::test_default("tiny", 3);
        s.iterations = 10;
        let mut s2 = WorkloadSpec::test_default("tiny2", 5);
        s2.iterations = 10;
        GridSession::new(Arc::new(vec![generate(&s), generate(&s2)]), jobs)
    }

    fn grid_cells() -> Vec<Cell> {
        let mut cells = Vec::new();
        for bench in ["tiny", "tiny2"] {
            cells.push(Cell::base(bench));
            for model in [
                SchedulingModel::RestrictedPercolation,
                SchedulingModel::Sentinel,
            ] {
                for width in [2, 4] {
                    cells.push(Cell::paper(bench, model, width));
                }
            }
        }
        cells
    }

    #[test]
    fn eval_is_deterministic_across_job_counts() {
        let cells = grid_cells();
        let serial = tiny_session(1).eval(&cells);
        let parallel = tiny_session(4).eval(&cells);
        assert_eq!(serial, parallel);
        // And across repeated runs of the same session (pure cache hits).
        let session = tiny_session(4);
        assert_eq!(session.eval(&cells), session.eval(&cells));
    }

    #[test]
    fn cells_are_evaluated_at_most_once() {
        let session = tiny_session(4);
        let cells = grid_cells();
        let doubled: Vec<Cell> = cells.iter().chain(cells.iter()).cloned().collect();
        session.eval(&doubled);
        session.eval(&cells);
        let m = session.metrics();
        assert_eq!(m.counter(EVAL_COUNTER), cells.len() as u64);
        assert_eq!(m.counter(MISS_COUNTER), cells.len() as u64);
        // Second eval: every distinct cell hits.
        assert_eq!(m.counter(HIT_COUNTER), cells.len() as u64);
        assert_eq!(session.cells_cached(), cells.len());
        assert_eq!(
            m.histogram(CELL_MICROS).unwrap().count(),
            cells.len() as u64
        );
    }

    #[test]
    fn faulting_cell_degrades_without_killing_the_run() {
        let mut session = tiny_session(4);
        session.set_fault_hook(Arc::new(|c: &Cell| {
            c.bench == "tiny" && c.model == SchedulingModel::Sentinel && c.width == 4
        }));
        let outcomes = session.eval(&grid_cells());
        let errors: Vec<_> = outcomes.iter().filter(|o| o.is_err()).collect();
        assert_eq!(errors.len(), 1);
        let msg = &errors[0].as_ref().unwrap_err().message;
        assert!(msg.contains("injected fault"), "{msg}");
        assert!(msg.contains("tiny [S x4]"), "{msg}");
        // All other cells still measured.
        assert_eq!(outcomes.iter().filter(|o| o.is_ok()).count(), 9);
    }

    #[test]
    fn schedule_failure_degrades_to_error_row() {
        // A workload whose function the scheduler rejects: the cell must
        // become an error row naming the cell and the cause — without a
        // panic anywhere in the process.
        let mut s = WorkloadSpec::test_default("bad", 3);
        s.iterations = 10;
        let mut w = generate(&s);
        let entry = w.func.entry();
        w.func.block_mut(entry).insns[0].speculative = true;
        let session = GridSession::new(Arc::new(vec![w]), 2);
        let out = session.cell(Cell::base("bad"));
        let msg = out.unwrap_err().message;
        assert!(msg.contains("schedule failed"), "{msg}");
        assert!(msg.contains("bad [R x1]"), "{msg}");
    }

    #[test]
    fn compile_pass_timings_feed_metrics() {
        let session = tiny_session(1);
        session.cell(Cell::base("tiny")).unwrap();
        let m = session.metrics();
        assert!(m.counter(sentinel_trace::compile::PASS_RUNS) > 0);
        let h = m
            .histogram(pass_metric("list-schedule").unwrap())
            .expect("list-schedule timing histogram");
        assert!(h.count() > 0);
        assert!(pass_metric("no-such-pass").is_none());
    }

    #[test]
    fn verify_passes_does_not_change_measurements() {
        let cells = grid_cells();
        let plain = tiny_session(2).eval(&cells);
        let mut verified_session = tiny_session(2);
        verified_session.set_verify_passes(true);
        assert!(verified_session.verify_passes());
        let verified = verified_session.eval(&cells);
        assert_eq!(plain, verified);
    }

    #[test]
    fn unknown_bench_is_an_error_row() {
        let session = tiny_session(2);
        let out = session.cell(Cell::base("nonesuch"));
        assert!(out.unwrap_err().message.contains("unknown benchmark"));
    }

    #[test]
    fn measurement_panics_with_cell_name_on_error() {
        let session = tiny_session(1);
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| {
            session.measurement(Cell::base("nonesuch"))
        }))
        .unwrap_err();
        assert!(panic_message(err).contains("nonesuch"));
    }

    #[test]
    fn parallel_map_preserves_item_order() {
        let items: Vec<u64> = (0..50).collect();
        let doubled = parallel_map(8, &items, |&x| x * 2);
        assert_eq!(doubled, (0..50).map(|x| x * 2).collect::<Vec<_>>());
        assert_eq!(parallel_map(1, &items, |&x| x * 2), doubled);
        assert!(parallel_map(4, &[] as &[u64], |&x| x).is_empty());
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "sentinel-grid-dir-{}-{tag}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn cache_dir_warm_starts_a_second_session() {
        let dir = temp_dir("warm");
        let cells = grid_cells();
        let cold = {
            let mut s = tiny_session(2);
            s.set_cache_dir(&dir).unwrap();
            assert_eq!(s.cache_dir(), Some(dir.as_path()));
            s.eval(&cells)
        };
        let mut warm = tiny_session(2);
        warm.set_cache_dir(&dir).unwrap();
        let again = warm.eval(&cells);
        assert_eq!(cold, again, "disk-served rows match measured rows");
        let m = warm.metrics();
        assert_eq!(m.counter(EVAL_COUNTER), 0, "nothing re-measured");
        assert!(m.counter("store.disk_hit") > 0);
    }

    #[test]
    fn cache_dir_for_a_different_suite_is_dropped() {
        let dir = temp_dir("stale");
        {
            let mut s = tiny_session(1);
            s.set_cache_dir(&dir).unwrap();
            s.eval(&[Cell::base("tiny")]);
        }
        // A session over a different workload set (here: a regenerated
        // "tiny" with more blocks) fingerprints differently, so the
        // stale spills must be dropped and the cell re-measured.
        let mut spec = WorkloadSpec::test_default("tiny", 4);
        spec.iterations = 10;
        let mut other = GridSession::new(Arc::new(vec![generate(&spec)]), 1);
        other.set_cache_dir(&dir).unwrap();
        other.eval(&[Cell::base("tiny")]);
        let m = other.metrics();
        assert_eq!(m.counter(EVAL_COUNTER), 1, "stale row not served");
        assert_eq!(m.counter("store.disk_hit"), 0);
    }

    /// The decode-once contract: across a full grid eval — duplicated
    /// cells, parallel workers, turbo engine — each distinct schedule
    /// point (bench, model, width, recovery, store buffer) is compiled
    /// and decoded exactly once, and cells differing only in the
    /// timing-only data cache share that one compile.
    #[test]
    fn shared_program_cache_compiles_each_schedule_point_once() {
        let mut session = tiny_session(4);
        session.set_engine(Engine::Turbo);
        let mut cells = grid_cells();
        // Differs from an existing cell only by the timing-only data
        // cache, which does not affect scheduling: must be a program hit.
        let mut ablated = Cell::paper("tiny", SchedulingModel::Sentinel, 4);
        ablated.cache = Some(CacheConfig::small_l1(10));
        cells.push(ablated);
        let doubled: Vec<Cell> = cells.iter().chain(cells.iter()).cloned().collect();
        let outcomes = session.eval(&doubled);
        assert!(outcomes.iter().all(|o| o.is_ok()));
        let distinct: HashSet<u64> = cells
            .iter()
            .map(|c| c.spec(Engine::Turbo).schedule_hash())
            .collect();
        assert_eq!(distinct.len(), cells.len() - 1, "ablated cell shares a key");
        let m = session.metrics();
        assert_eq!(
            m.counter(sentinel_trace::sim::SIM_PROGRAM_CACHE_MISS),
            distinct.len() as u64,
            "one compile per distinct schedule point"
        );
        assert_eq!(
            m.counter(sentinel_trace::sim::SIM_PROGRAM_CACHE_HIT),
            1,
            "the cache-ablated cell reuses its sibling's compile"
        );
        // Re-eval: the result cache serves every duplicate before the
        // program cache is ever consulted again.
        session.eval(&cells);
        let m = session.metrics();
        assert_eq!(
            m.counter(sentinel_trace::sim::SIM_PROGRAM_CACHE_MISS),
            distinct.len() as u64
        );
        assert!(
            m.counter(sentinel_trace::compile::PASS_RUNS) > 0,
            "pass metrics recorded once per compile"
        );
    }

    #[test]
    fn cell_spec_round_trips_and_varies_with_knobs() {
        let mut c = Cell::paper("wc", SchedulingModel::Sentinel, 4);
        let spec = c.spec(Engine::Fast);
        let parsed = sentinel_spec::JobSpec::parse(&spec.canonical()).unwrap();
        assert_eq!(parsed, spec);
        let base = spec.content_hash();
        c.recovery = true;
        assert_ne!(c.spec(Engine::Fast).content_hash(), base);
        c.recovery = false;
        assert_ne!(c.spec(Engine::Interpreter).content_hash(), base);
    }

    #[test]
    fn cell_display_names_knobs() {
        let mut c = Cell::paper("grep", SchedulingModel::SentinelStores, 8);
        c.store_buffer = 2;
        c.recovery = true;
        assert_eq!(c.to_string(), "grep [T x8 +recovery sb=2]");
        assert_eq!(Cell::base("wc").to_string(), "wc [R x1]");
    }
}
