//! Memoizing result cache for evaluation-grid cells.
//!
//! `reproduce all` used to re-measure identical (bench, model, width)
//! points in Figure 4, Figure 5, the §5.2 summary, and several
//! ablations. The cache guarantees each [`Cell`] is
//! scheduled and simulated **at most once per process**: every lookup
//! is counted in a [`SharedMetrics`] registry (`grid.cells.hit` /
//! `grid.cells.miss`), so tests can assert the at-most-once contract
//! instead of trusting it.

use std::collections::HashMap;
use std::sync::Mutex;

use sentinel_trace::SharedMetrics;

use crate::grid::{Cell, CellOutcome};

/// Metric name: lookups answered from the cache.
pub const HIT_COUNTER: &str = "grid.cells.hit";
/// Metric name: lookups that required a fresh schedule + simulation.
pub const MISS_COUNTER: &str = "grid.cells.miss";
/// Metric name: cells actually evaluated (== misses; kept separate so a
/// double evaluation of one cell would show up as `evaluated > miss`).
pub const EVAL_COUNTER: &str = "grid.cells.evaluated";
/// Metric name: per-cell wall time histogram, in microseconds.
pub const CELL_MICROS: &str = "grid.cell.micros";

/// Thread-safe memo table from [`Cell`] to its measured outcome.
///
/// Failed cells are cached too: a panicking measurement degrades to an
/// error row once, rather than re-panicking in every figure that asks
/// for the same point.
#[derive(Debug, Default)]
pub struct ResultCache {
    map: Mutex<HashMap<Cell, CellOutcome>>,
    metrics: SharedMetrics,
}

impl ResultCache {
    /// An empty cache aggregating into `metrics`.
    pub fn new(metrics: SharedMetrics) -> ResultCache {
        ResultCache {
            map: Mutex::new(HashMap::new()),
            metrics,
        }
    }

    fn map(&self) -> std::sync::MutexGuard<'_, HashMap<Cell, CellOutcome>> {
        self.map.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Looks `cell` up, bumping the hit or miss counter.
    pub fn lookup(&self, cell: &Cell) -> Option<CellOutcome> {
        let found = self.map().get(cell).cloned();
        self.metrics.count(
            if found.is_some() {
                HIT_COUNTER
            } else {
                MISS_COUNTER
            },
            1,
        );
        found
    }

    /// Looks `cell` up without touching the counters (assembly passes
    /// that re-read cells already accounted for by [`ResultCache::lookup`]).
    pub fn peek(&self, cell: &Cell) -> Option<CellOutcome> {
        self.map().get(cell).cloned()
    }

    /// Stores the outcome of an evaluated cell and bumps the evaluated
    /// counter. Insertion order is the planner's deterministic missing
    /// order, never the thread completion order.
    pub fn insert(&self, cell: Cell, outcome: CellOutcome) {
        self.metrics.count(EVAL_COUNTER, 1);
        self.map().insert(cell, outcome);
    }

    /// Number of distinct cells held.
    pub fn len(&self) -> usize {
        self.map().len()
    }

    /// Whether the cache holds no cells yet.
    pub fn is_empty(&self) -> bool {
        self.map().is_empty()
    }

    /// The metrics registry the cache reports into.
    pub fn metrics(&self) -> &SharedMetrics {
        &self.metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sentinel_core::SchedulingModel;

    fn cell(width: usize) -> Cell {
        Cell::paper("cmp", SchedulingModel::Sentinel, width)
    }

    #[test]
    fn lookup_counts_hits_and_misses() {
        let c = ResultCache::new(SharedMetrics::new());
        assert!(c.is_empty());
        assert!(c.lookup(&cell(2)).is_none());
        c.insert(
            cell(2),
            Err(crate::grid::CellError::new("placeholder".into())),
        );
        assert!(c.lookup(&cell(2)).is_some());
        assert!(c.peek(&cell(2)).is_some());
        assert!(c.lookup(&cell(4)).is_none());
        let m = c.metrics();
        assert_eq!(m.counter(HIT_COUNTER), 1);
        assert_eq!(m.counter(MISS_COUNTER), 2);
        assert_eq!(m.counter(EVAL_COUNTER), 1);
        assert_eq!(c.len(), 1);
    }
}
