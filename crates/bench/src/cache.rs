//! Memoizing result cache for evaluation-grid cells, optionally backed
//! by the shared persistent store.
//!
//! `reproduce all` used to re-measure identical (bench, model, width)
//! points in Figure 4, Figure 5, the §5.2 summary, and several
//! ablations. The cache guarantees each [`Cell`] is
//! scheduled and simulated **at most once per process**: every lookup
//! is counted in a [`SharedMetrics`] registry (`grid.cells.hit` /
//! `grid.cells.miss`), so tests can assert the at-most-once contract
//! instead of trusting it.
//!
//! With a store attached ([`ResultCache::with_store`]) the contract
//! extends across processes: successful measurements write through to
//! a [`sentinel_spec::Store`] keyed by the cell's canonical
//! [`JobSpec`](sentinel_spec::JobSpec) encoding, and a later
//! `reproduce --cache-dir` run warm-starts from its spill directory.
//! Because store keys are spec canonical strings, every spilled cell
//! is also addressable by its spec hash (`sentinel simulate --spec`).
//! Error rows stay process-local on purpose: they are deterministic
//! to recompute (warm stdout still matches cold stdout) and must
//! never pin a since-fixed panic to disk. A stored body that fails to
//! [`decode`](crate::persist::decode) — stale format, foreign writer
//! — counts a miss and is re-measured, never served.

use std::collections::HashMap;
use std::path::Path;
use std::sync::Mutex;

use sentinel_spec::Store;
use sentinel_trace::SharedMetrics;

use crate::grid::{Cell, CellOutcome};
use crate::persist;

/// Metric name: lookups answered from the cache (memory- or
/// disk-served — either way an evaluation was avoided).
pub const HIT_COUNTER: &str = "grid.cells.hit";
/// Metric name: lookups that required a fresh schedule + simulation.
pub const MISS_COUNTER: &str = "grid.cells.miss";
/// Metric name: cells actually evaluated (== misses; kept separate so a
/// double evaluation of one cell would show up as `evaluated > miss`).
pub const EVAL_COUNTER: &str = "grid.cells.evaluated";
/// Metric name: per-cell wall time histogram, in microseconds.
pub const CELL_MICROS: &str = "grid.cell.micros";

/// Thread-safe memo table from [`Cell`] to its measured outcome.
///
/// Failed cells are cached too: a panicking measurement degrades to an
/// error row once, rather than re-panicking in every figure that asks
/// for the same point.
#[derive(Debug)]
pub struct ResultCache {
    map: Mutex<HashMap<Cell, CellOutcome>>,
    store: Option<Store>,
    metrics: SharedMetrics,
}

impl Default for ResultCache {
    fn default() -> ResultCache {
        ResultCache::new(SharedMetrics::new())
    }
}

impl ResultCache {
    /// An empty in-process cache aggregating into `metrics`.
    pub fn new(metrics: SharedMetrics) -> ResultCache {
        ResultCache {
            map: Mutex::new(HashMap::new()),
            store: None,
            metrics,
        }
    }

    /// A cache that writes successful measurements through to `store`
    /// (whose spill directory makes them survive the process). The
    /// store reports under the canonical `store.*` metric family,
    /// into the same registry as the `grid.cells.*` counters.
    pub fn with_store(metrics: SharedMetrics, store: Store) -> ResultCache {
        ResultCache {
            store: Some(store),
            ..ResultCache::new(metrics)
        }
    }

    /// Whether a persistent store is attached.
    pub fn has_store(&self) -> bool {
        self.store.is_some()
    }

    /// The attached store's spill directory, if any.
    pub fn store_dir(&self) -> Option<&Path> {
        self.store.as_ref().and_then(|s| s.dir())
    }

    fn map(&self) -> std::sync::MutexGuard<'_, HashMap<Cell, CellOutcome>> {
        self.map.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Looks `cell` up, bumping the hit or miss counter. `key` is the
    /// cell's canonical spec encoding, consulted in the persistent
    /// store when the typed map misses; a decodable stored body is
    /// promoted into the map and counts as a hit.
    pub fn lookup(&self, cell: &Cell, key: Option<&str>) -> Option<CellOutcome> {
        if let Some(found) = self.map().get(cell).cloned() {
            self.metrics.count(HIT_COUNTER, 1);
            return Some(found);
        }
        if let (Some(store), Some(key)) = (&self.store, key) {
            if let Some(body) = store.lookup(key) {
                match persist::decode(&body) {
                    Ok(m) => {
                        let outcome: CellOutcome = Ok(m);
                        self.map().insert(cell.clone(), outcome.clone());
                        self.metrics.count(HIT_COUNTER, 1);
                        return Some(outcome);
                    }
                    Err(e) => {
                        // Stale or foreign body: re-measure (the
                        // insert overwrites it), never serve it.
                        eprintln!("grid: stored cell {cell}: {e} (re-measuring)");
                    }
                }
            }
        }
        self.metrics.count(MISS_COUNTER, 1);
        None
    }

    /// Looks `cell` up without touching the counters (assembly passes
    /// that re-read cells already accounted for by [`ResultCache::lookup`]).
    pub fn peek(&self, cell: &Cell) -> Option<CellOutcome> {
        self.map().get(cell).cloned()
    }

    /// Stores the outcome of an evaluated cell and bumps the evaluated
    /// counter. Insertion order is the planner's deterministic missing
    /// order, never the thread completion order. Successful
    /// measurements also write through to the persistent store under
    /// `key`; error rows stay in-memory only.
    pub fn insert(&self, cell: Cell, key: Option<&str>, outcome: CellOutcome) {
        self.metrics.count(EVAL_COUNTER, 1);
        if let (Some(store), Some(key), Ok(m)) = (&self.store, key, &outcome) {
            store.insert(key.to_string(), persist::encode(m));
        }
        self.map().insert(cell, outcome);
    }

    /// Number of distinct cells held.
    pub fn len(&self) -> usize {
        self.map().len()
    }

    /// Whether the cache holds no cells yet.
    pub fn is_empty(&self) -> bool {
        self.map().is_empty()
    }

    /// The metrics registry the cache reports into.
    pub fn metrics(&self) -> &SharedMetrics {
        &self.metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sentinel_core::SchedulingModel;
    use sentinel_sim::Engine;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn cell(width: usize) -> Cell {
        Cell::paper("cmp", SchedulingModel::Sentinel, width)
    }

    fn temp_dir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "sentinel-grid-store-{}-{tag}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn lookup_counts_hits_and_misses() {
        let c = ResultCache::new(SharedMetrics::new());
        assert!(c.is_empty());
        assert!(!c.has_store());
        assert!(c.lookup(&cell(2), None).is_none());
        c.insert(
            cell(2),
            None,
            Err(crate::grid::CellError::new("placeholder".into())),
        );
        assert!(c.lookup(&cell(2), None).is_some());
        assert!(c.peek(&cell(2)).is_some());
        assert!(c.lookup(&cell(4), None).is_none());
        let m = c.metrics();
        assert_eq!(m.counter(HIT_COUNTER), 1);
        assert_eq!(m.counter(MISS_COUNTER), 2);
        assert_eq!(m.counter(EVAL_COUNTER), 1);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn measurements_persist_across_cache_instances_but_errors_do_not() {
        let dir = temp_dir("persist");
        let ok_cell = cell(2);
        let ok_key = ok_cell.spec(Engine::Fast).canonical();
        let err_cell = cell(4);
        let err_key = err_cell.spec(Engine::Fast).canonical();
        let measurement = crate::runner::Measurement {
            bench: "cmp".to_string(),
            model: SchedulingModel::Sentinel,
            width: 2,
            cycles: 77,
            stats: sentinel_sim::Stats {
                cycles: 77,
                ..Default::default()
            },
            sched: Default::default(),
        };
        {
            let store = Store::new(64, SharedMetrics::new())
                .attach_dir(&dir)
                .unwrap();
            let c = ResultCache::with_store(SharedMetrics::new(), store);
            assert!(c.has_store());
            c.insert(ok_cell.clone(), Some(&ok_key), Ok(measurement.clone()));
            c.insert(
                err_cell.clone(),
                Some(&err_key),
                Err(crate::grid::CellError::new("boom".into())),
            );
        }
        // A fresh cache over the same directory serves the measurement
        // from disk; the error row was never spilled.
        let metrics = SharedMetrics::new();
        let store = Store::new(64, metrics.clone()).attach_dir(&dir).unwrap();
        let c = ResultCache::with_store(metrics.clone(), store);
        let served = c.lookup(&ok_cell, Some(&ok_key)).unwrap().unwrap();
        assert_eq!(served, measurement);
        assert!(c.lookup(&err_cell, Some(&err_key)).is_none());
        assert_eq!(metrics.counter(HIT_COUNTER), 1);
        assert_eq!(metrics.counter(MISS_COUNTER), 1);
        assert_eq!(metrics.counter("store.disk_hit"), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn undecodable_bodies_degrade_to_misses() {
        let dir = temp_dir("foreign");
        let key = cell(2).spec(Engine::Fast).canonical();
        let metrics = SharedMetrics::new();
        let store = Store::new(64, metrics.clone()).attach_dir(&dir).unwrap();
        // A foreign writer (e.g. serve) stored JSON under our key.
        store.insert(key.clone(), "{\"cycles\":42}".to_string());
        let c = ResultCache::with_store(metrics.clone(), store);
        assert!(c.lookup(&cell(2), Some(&key)).is_none());
        assert_eq!(metrics.counter(MISS_COUNTER), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
