//! Load generator for `sentinel serve`.
//!
//! Thin wrapper over [`sentinel_bench::loadgen`]: N client threads × M
//! requests against a running service, latency percentiles and
//! throughput as JSON on stdout. See the module docs for flags.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(sentinel_bench::loadgen::run(&args));
}
