//! Regenerates the paper's tables and figures.
//!
//! Thin wrapper over [`sentinel_bench::cli`]; the same interface is
//! reachable as `sentinel reproduce ...`. See the module docs there for
//! the subcommand list and `--csv` / `--jobs N` flags.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(sentinel_bench::cli::run(&args));
}
