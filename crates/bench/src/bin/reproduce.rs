//! Regenerates the paper's tables and figures.
//!
//! ```text
//! reproduce fig4                # Figure 4: S vs R speedups
//! reproduce fig5                # Figure 5: G vs S vs T speedups
//! reproduce summary             # §5.2 headline statistics
//! reproduce ablation-sb         # store-buffer size sweep (ours)
//! reproduce ablation-recovery   # recovery-constraint cost (ours)
//! reproduce overhead [width]    # sentinel-insertion overhead (ours)
//! reproduce all                 # everything
//! reproduce fig4 --csv          # CSV instead of aligned text
//! ```

use sentinel_bench::figures::{
    ablation_boosting, ablation_cache, ablation_formation, ablation_pipelining, ablation_recovery,
    ablation_register_pressure, ablation_store_buffer, ablation_unrolling, figure4, figure5,
    issue_sweep, sentinel_overhead,
};
use sentinel_bench::report::{
    improvement_summary, speedup_csv, speedup_table, stall_breakdown_csv, stall_breakdown_table,
};
use sentinel_core::SchedulingModel;

fn print_fig4(csv: bool) {
    let rows = figure4();
    let models = [
        SchedulingModel::RestrictedPercolation,
        SchedulingModel::Sentinel,
    ];
    println!("== Figure 4: sentinel scheduling (S) vs restricted percolation (R) ==");
    println!("speedup over base machine (issue 1, restricted percolation)\n");
    if csv {
        print!("{}", speedup_csv(&rows, &models));
        print!(
            "{}",
            stall_breakdown_csv(&rows, SchedulingModel::Sentinel, 8)
        );
    } else {
        print!("{}", speedup_table(&rows, &models));
        println!();
        print!(
            "{}",
            improvement_summary(
                &rows,
                SchedulingModel::Sentinel,
                SchedulingModel::RestrictedPercolation
            )
        );
        println!();
        print!(
            "{}",
            stall_breakdown_table(&rows, SchedulingModel::RestrictedPercolation, 8)
        );
        println!();
        print!(
            "{}",
            stall_breakdown_table(&rows, SchedulingModel::Sentinel, 8)
        );
    }
}

fn print_fig5(csv: bool) {
    let rows = figure5();
    let models = [
        SchedulingModel::GeneralPercolation,
        SchedulingModel::Sentinel,
        SchedulingModel::SentinelStores,
    ];
    println!("== Figure 5: general percolation (G) vs sentinel (S) vs speculative stores (T) ==");
    println!("speedup over base machine (issue 1, restricted percolation)\n");
    if csv {
        print!("{}", speedup_csv(&rows, &models));
        print!(
            "{}",
            stall_breakdown_csv(&rows, SchedulingModel::SentinelStores, 8)
        );
    } else {
        print!("{}", speedup_table(&rows, &models));
        println!();
        print!(
            "{}",
            improvement_summary(
                &rows,
                SchedulingModel::Sentinel,
                SchedulingModel::GeneralPercolation
            )
        );
        print!(
            "{}",
            improvement_summary(
                &rows,
                SchedulingModel::SentinelStores,
                SchedulingModel::Sentinel
            )
        );
        println!();
        print!(
            "{}",
            stall_breakdown_table(&rows, SchedulingModel::SentinelStores, 8)
        );
    }
}

fn print_summary() {
    let rows4 = figure4();
    println!("== §5.2 headline statistics ==\n");
    print!(
        "{}",
        improvement_summary(
            &rows4,
            SchedulingModel::Sentinel,
            SchedulingModel::RestrictedPercolation
        )
    );
    let rows5 = figure5();
    print!(
        "{}",
        improvement_summary(
            &rows5,
            SchedulingModel::Sentinel,
            SchedulingModel::GeneralPercolation
        )
    );
    print!(
        "{}",
        improvement_summary(
            &rows5,
            SchedulingModel::SentinelStores,
            SchedulingModel::Sentinel
        )
    );
}

fn print_ablation_sb() {
    println!("== Ablation A1: model-T speedup (issue 8) vs store-buffer size ==\n");
    let sizes = [1, 2, 4, 8, 16, 32];
    let data = ablation_store_buffer(&sizes);
    print!("{:<12}", "benchmark");
    for s in sizes {
        print!("{:>8}", format!("N={s}"));
    }
    println!();
    for (bench, series) in data {
        print!("{bench:<12}");
        for (_, sp) in series {
            print!("{sp:>8.2}");
        }
        println!();
    }
}

fn print_ablation_recovery() {
    println!("== Ablation A2: §3.7 recovery-constraint cost (sentinel, issue 8) ==\n");
    println!(
        "{:<12}{:>10}{:>12}{:>8}",
        "benchmark", "plain", "w/recovery", "loss"
    );
    for (bench, plain, rec) in ablation_recovery() {
        let loss = (1.0 - rec / plain) * 100.0;
        println!("{bench:<12}{plain:>10.2}{rec:>12.2}{loss:>7.1}%");
    }
}

fn print_ablation_formation() {
    println!("== Ablation A4: superblock formation's contribution (sentinel, issue 8) ==\n");
    println!(
        "{:<12}{:>12}{:>12}{:>12}",
        "benchmark", "basicblocks", "formed", "original"
    );
    for (bench, split, formed, original) in ablation_formation() {
        println!("{bench:<12}{split:>12.2}{formed:>12.2}{original:>12.2}");
    }
    println!("\n(speedup over the original program's base machine)");
}

fn print_ablation_boosting() {
    println!("== Ablation A5: instruction boosting (§2.3) vs sentinel scheduling (issue 8) ==\n");
    println!(
        "{:<12}{:>8}{:>8}{:>8}{:>8}{:>8}",
        "benchmark", "R", "B(1)", "B(2)", "B(4)", "S"
    );
    for (bench, r, b1, b2, b4, s) in ablation_boosting() {
        println!("{bench:<12}{r:>8.2}{b1:>8.2}{b2:>8.2}{b4:>8.2}{s:>8.2}");
    }
    println!("\n(speedup over the base machine; the paper: sentinel reaches boosting's");
    println!(" performance without shadow register files / shadow store buffers)");
}

fn print_ablation_unrolling() {
    println!("== Ablation A6: superblock loop unrolling (sentinel, issue 8) ==\n");
    let factors = [1, 2, 4];
    print!("{:<12}", "benchmark");
    for k in factors {
        print!("{:>8}", format!("x{k}"));
    }
    println!();
    for (bench, series) in ablation_unrolling(&factors) {
        print!("{bench:<12}");
        for (_, sp) in series {
            print!("{sp:>8.2}");
        }
        println!();
    }
    println!("\n(speedup over the original base machine)");
}

fn print_ablation_cache() {
    println!("== Ablation A7: S-over-R improvement vs cache-miss penalty (issue 8) ==\n");
    let penalties = [0, 10, 20, 40];
    print!("{:<12}", "benchmark");
    for p in penalties {
        print!("{:>8}", format!("p={p}"));
    }
    println!();
    for (bench, series) in ablation_cache(&penalties) {
        print!("{bench:<12}");
        for (_, ratio) in series {
            print!("{:>7.1}%", (ratio - 1.0) * 100.0);
        }
        println!();
    }
    println!("\n(p=0 is the paper's 100%-hit assumption; larger penalties test whether");
    println!(" speculative loads hide miss latency)");
}

fn print_ablation_pipelining() {
    println!("== Ablation A8: modulo scheduling (software pipelining), issue 8 ==\n");
    println!(
        "{:<12}{:>10}{:>11}{:>9}{:>5}{:>8}",
        "kernel", "acyclic", "pipelined", "speedup", "II", "stages"
    );
    for (name, acyclic, pipelined, ii, stages) in ablation_pipelining() {
        println!(
            "{name:<12}{acyclic:>10}{pipelined:>11}{:>8.2}x{ii:>5}{stages:>8}",
            acyclic as f64 / pipelined as f64
        );
    }
    println!("\n(cycles; chain_scan is the while-loop whose pipeline depends on");
    println!(" speculative support — paper §2, Tirumalai et al.)");
}

fn print_ablation_pressure() {
    println!("== Ablation A9: register pressure of the §3.7 recovery constraints ==\n");
    println!(
        "{:<12}{:>10}{:>12}{:>8}",
        "benchmark", "plain", "w/recovery", "extra"
    );
    for (bench, plain, rec) in ablation_register_pressure() {
        println!(
            "{bench:<12}{plain:>10}{rec:>12}{:>8}",
            rec as i64 - plain as i64
        );
    }
    println!("\n(maximum simultaneously live registers in sentinel-scheduled code)");
}

fn print_sweep() {
    println!("== Issue-width sweep: sentinel speedup over the base machine ==\n");
    let widths = [1, 2, 4, 8, 16];
    print!("{:<12}", "benchmark");
    for w in widths {
        print!("{:>8}", format!("w={w}"));
    }
    println!();
    for (bench, series) in issue_sweep(&widths) {
        print!("{bench:<12}");
        for (_, sp) in series {
            print!("{sp:>8.2}");
        }
        println!();
    }
}

fn print_overhead(width: usize) {
    println!("== Ablation A3: sentinel-insertion overhead (issue {width}) ==\n");
    println!(
        "{:<12}{:>10}{:>12}{:>10}",
        "benchmark", "static", "dynamic", "share"
    );
    for (bench, stat, dynamic, share) in sentinel_overhead(width) {
        println!("{bench:<12}{stat:>10}{dynamic:>12}{:>9.2}%", share * 100.0);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let csv = args.iter().any(|a| a == "--csv");
    let cmd = args.first().map(String::as_str).unwrap_or("all");
    match cmd {
        "fig4" => print_fig4(csv),
        "fig5" => print_fig5(csv),
        "summary" => print_summary(),
        "ablation-sb" => print_ablation_sb(),
        "ablation-recovery" => print_ablation_recovery(),
        "ablation-formation" => print_ablation_formation(),
        "ablation-boosting" => print_ablation_boosting(),
        "ablation-unroll" => print_ablation_unrolling(),
        "ablation-cache" => print_ablation_cache(),
        "ablation-pipeline" => print_ablation_pipelining(),
        "sweep" => print_sweep(),
        "ablation-pressure" => print_ablation_pressure(),
        "overhead" => {
            let width = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(2);
            print_overhead(width);
        }
        "all" => {
            print_fig4(false);
            println!();
            print_fig5(false);
            println!();
            print_ablation_sb();
            println!();
            print_ablation_recovery();
            println!();
            print_ablation_formation();
            println!();
            print_ablation_boosting();
            println!();
            print_ablation_unrolling();
            println!();
            print_ablation_cache();
            println!();
            print_ablation_pipelining();
            println!();
            print_ablation_pressure();
            println!();
            print_overhead(2);
            println!();
            print_overhead(8);
        }
        other => {
            eprintln!("unknown command '{other}'");
            eprintln!(
                "usage: reproduce [fig4|fig5|summary|sweep|overhead [width]|ablation-sb|\
                 ablation-recovery|ablation-formation|ablation-boosting|ablation-unroll|\
                 ablation-cache|ablation-pipeline|ablation-pressure|all] [--csv]"
            );
            std::process::exit(2);
        }
    }
}
