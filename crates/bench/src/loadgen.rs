//! Load generator for the compile-and-simulate service.
//!
//! `N` client threads each issue `M` requests against a running
//! `sentinel serve` instance and record per-request latency. The
//! summary — request counts by outcome, p50/p95/p99 latency, and
//! throughput — prints to stdout as one JSON object, so a CI step or
//! an experiment script can parse it directly.
//!
//! Two flags change the transport shape rather than the mix:
//! `--keep-alive` gives each thread one persistent connection (the
//! summary reports the achieved connection-reuse rate), and
//! `--batch K` packs every `K` jobs into one `POST /v1/batch` request
//! (per-job latency percentiles are reported alongside the per-request
//! ones). The default — one `Connection: close` socket per request —
//! is the baseline those flags are measured against.
//!
//! The request mix is deterministic: each thread cycles through suite
//! benchmarks × models by request index. `--spread` widens the cycle so
//! repeated batches measure cache-miss behavior instead of pure hits;
//! the default (spread 0) reuses a small set, measuring the service's
//! `serve.cache.hit` fast path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use sentinel_serve::client::Client;
use sentinel_trace::json::{self, ObjWriter};

/// Exit status for a usage error (unknown flag or bad value).
pub const USAGE_STATUS: i32 = 2;

const USAGE: &str = "usage: loadgen --addr HOST:PORT [--threads N] [--requests M] \
                     [--endpoint simulate|compile|mixed] [--spread N] \
                     [--keep-alive] [--batch K] [--version]";

const SUITE_NAMES: &[&str] = &["wc", "cmp", "grep", "compress", "lex"];
const MODELS: &[&str] = &["S", "R", "G", "T"];

const COMPILE_SOURCE: &str = "\
func @ldgen {
entry:
    li r1, 0
    li r2, 8
loop:
    add r1, r1, r2
    addi r2, r2, -1
    bne r2, r0, loop
done:
    halt
}
";

#[derive(Debug, Clone, PartialEq, Eq)]
struct Cli {
    addr: String,
    threads: usize,
    requests: usize,
    endpoint: String,
    spread: usize,
    keep_alive: bool,
    batch: usize,
    version: bool,
}

fn parse(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        addr: String::new(),
        threads: 8,
        requests: 16,
        endpoint: "mixed".to_string(),
        spread: 0,
        keep_alive: false,
        batch: 0,
        version: false,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut next = |flag: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match a.as_str() {
            "--version" => cli.version = true,
            "--keep-alive" => cli.keep_alive = true,
            "--addr" => cli.addr = next("--addr")?,
            "--threads" => {
                cli.threads = next("--threads")?
                    .parse()
                    .map_err(|_| "--threads requires an unsigned integer".to_string())?;
            }
            "--requests" => {
                cli.requests = next("--requests")?
                    .parse()
                    .map_err(|_| "--requests requires an unsigned integer".to_string())?;
            }
            "--spread" => {
                cli.spread = next("--spread")?
                    .parse()
                    .map_err(|_| "--spread requires an unsigned integer".to_string())?;
            }
            "--batch" => {
                cli.batch = next("--batch")?
                    .parse()
                    .map_err(|_| "--batch requires an unsigned integer".to_string())?;
            }
            "--endpoint" => {
                let e = next("--endpoint")?;
                if !matches!(e.as_str(), "simulate" | "compile" | "mixed") {
                    return Err(format!("unknown endpoint '{e}'"));
                }
                cli.endpoint = e;
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    if !cli.version && cli.addr.is_empty() {
        return Err("--addr is required".to_string());
    }
    Ok(cli)
}

/// The deterministic request for global index `i`: `(path, body)`. The
/// body carries its own `"kind"` field, so the same serialization is
/// valid as an endpoint body or as a `/v1/batch` job entry.
fn request_for(endpoint: &str, i: usize, spread: usize) -> (String, String) {
    let compile = match endpoint {
        "compile" => true,
        "simulate" => false,
        _ => i.is_multiple_of(2),
    };
    let model = MODELS[i % MODELS.len()];
    // `spread` appends a varying width to defeat the response cache;
    // width cycles within the valid range.
    let width = if spread == 0 {
        8
    } else {
        1 + (i / 2) % spread.min(16)
    };
    if compile {
        let mut body = String::new();
        let mut w = ObjWriter::new(&mut body);
        w.str("kind", "compile")
            .str("source", COMPILE_SOURCE)
            .str("model", model)
            .u64("width", width as u64);
        w.close();
        ("/v1/compile".to_string(), body)
    } else {
        let suite = SUITE_NAMES[(i / 2) % SUITE_NAMES.len()];
        let mut body = String::new();
        let mut w = ObjWriter::new(&mut body);
        w.str("kind", "simulate")
            .str("suite", suite)
            .str("model", model)
            .u64("width", width as u64);
        w.close();
        ("/v1/simulate".to_string(), body)
    }
}

/// The batch request covering global job indices `base..base + k`.
fn batch_for(endpoint: &str, base: usize, k: usize, spread: usize) -> String {
    let mut body = String::from("{\"v\":1,\"jobs\":[");
    for j in 0..k {
        if j > 0 {
            body.push(',');
        }
        body.push_str(&request_for(endpoint, base + j, spread).1);
    }
    body.push_str("]}");
    body
}

/// The `p`-th percentile (0–100) of `sorted` (ascending), by
/// nearest-rank.
pub fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[derive(Default)]
struct Tally {
    ok: AtomicU64,
    client_error: AtomicU64,
    server_error: AtomicU64,
    rejected: AtomicU64,
    io_errors: AtomicU64,
    jobs_ok: AtomicU64,
    jobs_failed: AtomicU64,
    connections: AtomicU64,
    requests_sent: AtomicU64,
}

impl Tally {
    fn count_status(&self, status: u16) {
        let bucket = match status {
            200..=299 => &self.ok,
            429 => &self.rejected,
            400..=499 => &self.client_error,
            _ => &self.server_error,
        };
        bucket.fetch_add(1, Ordering::Relaxed);
    }

    /// Credits a batch response's per-job outcomes by parsing its
    /// `results` envelope (an unparseable body counts every job
    /// failed).
    fn count_batch_jobs(&self, body: &str, jobs: usize) {
        let failed = match json::parse(body) {
            Ok(v) => match v.get("results").and_then(|r| r.as_array()) {
                Some(results) => results
                    .iter()
                    .filter(|entry| entry.get("error").is_some())
                    .count(),
                None => jobs,
            },
            Err(_) => jobs,
        };
        self.jobs_failed.fetch_add(failed as u64, Ordering::Relaxed);
        self.jobs_ok
            .fetch_add(jobs.saturating_sub(failed) as u64, Ordering::Relaxed);
    }
}

/// One thread's share of the run: `requests` requests (each carrying
/// `batch` jobs when batching) on its own client. Returns
/// `(request_latencies, per_job_latencies)` in microseconds.
fn drive(cli: &Cli, thread: usize, tally: &Tally) -> (Vec<u64>, Vec<u64>) {
    let mut client = Client::builder(&cli.addr)
        .keep_alive(cli.keep_alive)
        .build();
    let jobs_per_request = cli.batch.max(1);
    let mut request_latencies = Vec::with_capacity(cli.requests);
    let mut job_latencies = Vec::with_capacity(cli.requests * jobs_per_request);
    for i in 0..cli.requests {
        let base = (thread * cli.requests + i) * jobs_per_request;
        let (path, body) = if cli.batch > 0 {
            (
                "/v1/batch".to_string(),
                batch_for(&cli.endpoint, base, cli.batch, cli.spread),
            )
        } else {
            request_for(&cli.endpoint, base, cli.spread)
        };
        let t0 = Instant::now();
        match client.post_json(&path, &body) {
            Ok(resp) => {
                let micros = t0.elapsed().as_micros() as u64;
                request_latencies.push(micros);
                // Jobs in one batch ran concurrently; attribute the
                // request's wall time to each of its jobs.
                job_latencies.extend(std::iter::repeat_n(micros, jobs_per_request));
                tally.count_status(resp.status);
                if cli.batch > 0 && resp.status == 200 {
                    tally.count_batch_jobs(&resp.body, jobs_per_request);
                } else if resp.status < 300 {
                    tally.jobs_ok.fetch_add(1, Ordering::Relaxed);
                } else {
                    tally
                        .jobs_failed
                        .fetch_add(jobs_per_request as u64, Ordering::Relaxed);
                }
            }
            Err(_) => {
                tally.io_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    tally
        .connections
        .fetch_add(client.connections_opened(), Ordering::Relaxed);
    tally
        .requests_sent
        .fetch_add(client.requests_sent(), Ordering::Relaxed);
    (request_latencies, job_latencies)
}

/// Runs the load generator (program name already stripped) and returns
/// the process exit status.
pub fn run(args: &[String]) -> i32 {
    let cli = match parse(args) {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("loadgen: {msg}");
            eprintln!("{USAGE}");
            return USAGE_STATUS;
        }
    };
    if cli.version {
        println!("loadgen {}", env!("CARGO_PKG_VERSION"));
        return 0;
    }

    let tally = Arc::new(Tally::default());
    let started = Instant::now();
    let mut latencies: Vec<u64> = Vec::with_capacity(cli.threads * cli.requests);
    let mut job_latencies: Vec<u64> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cli.threads)
            .map(|t| {
                let tally = Arc::clone(&tally);
                let cli = cli.clone();
                scope.spawn(move || drive(&cli, t, &tally))
            })
            .collect();
        for h in handles {
            let (reqs, jobs) = h.join().unwrap_or_default();
            latencies.extend(reqs);
            job_latencies.extend(jobs);
        }
    });
    let wall = started.elapsed();

    latencies.sort_unstable();
    job_latencies.sort_unstable();
    let total = (cli.threads * cli.requests) as u64;
    let answered = latencies.len() as u64;
    let throughput = if wall.as_secs_f64() > 0.0 {
        answered as f64 / wall.as_secs_f64()
    } else {
        0.0
    };
    let connections = tally.connections.load(Ordering::Relaxed);
    let requests_sent = tally.requests_sent.load(Ordering::Relaxed);
    // One connection per request is a reuse rate of 0; one connection
    // for a thread's whole run approaches 1.
    let reuse_rate = if requests_sent > 0 {
        1.0 - (connections.min(requests_sent) as f64 / requests_sent as f64)
    } else {
        0.0
    };

    let mut out = String::new();
    let mut w = ObjWriter::new(&mut out);
    w.u64("threads", cli.threads as u64)
        .u64("requests_per_thread", cli.requests as u64)
        .u64("batch", cli.batch as u64)
        .bool("keep_alive", cli.keep_alive)
        .u64("total", total)
        .u64("ok", tally.ok.load(Ordering::Relaxed))
        .u64("rejected", tally.rejected.load(Ordering::Relaxed))
        .u64("client_error", tally.client_error.load(Ordering::Relaxed))
        .u64("server_error", tally.server_error.load(Ordering::Relaxed))
        .u64("io_errors", tally.io_errors.load(Ordering::Relaxed))
        .u64("jobs_ok", tally.jobs_ok.load(Ordering::Relaxed))
        .u64("jobs_failed", tally.jobs_failed.load(Ordering::Relaxed))
        .u64("connections", connections)
        .raw("reuse_rate", &format!("{reuse_rate:.3}"))
        .u64("wall_micros", wall.as_micros() as u64)
        .raw("throughput_rps", &format!("{throughput:.1}"))
        .u64("p50_micros", percentile(&latencies, 50.0))
        .u64("p95_micros", percentile(&latencies, 95.0))
        .u64("p99_micros", percentile(&latencies, 99.0))
        .u64("job_p50_micros", percentile(&job_latencies, 50.0))
        .u64("job_p95_micros", percentile(&job_latencies, 95.0))
        .u64("job_p99_micros", percentile(&job_latencies, 99.0));
    w.close();
    println!("{out}");

    // Transport failures are a load-generator failure; service-level
    // errors (4xx/5xx/429) are data, reported in the JSON.
    if tally.io_errors.load(Ordering::Relaxed) > 0 {
        1
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn percentile_is_nearest_rank() {
        assert_eq!(percentile(&[], 50.0), 0);
        assert_eq!(percentile(&[7], 50.0), 7);
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50.0), 50);
        assert_eq!(percentile(&v, 95.0), 95);
        assert_eq!(percentile(&v, 99.0), 99);
        assert_eq!(percentile(&v, 100.0), 100);
    }

    #[test]
    fn parses_and_validates_flags() {
        let cli = parse(&args(&["--addr", "127.0.0.1:1", "--threads", "2"])).unwrap();
        assert_eq!(cli.threads, 2);
        assert_eq!(cli.requests, 16);
        assert!(!cli.keep_alive);
        assert_eq!(cli.batch, 0);
        let cli = parse(&args(&["--addr", "x", "--keep-alive", "--batch", "16"])).unwrap();
        assert!(cli.keep_alive);
        assert_eq!(cli.batch, 16);
        assert!(parse(&args(&[])).is_err());
        assert!(parse(&args(&["--addr", "x", "--endpoint", "nope"])).is_err());
        assert!(parse(&args(&["--addr", "x", "--batch", "some"])).is_err());
        assert!(parse(&args(&["--version"])).is_ok());
        assert_eq!(run(&args(&["--bogus"])), USAGE_STATUS);
    }

    #[test]
    fn request_mix_is_deterministic_and_parseable() {
        for i in 0..16 {
            let (path, body) = request_for("mixed", i, 0);
            assert!(path == "/v1/compile" || path == "/v1/simulate");
            sentinel_trace::json::parse(&body).unwrap();
            let (path2, body2) = request_for("mixed", i, 0);
            assert_eq!((path, body), (path2, body2));
        }
        let (_, a) = request_for("simulate", 0, 0);
        let (_, b) = request_for("simulate", 0, 8);
        assert_ne!(a, b);
    }

    #[test]
    fn batch_bodies_parse_as_the_server_expects() {
        let body = batch_for("mixed", 0, 4, 0);
        let batch = sentinel_serve::api::BatchRequest::from_json(&body, 64).unwrap();
        assert_eq!(batch.jobs.len(), 4);
        // Deterministic: the same indices produce the same body.
        assert_eq!(body, batch_for("mixed", 0, 4, 0));
    }

    #[test]
    fn batch_job_outcomes_are_read_from_the_envelope() {
        let tally = Tally::default();
        let body = r#"{"v":1,"results":[{"x":1},{"status":400,"error":"nope"},{"y":2}]}"#;
        tally.count_batch_jobs(body, 3);
        assert_eq!(tally.jobs_ok.load(Ordering::Relaxed), 2);
        assert_eq!(tally.jobs_failed.load(Ordering::Relaxed), 1);
        tally.count_batch_jobs("not json", 2);
        assert_eq!(tally.jobs_failed.load(Ordering::Relaxed), 3);
    }
}
