//! Minimal self-contained timing harness for the `benches/` binaries.
//!
//! The workspace must build with no network access, so the benches use
//! this plain `std::time::Instant` loop instead of an external framework.
//! It reports min / median / mean wall time per iteration, which is
//! enough to compare pipeline variants and spot regressions by eye.

use std::time::{Duration, Instant};

/// Wall-time summary for one benchmark function.
#[derive(Debug, Clone, Copy)]
pub struct Timing {
    /// Fastest observed iteration.
    pub min: Duration,
    /// Median iteration.
    pub median: Duration,
    /// Arithmetic mean over all timed iterations.
    pub mean: Duration,
    /// Number of timed iterations.
    pub iters: usize,
}

/// Times `f` for `iters` iterations (after one untimed warmup) and
/// returns the summary. The closure's result is returned from a black-box
/// sink so the optimizer cannot delete the work.
pub fn time_fn<T>(iters: usize, mut f: impl FnMut() -> T) -> Timing {
    assert!(iters > 0);
    std::hint::black_box(f()); // warmup
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        std::hint::black_box(f());
        samples.push(t0.elapsed());
    }
    samples.sort();
    let total: Duration = samples.iter().sum();
    Timing {
        min: samples[0],
        median: samples[samples.len() / 2],
        mean: total / iters as u32,
        iters,
    }
}

/// Times several functions in alternating rounds (fn 0, fn 1, …, then
/// round two in the same order), so a transient contention spike on a
/// busy host hits every candidate alike instead of biasing whichever
/// one happened to own that window. The per-function `min` is then a
/// comparable estimate of uncontended time. Returns one summary per
/// function, in order.
pub fn time_interleaved(rounds: usize, fns: &mut [Box<dyn FnMut() + '_>]) -> Vec<Timing> {
    assert!(rounds > 0 && !fns.is_empty());
    for f in fns.iter_mut() {
        f(); // warmup
    }
    let mut samples = vec![Vec::with_capacity(rounds); fns.len()];
    for _ in 0..rounds {
        for (k, f) in fns.iter_mut().enumerate() {
            let t0 = Instant::now();
            f();
            samples[k].push(t0.elapsed());
        }
    }
    samples
        .into_iter()
        .map(|mut s| {
            s.sort();
            let total: Duration = s.iter().sum();
            Timing {
                min: s[0],
                median: s[s.len() / 2],
                mean: total / rounds as u32,
                iters: rounds,
            }
        })
        .collect()
}

/// Times one call of `f`, returning its result and the wall time.
///
/// For expensive once-per-run work — a full figure grid under the
/// evaluation engine — where the `time_fn` warmup-plus-iterations
/// protocol would defeat the engine's memoizing cache (the second call
/// is all cache hits and measures nothing).
pub fn time_once<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t0 = Instant::now();
    let out = std::hint::black_box(f());
    (out, t0.elapsed())
}

/// Times `f` and prints one aligned row: `name  min  median  mean`.
pub fn bench<T>(name: &str, iters: usize, f: impl FnMut() -> T) -> Timing {
    let t = time_fn(iters, f);
    println!(
        "{name:<36} min {:>10.1?}  median {:>10.1?}  mean {:>10.1?}  ({iters} iters)",
        t.min, t.median, t.mean
    );
    t
}

/// Prints a section header for a group of related rows.
pub fn group(name: &str) {
    println!("\n-- {name} --");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_once_runs_exactly_once() {
        let mut n = 0u64;
        let (out, d) = time_once(|| {
            n += 1;
            42
        });
        assert_eq!((out, n), (42, 1));
        assert!(d <= Duration::from_secs(5));
    }

    #[test]
    fn time_interleaved_rounds_every_fn() {
        let (mut a, mut b) = (0u64, 0u64);
        let mut fns: Vec<Box<dyn FnMut() + '_>> = vec![Box::new(|| a += 1), Box::new(|| b += 1)];
        let ts = time_interleaved(4, &mut fns);
        drop(fns);
        assert_eq!(ts.len(), 2);
        assert_eq!((a, b), (5, 5)); // warmup + 4 rounds each
        assert_eq!(ts[0].iters, 4);
    }

    #[test]
    fn time_fn_counts_iterations() {
        let mut n = 0u64;
        let t = time_fn(5, || {
            n += 1;
            n
        });
        assert_eq!(t.iters, 5);
        assert_eq!(n, 6); // warmup + 5 timed
        assert!(t.min <= t.median && t.median <= t.mean.max(t.median));
    }
}
