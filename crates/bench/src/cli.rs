//! The `reproduce` command-line interface.
//!
//! Shared between the standalone `reproduce` binary and the
//! `sentinel reproduce` subcommand. One [`GridSession`] spans the whole
//! invocation, so `reproduce all` evaluates each distinct
//! (bench, model, width, knobs) cell exactly once — figures and
//! ablations that used to re-measure the same points now share a
//! memoized grid evaluated on `--jobs N` worker threads.
//!
//! ```text
//! reproduce fig4                # Figure 4: S vs R speedups
//! reproduce fig5                # Figure 5: G vs S vs T speedups
//! reproduce summary             # §5.2 headline statistics
//! reproduce ablation-sb         # store-buffer size sweep (ours)
//! reproduce ablation-recovery   # recovery-constraint cost (ours)
//! reproduce overhead [width]    # sentinel-insertion overhead (ours)
//! reproduce all                 # everything
//! reproduce fig4 --csv          # CSV instead of aligned text
//! reproduce all --jobs 4        # evaluate the grid on 4 worker threads
//! reproduce all --cache-dir D   # persist measurements; warm-start next run
//! ```
//!
//! Output determinism contract: stdout is byte-identical for any
//! `--jobs` value, across repeated runs, and between a cold and a warm
//! `--cache-dir` run; the grid/timing/store summary goes to stderr.

use sentinel_core::SchedulingModel;
use sentinel_sim::Engine;

use crate::cache::{EVAL_COUNTER, HIT_COUNTER};
use crate::figures::{
    ablation_boosting, ablation_cache, ablation_formation, ablation_pipelining, ablation_recovery,
    ablation_register_pressure, ablation_store_buffer, ablation_unrolling, figure4, figure5,
    issue_sweep, sentinel_overhead,
};
use crate::grid::{default_jobs, GridSession};
use crate::report::{
    failed_cell_report, improvement_summary, pass_timing_table, speedup_csv, speedup_table,
    stall_breakdown_csv, stall_breakdown_table,
};

/// Exit status for a usage error (unknown subcommand or flag).
pub const USAGE_STATUS: i32 = 2;

const USAGE: &str = "usage: reproduce [fig4|fig5|summary|sweep|overhead [width]|ablation-sb|\
                     ablation-recovery|ablation-formation|ablation-boosting|ablation-unroll|\
                     ablation-cache|ablation-pipeline|ablation-pressure|all] [--csv] [--jobs N] \
                     [--engine interpreter|fast|turbo] [--verify-passes] [--cache-dir DIR]";

/// Parsed command line.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Cli {
    cmd: String,
    /// Positional argument after the command (`overhead [width]`).
    width: Option<usize>,
    csv: bool,
    jobs: usize,
    engine: Engine,
    verify_passes: bool,
    cache_dir: Option<String>,
}

/// Parses arguments (the part after the program name / subcommand).
/// Returns `Err(message)` on a malformed or unknown flag.
fn parse(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        cmd: String::new(),
        width: None,
        csv: false,
        jobs: default_jobs(),
        engine: Engine::default(),
        verify_passes: false,
        cache_dir: None,
    };
    let mut positional: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--csv" => cli.csv = true,
            "--verify-passes" => cli.verify_passes = true,
            "--jobs" => {
                let v = it.next().ok_or("--jobs requires a value")?;
                cli.jobs = v
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("bad --jobs '{v}' (want a positive integer)"))?;
            }
            "--engine" => {
                let v = it.next().ok_or("--engine requires a value")?;
                cli.engine = v.parse::<Engine>()?;
            }
            "--cache-dir" => {
                let v = it.next().ok_or("--cache-dir requires a directory")?;
                cli.cache_dir = Some(v.clone());
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag '{flag}'")),
            pos => positional.push(pos),
        }
    }
    cli.cmd = positional.first().unwrap_or(&"all").to_string();
    if let Some(w) = positional.get(1) {
        cli.width = Some(w.parse::<usize>().map_err(|_| format!("bad width '{w}'"))?);
    }
    if positional.len() > 2 {
        return Err(format!("unexpected argument '{}'", positional[2]));
    }
    Ok(cli)
}

fn print_fig4(session: &GridSession, csv: bool) {
    let rows = figure4(session);
    let models = [
        SchedulingModel::RestrictedPercolation,
        SchedulingModel::Sentinel,
    ];
    println!("== Figure 4: sentinel scheduling (S) vs restricted percolation (R) ==");
    println!("speedup over base machine (issue 1, restricted percolation)\n");
    if csv {
        print!("{}", speedup_csv(&rows, &models));
        print!(
            "{}",
            stall_breakdown_csv(&rows, SchedulingModel::Sentinel, 8)
        );
    } else {
        print!("{}", speedup_table(&rows, &models));
        println!();
        print!(
            "{}",
            improvement_summary(
                &rows,
                SchedulingModel::Sentinel,
                SchedulingModel::RestrictedPercolation
            )
        );
        println!();
        print!(
            "{}",
            stall_breakdown_table(&rows, SchedulingModel::RestrictedPercolation, 8)
        );
        println!();
        print!(
            "{}",
            stall_breakdown_table(&rows, SchedulingModel::Sentinel, 8)
        );
    }
    print!("{}", failed_cell_report(&rows));
}

fn print_fig5(session: &GridSession, csv: bool) {
    let rows = figure5(session);
    let models = [
        SchedulingModel::GeneralPercolation,
        SchedulingModel::Sentinel,
        SchedulingModel::SentinelStores,
    ];
    println!("== Figure 5: general percolation (G) vs sentinel (S) vs speculative stores (T) ==");
    println!("speedup over base machine (issue 1, restricted percolation)\n");
    if csv {
        print!("{}", speedup_csv(&rows, &models));
        print!(
            "{}",
            stall_breakdown_csv(&rows, SchedulingModel::SentinelStores, 8)
        );
    } else {
        print!("{}", speedup_table(&rows, &models));
        println!();
        print!(
            "{}",
            improvement_summary(
                &rows,
                SchedulingModel::Sentinel,
                SchedulingModel::GeneralPercolation
            )
        );
        print!(
            "{}",
            improvement_summary(
                &rows,
                SchedulingModel::SentinelStores,
                SchedulingModel::Sentinel
            )
        );
        println!();
        print!(
            "{}",
            stall_breakdown_table(&rows, SchedulingModel::SentinelStores, 8)
        );
    }
    print!("{}", failed_cell_report(&rows));
}

fn print_summary(session: &GridSession) {
    let rows4 = figure4(session);
    println!("== §5.2 headline statistics ==\n");
    print!(
        "{}",
        improvement_summary(
            &rows4,
            SchedulingModel::Sentinel,
            SchedulingModel::RestrictedPercolation
        )
    );
    let rows5 = figure5(session);
    print!(
        "{}",
        improvement_summary(
            &rows5,
            SchedulingModel::Sentinel,
            SchedulingModel::GeneralPercolation
        )
    );
    print!(
        "{}",
        improvement_summary(
            &rows5,
            SchedulingModel::SentinelStores,
            SchedulingModel::Sentinel
        )
    );
}

fn print_ablation_sb(session: &GridSession) {
    println!("== Ablation A1: model-T speedup (issue 8) vs store-buffer size ==\n");
    let sizes = [1, 2, 4, 8, 16, 32];
    let data = ablation_store_buffer(session, &sizes);
    print!("{:<12}", "benchmark");
    for s in sizes {
        print!("{:>8}", format!("N={s}"));
    }
    println!();
    for (bench, series) in data {
        print!("{bench:<12}");
        for (_, sp) in series {
            print!("{sp:>8.2}");
        }
        println!();
    }
}

fn print_ablation_recovery(session: &GridSession) {
    println!("== Ablation A2: §3.7 recovery-constraint cost (sentinel, issue 8) ==\n");
    println!(
        "{:<12}{:>10}{:>12}{:>8}",
        "benchmark", "plain", "w/recovery", "loss"
    );
    for (bench, plain, rec) in ablation_recovery(session) {
        let loss = (1.0 - rec / plain) * 100.0;
        println!("{bench:<12}{plain:>10.2}{rec:>12.2}{loss:>7.1}%");
    }
}

fn print_ablation_formation(session: &GridSession) {
    println!("== Ablation A4: superblock formation's contribution (sentinel, issue 8) ==\n");
    println!(
        "{:<12}{:>12}{:>12}{:>12}",
        "benchmark", "basicblocks", "formed", "original"
    );
    for (bench, split, formed, original) in ablation_formation(session) {
        println!("{bench:<12}{split:>12.2}{formed:>12.2}{original:>12.2}");
    }
    println!("\n(speedup over the original program's base machine)");
}

fn print_ablation_boosting(session: &GridSession) {
    println!("== Ablation A5: instruction boosting (§2.3) vs sentinel scheduling (issue 8) ==\n");
    println!(
        "{:<12}{:>8}{:>8}{:>8}{:>8}{:>8}",
        "benchmark", "R", "B(1)", "B(2)", "B(4)", "S"
    );
    for (bench, r, b1, b2, b4, s) in ablation_boosting(session) {
        println!("{bench:<12}{r:>8.2}{b1:>8.2}{b2:>8.2}{b4:>8.2}{s:>8.2}");
    }
    println!("\n(speedup over the base machine; the paper: sentinel reaches boosting's");
    println!(" performance without shadow register files / shadow store buffers)");
}

fn print_ablation_unrolling(session: &GridSession) {
    println!("== Ablation A6: superblock loop unrolling (sentinel, issue 8) ==\n");
    let factors = [1, 2, 4];
    print!("{:<12}", "benchmark");
    for k in factors {
        print!("{:>8}", format!("x{k}"));
    }
    println!();
    for (bench, series) in ablation_unrolling(session, &factors) {
        print!("{bench:<12}");
        for (_, sp) in series {
            print!("{sp:>8.2}");
        }
        println!();
    }
    println!("\n(speedup over the original base machine)");
}

fn print_ablation_cache(session: &GridSession) {
    println!("== Ablation A7: S-over-R improvement vs cache-miss penalty (issue 8) ==\n");
    let penalties = [0, 10, 20, 40];
    print!("{:<12}", "benchmark");
    for p in penalties {
        print!("{:>8}", format!("p={p}"));
    }
    println!();
    for (bench, series) in ablation_cache(session, &penalties) {
        print!("{bench:<12}");
        for (_, ratio) in series {
            print!("{:>7.1}%", (ratio - 1.0) * 100.0);
        }
        println!();
    }
    println!("\n(p=0 is the paper's 100%-hit assumption; larger penalties test whether");
    println!(" speculative loads hide miss latency)");
}

fn print_ablation_pipelining(session: &GridSession) {
    println!("== Ablation A8: modulo scheduling (software pipelining), issue 8 ==\n");
    println!(
        "{:<12}{:>10}{:>11}{:>9}{:>5}{:>8}",
        "kernel", "acyclic", "pipelined", "speedup", "II", "stages"
    );
    for (name, acyclic, pipelined, ii, stages) in ablation_pipelining(session.jobs()) {
        println!(
            "{name:<12}{acyclic:>10}{pipelined:>11}{:>8.2}x{ii:>5}{stages:>8}",
            acyclic as f64 / pipelined as f64
        );
    }
    println!("\n(cycles; chain_scan is the while-loop whose pipeline depends on");
    println!(" speculative support — paper §2, Tirumalai et al.)");
}

fn print_ablation_pressure(session: &GridSession) {
    println!("== Ablation A9: register pressure of the §3.7 recovery constraints ==\n");
    println!(
        "{:<12}{:>10}{:>12}{:>8}",
        "benchmark", "plain", "w/recovery", "extra"
    );
    for (bench, plain, rec) in ablation_register_pressure(session) {
        println!(
            "{bench:<12}{plain:>10}{rec:>12}{:>8}",
            rec as i64 - plain as i64
        );
    }
    println!("\n(maximum simultaneously live registers in sentinel-scheduled code)");
}

fn print_sweep(session: &GridSession) {
    println!("== Issue-width sweep: sentinel speedup over the base machine ==\n");
    let widths = [1, 2, 4, 8, 16];
    print!("{:<12}", "benchmark");
    for w in widths {
        print!("{:>8}", format!("w={w}"));
    }
    println!();
    for (bench, series) in issue_sweep(session, &widths) {
        print!("{bench:<12}");
        for (_, sp) in series {
            print!("{sp:>8.2}");
        }
        println!();
    }
}

fn print_overhead(session: &GridSession, width: usize) {
    println!("== Ablation A3: sentinel-insertion overhead (issue {width}) ==\n");
    println!(
        "{:<12}{:>10}{:>12}{:>10}",
        "benchmark", "static", "dynamic", "share"
    );
    for (bench, stat, dynamic, share) in sentinel_overhead(session, width) {
        println!("{bench:<12}{stat:>10}{dynamic:>12}{:>9.2}%", share * 100.0);
    }
}

/// Runs the reproduce CLI over `args` (program name already stripped)
/// and returns the process exit status. Unknown subcommands and
/// malformed flags print usage to stderr and return [`USAGE_STATUS`].
pub fn run(args: &[String]) -> i32 {
    if args.iter().any(|a| a == "--version") {
        println!("reproduce {}", env!("CARGO_PKG_VERSION"));
        return 0;
    }
    let cli = match parse(args) {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("{USAGE}");
            return USAGE_STATUS;
        }
    };

    let mut session = GridSession::suite(cli.jobs);
    session.set_engine(cli.engine);
    session.set_verify_passes(cli.verify_passes);
    if let Some(dir) = &cli.cache_dir {
        if let Err(e) = session.set_cache_dir(std::path::Path::new(dir)) {
            eprintln!("error: cache dir '{dir}': {e}");
            return 1;
        }
    }
    let t0 = std::time::Instant::now();
    match cli.cmd.as_str() {
        "fig4" => print_fig4(&session, cli.csv),
        "fig5" => print_fig5(&session, cli.csv),
        "summary" => print_summary(&session),
        "ablation-sb" => print_ablation_sb(&session),
        "ablation-recovery" => print_ablation_recovery(&session),
        "ablation-formation" => print_ablation_formation(&session),
        "ablation-boosting" => print_ablation_boosting(&session),
        "ablation-unroll" => print_ablation_unrolling(&session),
        "ablation-cache" => print_ablation_cache(&session),
        "ablation-pipeline" => print_ablation_pipelining(&session),
        "sweep" => print_sweep(&session),
        "ablation-pressure" => print_ablation_pressure(&session),
        "overhead" => print_overhead(&session, cli.width.unwrap_or(2)),
        "all" => {
            print_fig4(&session, false);
            println!();
            print_fig5(&session, false);
            println!();
            print_ablation_sb(&session);
            println!();
            print_ablation_recovery(&session);
            println!();
            print_ablation_formation(&session);
            println!();
            print_ablation_boosting(&session);
            println!();
            print_ablation_unrolling(&session);
            println!();
            print_ablation_cache(&session);
            println!();
            print_ablation_pipelining(&session);
            println!();
            print_ablation_pressure(&session);
            println!();
            print_overhead(&session, 2);
            println!();
            print_overhead(&session, 8);
        }
        other => {
            eprintln!("unknown command '{other}'");
            eprintln!("{USAGE}");
            return USAGE_STATUS;
        }
    }

    // Grid/cache summary on stderr: stdout stays byte-identical across
    // --jobs values and repeated runs.
    let m = session.metrics();
    eprintln!(
        "grid: {} cells evaluated, {} cache hits, jobs={}, wall {:.2?}",
        m.counter(EVAL_COUNTER),
        m.counter(HIT_COUNTER),
        session.jobs(),
        t0.elapsed()
    );
    if session.cache_dir().is_some() {
        use sentinel_trace::store as st;
        eprintln!(
            "store: hit={} miss={} disk_hit={} evict={} corrupt={}",
            m.counter(st::STORE_HIT),
            m.counter(st::STORE_MISS),
            m.counter(st::STORE_DISK_HIT),
            m.counter(st::STORE_EVICT),
            m.counter(st::STORE_CORRUPT)
        );
    }
    let timing = pass_timing_table(&m);
    if !timing.is_empty() {
        eprint!("{timing}");
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn parse_defaults_to_all() {
        let cli = parse(&args(&[])).unwrap();
        assert_eq!(cli.cmd, "all");
        assert!(!cli.csv);
        assert_eq!(cli.jobs, default_jobs());
    }

    #[test]
    fn parse_reads_flags_anywhere() {
        let cli = parse(&args(&["--jobs", "3", "fig4", "--csv"])).unwrap();
        assert_eq!(cli.cmd, "fig4");
        assert!(cli.csv);
        assert_eq!(cli.jobs, 3);
        let cli = parse(&args(&["overhead", "8"])).unwrap();
        assert_eq!((cli.cmd.as_str(), cli.width), ("overhead", Some(8)));
    }

    #[test]
    fn parse_reads_verify_passes() {
        let cli = parse(&args(&["fig4", "--verify-passes"])).unwrap();
        assert!(cli.verify_passes);
        assert!(!parse(&args(&["fig4"])).unwrap().verify_passes);
    }

    #[test]
    fn parse_reads_cache_dir() {
        let cli = parse(&args(&["all", "--cache-dir", "/tmp/grid"])).unwrap();
        assert_eq!(cli.cache_dir.as_deref(), Some("/tmp/grid"));
        assert!(parse(&args(&["all"])).unwrap().cache_dir.is_none());
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(parse(&args(&["--jobs"])).is_err());
        assert!(parse(&args(&["--cache-dir"])).is_err());
        assert!(parse(&args(&["--jobs", "0"])).is_err());
        assert!(parse(&args(&["--jobs", "x"])).is_err());
        assert!(parse(&args(&["--frobnicate"])).is_err());
        assert!(parse(&args(&["overhead", "notawidth"])).is_err());
        assert!(parse(&args(&["overhead", "2", "extra"])).is_err());
    }

    #[test]
    fn unknown_command_returns_usage_status() {
        assert_eq!(run(&args(&["no-such-figure"])), USAGE_STATUS);
        assert_eq!(run(&args(&["--bogus-flag"])), USAGE_STATUS);
    }
}
