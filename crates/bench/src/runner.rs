//! Workload execution: schedule → simulate → measure.
//!
//! [`measure`] is the leaf of the evaluation pipeline; figure and
//! ablation code does not call it in loops anymore — the
//! [`grid`](crate::grid) engine plans, dedups, parallelizes, and
//! memoizes cells, calling [`measure`] exactly once per distinct cell.

use sentinel_core::{schedule_function, SchedOptions, SchedStats, SchedulingModel};
use sentinel_isa::MachineDesc;
use sentinel_sim::reference::{RefOutcome, Reference};
use sentinel_sim::verify::{compare_runs, CompareSpec};
use sentinel_sim::{
    Engine, Memory, RunOutcome, SimConfig, SimSession, SpeculationSemantics, Stats,
};
use sentinel_workloads::Workload;

/// One measured run of a workload under a model and machine.
///
/// `PartialEq`/`Eq` compare every counter; the concurrency-determinism
/// tests rely on this to assert `--jobs 1` and `--jobs N` produce
/// *identical* measurement sets, not merely identical tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Measurement {
    /// Benchmark name.
    pub bench: String,
    /// Scheduling model.
    pub model: SchedulingModel,
    /// Issue width.
    pub width: usize,
    /// Execution cycles (the paper's metric).
    pub cycles: u64,
    /// Simulator statistics.
    pub stats: Stats,
    /// Scheduler statistics.
    pub sched: SchedStats,
}

impl Measurement {
    /// Percentage of cycles in which at least one instruction issued.
    pub fn issue_pct(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            100.0 * self.stats.issuing_cycles as f64 / self.cycles as f64
        }
    }

    /// Percentage of cycles charged to `reason`.
    pub fn stall_pct(&self, reason: sentinel_trace::StallReason) -> f64 {
        self.stats.stalls.pct_of(reason, self.cycles)
    }
}

/// Configuration knobs for a measurement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MeasureConfig {
    /// Issue width (1, 2, 4, 8 in the paper).
    pub width: usize,
    /// Scheduling model.
    pub model: SchedulingModel,
    /// Enforce the §3.7 recovery constraints during scheduling.
    pub recovery: bool,
    /// Store-buffer entries (8 on the paper's machine).
    pub store_buffer: usize,
    /// Verify the run against the sequential reference (slower; used by
    /// tests and spot checks).
    pub verify: bool,
    /// Optional timing-only data cache (`None` = the paper's 100%-hit
    /// assumption).
    pub cache: Option<sentinel_sim::cache::CacheConfig>,
    /// Execution engine ([`Engine::Fast`] by default; the interpreter is
    /// the differential-testing oracle).
    pub engine: Engine,
}

impl MeasureConfig {
    /// The paper's configuration for a model and width. The machine
    /// parameters (store-buffer size included) come from
    /// [`MachineDesc::paper_issue`], not from constants repeated here.
    pub fn paper(model: SchedulingModel, width: usize) -> MeasureConfig {
        let mdes = MachineDesc::paper_issue(width);
        MeasureConfig {
            width,
            model,
            recovery: false,
            store_buffer: mdes.store_buffer_size(),
            verify: false,
            cache: None,
            engine: Engine::default(),
        }
    }

    /// The machine description this measurement schedules for and runs
    /// on: the paper's §5.1 parameters with this config's width and
    /// store-buffer size applied.
    pub fn mdes(&self) -> MachineDesc {
        MachineDesc::builder()
            .issue_width(self.width)
            .store_buffer_size(self.store_buffer)
            .build()
    }

    /// The simulator configuration for this measurement — the single
    /// source of truth tying the machine description, the model's
    /// speculative-fault semantics, and the cache together, so sim and
    /// bench cannot silently diverge on a §5.1 knob.
    pub fn sim_config(&self) -> SimConfig {
        let mut c = SimConfig::for_mdes(self.mdes());
        c.semantics = semantics_for(self.model);
        c.cache = self.cache.clone();
        c
    }
}

/// Applies a workload's memory image to a simulator or reference memory.
pub fn apply_memory(w: &Workload, mem: &mut Memory) {
    for &(start, len) in &w.mem_regions {
        mem.map_region(start, len);
    }
    for &(addr, bits) in &w.mem_words {
        mem.write_word(addr, bits)
            .expect("image word in mapped region");
    }
}

/// The speculative-fault semantics each scheduling model runs under.
pub fn semantics_for(model: SchedulingModel) -> SpeculationSemantics {
    match model {
        SchedulingModel::GeneralPercolation => SpeculationSemantics::Silent,
        _ => SpeculationSemantics::SentinelTags,
    }
}

/// Schedules and executes a workload, returning the measurement.
///
/// # Panics
///
/// Panics if the schedule fails, the run does not halt, or (with
/// `verify`) the outcome diverges from the sequential reference — all of
/// which indicate bugs, not measurement conditions.
pub fn measure(w: &Workload, cfg: &MeasureConfig) -> Measurement {
    let mut opts = SchedOptions::new(cfg.model);
    if cfg.recovery {
        opts = opts.with_recovery();
    }
    let sched = schedule_function(&w.func, &cfg.mdes(), &opts)
        .unwrap_or_else(|e| panic!("{}: schedule failed: {e}", w.name));

    let mut m = SimSession::for_function(&sched.func)
        .config(cfg.sim_config())
        .engine(cfg.engine)
        .build();
    apply_memory(w, m.memory_mut());
    let outcome = m
        .run()
        .unwrap_or_else(|e| panic!("{} [{} w{}]: {e}", w.name, cfg.model.tag(), cfg.width));
    assert_eq!(
        outcome,
        RunOutcome::Halted,
        "{} [{} w{}]: unexpected trap {outcome:?}",
        w.name,
        cfg.model.tag(),
        cfg.width
    );

    if cfg.verify {
        let mut r = Reference::new(&w.func);
        apply_memory(w, r.memory_mut());
        let ro = r.run().expect("reference run");
        assert_eq!(ro, RefOutcome::Halted);
        let divs = compare_runs(
            &m,
            outcome,
            &r,
            ro,
            &CompareSpec::precise(w.live_out.clone()),
        );
        assert!(
            divs.is_empty(),
            "{} [{} w{}]: diverges from reference: {divs:?}",
            w.name,
            cfg.model.tag(),
            cfg.width
        );
    }

    Measurement {
        bench: w.name.clone(),
        model: cfg.model,
        width: cfg.width,
        cycles: m.stats().cycles,
        stats: *m.stats(),
        sched: sched.stats,
    }
}

/// Cycles of the paper's *base machine*: issue 1, restricted percolation.
pub fn base_cycles(w: &Workload) -> u64 {
    measure(
        w,
        &MeasureConfig::paper(SchedulingModel::RestrictedPercolation, 1),
    )
    .cycles
}

#[cfg(test)]
mod tests {
    use super::*;
    use sentinel_workloads::{generate, WorkloadSpec};

    fn small() -> Workload {
        let mut s = WorkloadSpec::test_default("small", 7);
        s.iterations = 25;
        generate(&s)
    }

    #[test]
    fn measure_runs_and_verifies() {
        let w = small();
        for model in SchedulingModel::all() {
            // General percolation is excluded from precise verification by
            // design; the others must match the oracle exactly.
            let mut cfg = MeasureConfig::paper(model, 4);
            cfg.verify = model != SchedulingModel::GeneralPercolation;
            let m = measure(&w, &cfg);
            assert!(m.cycles > 0);
            assert!(m.stats.dyn_insns > 0);
        }
    }

    #[test]
    fn wider_machines_are_not_slower() {
        let w = small();
        let c1 = measure(&w, &MeasureConfig::paper(SchedulingModel::Sentinel, 1)).cycles;
        let c8 = measure(&w, &MeasureConfig::paper(SchedulingModel::Sentinel, 8)).cycles;
        assert!(c8 <= c1, "issue-8 {c8} vs issue-1 {c1}");
    }

    #[test]
    fn sentinel_not_slower_than_restricted() {
        let w = small();
        let r = measure(
            &w,
            &MeasureConfig::paper(SchedulingModel::RestrictedPercolation, 8),
        )
        .cycles;
        let s = measure(&w, &MeasureConfig::paper(SchedulingModel::Sentinel, 8)).cycles;
        assert!(s <= r, "sentinel {s} vs restricted {r}");
    }

    #[test]
    fn base_machine_is_issue_one_restricted() {
        let w = small();
        let b = base_cycles(&w);
        let direct = measure(
            &w,
            &MeasureConfig::paper(SchedulingModel::RestrictedPercolation, 1),
        )
        .cycles;
        assert_eq!(b, direct);
    }
}
