//! Workload execution: schedule → simulate → measure.
//!
//! [`measure`] is the leaf of the evaluation pipeline; figure and
//! ablation code does not call it in loops anymore — the
//! [`grid`](crate::grid) engine plans, dedups, parallelizes, and
//! memoizes cells, calling [`measure`] exactly once per distinct cell.

use std::sync::{Arc, OnceLock};

use sentinel_core::{
    CompileSession, PassLog, SchedOptions, SchedStats, ScheduleError, SchedulingModel,
};
use sentinel_isa::MachineDesc;
use sentinel_prog::Function;
use sentinel_sim::reference::{RefOutcome, Reference};
use sentinel_sim::verify::{compare_runs, CompareSpec};
use sentinel_sim::{
    Engine, Memory, RunOutcome, SimConfig, SimSession, SpeculationSemantics, Stats, TurboProgram,
};
use sentinel_workloads::Workload;

/// One measured run of a workload under a model and machine.
///
/// `PartialEq`/`Eq` compare every counter; the concurrency-determinism
/// tests rely on this to assert `--jobs 1` and `--jobs N` produce
/// *identical* measurement sets, not merely identical tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Measurement {
    /// Benchmark name.
    pub bench: String,
    /// Scheduling model.
    pub model: SchedulingModel,
    /// Issue width.
    pub width: usize,
    /// Execution cycles (the paper's metric).
    pub cycles: u64,
    /// Simulator statistics.
    pub stats: Stats,
    /// Scheduler statistics.
    pub sched: SchedStats,
}

impl Measurement {
    /// Percentage of cycles in which at least one instruction issued.
    pub fn issue_pct(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            100.0 * self.stats.issuing_cycles as f64 / self.cycles as f64
        }
    }

    /// Percentage of cycles charged to `reason`.
    pub fn stall_pct(&self, reason: sentinel_trace::StallReason) -> f64 {
        self.stats.stalls.pct_of(reason, self.cycles)
    }
}

/// Configuration knobs for a measurement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MeasureConfig {
    /// Issue width (1, 2, 4, 8 in the paper).
    pub width: usize,
    /// Scheduling model.
    pub model: SchedulingModel,
    /// Enforce the §3.7 recovery constraints during scheduling.
    pub recovery: bool,
    /// Store-buffer entries (8 on the paper's machine).
    pub store_buffer: usize,
    /// Verify the run against the sequential reference (slower; used by
    /// tests and spot checks).
    pub verify: bool,
    /// Optional timing-only data cache (`None` = the paper's 100%-hit
    /// assumption).
    pub cache: Option<sentinel_sim::cache::CacheConfig>,
    /// Execution engine ([`Engine::Fast`] by default; the interpreter is
    /// the differential-testing oracle).
    pub engine: Engine,
    /// Run the compiler's inter-pass IR verifier even in release builds
    /// (`--verify-passes`). Does not change any measured number — only
    /// how strictly the schedule's construction is checked.
    pub verify_passes: bool,
}

impl MeasureConfig {
    /// The paper's configuration for a model and width. The machine
    /// parameters (store-buffer size included) come from
    /// [`MachineDesc::paper_issue`], not from constants repeated here.
    pub fn paper(model: SchedulingModel, width: usize) -> MeasureConfig {
        let mdes = MachineDesc::paper_issue(width);
        MeasureConfig {
            width,
            model,
            recovery: false,
            store_buffer: mdes.store_buffer_size(),
            verify: false,
            cache: None,
            engine: Engine::default(),
            verify_passes: false,
        }
    }

    /// The machine description this measurement schedules for and runs
    /// on: the paper's §5.1 parameters with this config's width and
    /// store-buffer size applied.
    pub fn mdes(&self) -> MachineDesc {
        MachineDesc::builder()
            .issue_width(self.width)
            .store_buffer_size(self.store_buffer)
            .build()
    }

    /// The simulator configuration for this measurement — the single
    /// source of truth tying the machine description, the model's
    /// speculative-fault semantics, and the cache together, so sim and
    /// bench cannot silently diverge on a §5.1 knob.
    pub fn sim_config(&self) -> SimConfig {
        let mut c = SimConfig::for_mdes(self.mdes());
        c.semantics = semantics_for(self.model);
        c.cache = self.cache.clone();
        c
    }
}

/// Applies a workload's memory image to a simulator or reference memory.
pub fn apply_memory(w: &Workload, mem: &mut Memory) {
    for &(start, len) in &w.mem_regions {
        mem.map_region(start, len);
    }
    for &(addr, bits) in &w.mem_words {
        mem.write_word(addr, bits)
            .expect("image word in mapped region");
    }
}

/// The speculative-fault semantics each scheduling model runs under.
pub fn semantics_for(model: SchedulingModel) -> SpeculationSemantics {
    match model {
        SchedulingModel::GeneralPercolation => SpeculationSemantics::Silent,
        _ => SpeculationSemantics::SentinelTags,
    }
}

/// Why a workload could not be measured.
///
/// Every variant is a bug somewhere in the toolchain, not a measurement
/// condition — but the grid engine degrades the affected cell to an
/// error row instead of taking the whole reproduction run down.
#[derive(Debug, Clone, PartialEq)]
pub enum MeasureError {
    /// The scheduler rejected or failed on the workload.
    Schedule(ScheduleError),
    /// The simulation did not run to a clean halt.
    Sim(String),
    /// The run diverged from the sequential reference (with
    /// [`MeasureConfig::verify`]).
    Divergence(String),
}

impl std::fmt::Display for MeasureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MeasureError::Schedule(e) => write!(f, "schedule failed: {e}"),
            MeasureError::Sim(msg) => write!(f, "simulation failed: {msg}"),
            MeasureError::Divergence(msg) => write!(f, "reference divergence: {msg}"),
        }
    }
}

impl std::error::Error for MeasureError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MeasureError::Schedule(e) => Some(e),
            _ => None,
        }
    }
}

/// A measurement together with its compile-phase pass log.
///
/// The pass log stays *outside* [`Measurement`] on purpose: measurements
/// are compared with `==` by the determinism tests, and wall-clock pass
/// timings are never reproducible.
#[derive(Debug, Clone)]
pub struct Measured {
    /// The measurement.
    pub m: Measurement,
    /// Per-pass timing, IR deltas, and diagnostics from the compile.
    pub passes: PassLog,
}

/// A workload compiled for one schedule point, ready to simulate.
///
/// Everything in here depends only on the *schedule* knobs — program,
/// model, width, recovery, store buffer (see
/// [`JobSpec::schedule_hash`](sentinel_spec::JobSpec::schedule_hash)) —
/// never on the execution engine or the timing-only data cache. One
/// `Prepared` therefore serves every engine and every cache ablation of
/// the same schedule point, and the grid keys its shared
/// [`ProgramCache`](sentinel_sim::ProgramCache) by exactly that hash.
///
/// The turbo decode is lazy: non-turbo runs never pay for it, and turbo
/// runs decode once per `Prepared` no matter how many sessions execute
/// it ([`OnceLock`] makes that true even across worker threads).
#[derive(Debug)]
pub struct Prepared {
    /// The scheduled function.
    pub func: Function,
    /// Scheduler statistics.
    pub sched: SchedStats,
    /// Per-pass timing, IR deltas, and diagnostics from the compile.
    pub passes: PassLog,
    /// The machine the function was scheduled for (and decodes under).
    mdes: MachineDesc,
    /// Lazily decoded turbo program, shared by every turbo session.
    turbo: OnceLock<Arc<TurboProgram>>,
}

impl Prepared {
    /// The decoded turbo program, decoding on first use.
    pub fn turbo_program(&self) -> Arc<TurboProgram> {
        self.turbo
            .get_or_init(|| Arc::new(TurboProgram::new(&self.func, &self.mdes)))
            .clone()
    }

    /// Whether the turbo decode has happened yet.
    pub fn turbo_decoded(&self) -> bool {
        self.turbo.get().is_some()
    }
}

/// Schedules a workload for one measurement configuration.
///
/// # Errors
///
/// [`MeasureError::Schedule`] if the scheduler rejects the workload.
pub fn prepare(w: &Workload, cfg: &MeasureConfig) -> Result<Prepared, MeasureError> {
    let mut opts = SchedOptions::new(cfg.model);
    if cfg.recovery {
        opts = opts.with_recovery();
    }
    if cfg.verify_passes {
        opts = opts.with_verify_passes();
    }
    let mdes = cfg.mdes();
    let mut session = CompileSession::for_function(&w.func)
        .mdes(&mdes)
        .options(opts)
        .build();
    let sched = session.run().map_err(MeasureError::Schedule)?;
    let passes = session.log().clone();
    Ok(Prepared {
        func: sched.func,
        sched: sched.stats,
        passes,
        mdes,
        turbo: OnceLock::new(),
    })
}

/// Executes an already-compiled workload, returning the measurement.
///
/// On [`Engine::Turbo`] the prepared program's decode is reused (and
/// performed at most once, however many sessions run it).
///
/// # Errors
///
/// See [`MeasureError`].
pub fn simulate_prepared(
    w: &Workload,
    cfg: &MeasureConfig,
    prepared: &Prepared,
) -> Result<Measurement, MeasureError> {
    let builder = SimSession::for_function(&prepared.func).config(cfg.sim_config());
    let mut m = if cfg.engine == Engine::Turbo {
        builder.program(prepared.turbo_program()).build()
    } else {
        builder.engine(cfg.engine).build()
    };
    apply_memory(w, m.memory_mut());
    let outcome = m.run().map_err(|e| {
        MeasureError::Sim(format!(
            "{} [{} w{}]: {e}",
            w.name,
            cfg.model.tag(),
            cfg.width
        ))
    })?;
    if outcome != RunOutcome::Halted {
        return Err(MeasureError::Sim(format!(
            "{} [{} w{}]: unexpected trap {outcome:?}",
            w.name,
            cfg.model.tag(),
            cfg.width
        )));
    }

    if cfg.verify {
        let mut r = Reference::new(&w.func);
        apply_memory(w, r.memory_mut());
        let ro = r
            .run()
            .map_err(|e| MeasureError::Sim(format!("{}: reference run: {e}", w.name)))?;
        if ro != RefOutcome::Halted {
            return Err(MeasureError::Sim(format!(
                "{}: reference trapped: {ro:?}",
                w.name
            )));
        }
        let divs = compare_runs(
            &m,
            outcome,
            &r,
            ro,
            &CompareSpec::precise(w.live_out.clone()),
        );
        if !divs.is_empty() {
            return Err(MeasureError::Divergence(format!(
                "{} [{} w{}]: {divs:?}",
                w.name,
                cfg.model.tag(),
                cfg.width
            )));
        }
    }

    Ok(Measurement {
        bench: w.name.clone(),
        model: cfg.model,
        width: cfg.width,
        cycles: m.stats().cycles,
        stats: *m.stats(),
        sched: prepared.sched,
    })
}

/// Schedules and executes a workload, returning the measurement plus
/// the compiler's pass log.
///
/// Composes [`prepare`] and [`simulate_prepared`]; callers that run the
/// same schedule point more than once (the grid, the serve workers)
/// cache the [`Prepared`] half instead of calling this in a loop.
///
/// # Errors
///
/// See [`MeasureError`].
pub fn measure_full(w: &Workload, cfg: &MeasureConfig) -> Result<Measured, MeasureError> {
    let prepared = prepare(w, cfg)?;
    let m = simulate_prepared(w, cfg, &prepared)?;
    Ok(Measured {
        m,
        passes: prepared.passes,
    })
}

/// Schedules and executes a workload, returning the measurement.
///
/// # Errors
///
/// See [`MeasureError`]. Use [`measure_full`] to also get the compiler's
/// per-pass log.
pub fn measure(w: &Workload, cfg: &MeasureConfig) -> Result<Measurement, MeasureError> {
    measure_full(w, cfg).map(|r| r.m)
}

/// Cycles of the paper's *base machine*: issue 1, restricted percolation.
pub fn base_cycles(w: &Workload) -> u64 {
    measure(
        w,
        &MeasureConfig::paper(SchedulingModel::RestrictedPercolation, 1),
    )
    .unwrap_or_else(|e| panic!("{}: base machine: {e}", w.name))
    .cycles
}

#[cfg(test)]
mod tests {
    use super::*;
    use sentinel_workloads::{generate, WorkloadSpec};

    fn small() -> Workload {
        let mut s = WorkloadSpec::test_default("small", 7);
        s.iterations = 25;
        generate(&s)
    }

    #[test]
    fn measure_runs_and_verifies() {
        let w = small();
        for model in SchedulingModel::all() {
            // General percolation is excluded from precise verification by
            // design; the others must match the oracle exactly.
            let mut cfg = MeasureConfig::paper(model, 4);
            cfg.verify = model != SchedulingModel::GeneralPercolation;
            let m = measure(&w, &cfg).unwrap();
            assert!(m.cycles > 0);
            assert!(m.stats.dyn_insns > 0);
        }
    }

    #[test]
    fn measure_full_reports_pass_log() {
        let w = small();
        let mut cfg = MeasureConfig::paper(SchedulingModel::Sentinel, 4);
        cfg.verify_passes = true;
        let r = measure_full(&w, &cfg).unwrap();
        assert!(r.m.cycles > 0);
        assert!(r.passes.report("list-schedule").is_some());
        assert_eq!(
            r.passes.report("depgraph").unwrap().runs as usize,
            r.m.sched.blocks
        );
    }

    #[test]
    fn schedule_failure_is_an_error_not_a_panic() {
        // A workload whose function is already speculative is invalid
        // scheduler input; measure must degrade, not panic.
        let mut w = small();
        let entry = w.func.entry();
        w.func.block_mut(entry).insns[0].speculative = true;
        let err = measure(&w, &MeasureConfig::paper(SchedulingModel::Sentinel, 4)).unwrap_err();
        assert!(matches!(
            err,
            MeasureError::Schedule(ScheduleError::NotSequentialInput(_))
        ));
        assert!(err.to_string().contains("schedule failed"), "{err}");
    }

    #[test]
    fn wider_machines_are_not_slower() {
        let w = small();
        let c1 = measure(&w, &MeasureConfig::paper(SchedulingModel::Sentinel, 1))
            .unwrap()
            .cycles;
        let c8 = measure(&w, &MeasureConfig::paper(SchedulingModel::Sentinel, 8))
            .unwrap()
            .cycles;
        assert!(c8 <= c1, "issue-8 {c8} vs issue-1 {c1}");
    }

    #[test]
    fn sentinel_not_slower_than_restricted() {
        let w = small();
        let r = measure(
            &w,
            &MeasureConfig::paper(SchedulingModel::RestrictedPercolation, 8),
        )
        .unwrap()
        .cycles;
        let s = measure(&w, &MeasureConfig::paper(SchedulingModel::Sentinel, 8))
            .unwrap()
            .cycles;
        assert!(s <= r, "sentinel {s} vs restricted {r}");
    }

    #[test]
    fn base_machine_is_issue_one_restricted() {
        let w = small();
        let b = base_cycles(&w);
        let direct = measure(
            &w,
            &MeasureConfig::paper(SchedulingModel::RestrictedPercolation, 1),
        )
        .unwrap()
        .cycles;
        assert_eq!(b, direct);
    }
}
