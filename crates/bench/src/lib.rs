//! Experiment harness for the sentinel scheduling reproduction.
//!
//! Regenerates every table and figure of the paper's evaluation (§5):
//!
//! * [`figures::figure4`] — sentinel (S) vs restricted percolation (R),
//! * [`figures::figure5`] — general percolation (G) vs S vs speculative
//!   stores (T),
//! * ablations: store-buffer size sweep, recovery-constraint cost, and
//!   sentinel-insertion overhead.
//!
//! The `reproduce` binary prints the rows; the self-contained benches
//! under `benches/` (plain `Instant` harness in [`timing`], no external
//! framework) time the scheduler and simulator and re-derive the figure
//! series.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;
pub mod report;
pub mod runner;
pub mod timing;
