//! Experiment harness for the sentinel scheduling reproduction.
//!
//! Regenerates every table and figure of the paper's evaluation (§5):
//!
//! * [`figures::figure4`] — sentinel (S) vs restricted percolation (R),
//! * [`figures::figure5`] — general percolation (G) vs S vs speculative
//!   stores (T),
//! * ablations: store-buffer size sweep, recovery-constraint cost, and
//!   sentinel-insertion overhead.
//!
//! The `reproduce` binary prints the rows; the self-contained benches
//! under `benches/` (plain `Instant` harness in [`timing`], no external
//! framework) time the scheduler and simulator and re-derive the figure
//! series.
//!
//! Measurement itself runs through the [`grid`] engine: one
//! [`grid::GridSession`] per invocation dedups every requested
//! (bench, model, width, knobs) [`grid::Cell`] across figures and
//! ablations, memoizes results ([`cache`]), evaluates missing cells on
//! scoped worker threads (`--jobs N`), and confines a panicking cell to
//! a degraded error row.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod cli;
pub mod figures;
pub mod grid;
pub mod loadgen;
pub mod persist;
pub mod report;
pub mod runner;
pub mod timing;
