//! Regeneration of the paper's figures and our ablations.

use std::collections::HashMap;

use sentinel_core::SchedulingModel;
use sentinel_workloads::{suite, BenchClass, Workload};

use crate::runner::{base_cycles, measure, MeasureConfig, Measurement};

/// The issue rates the paper evaluates (§5.2).
pub const WIDTHS: [usize; 3] = [2, 4, 8];

/// One benchmark's speedups: `speedup[model][width] = base / cycles`.
#[derive(Debug, Clone)]
pub struct BenchSpeedups {
    /// Benchmark name.
    pub bench: String,
    /// Numeric / non-numeric.
    pub class: BenchClass,
    /// Base-machine cycles (issue 1, restricted percolation).
    pub base_cycles: u64,
    /// `(model, width) → speedup`.
    pub speedups: HashMap<(SchedulingModel, usize), f64>,
    /// `(model, width) → raw measurement`.
    pub raw: HashMap<(SchedulingModel, usize), Measurement>,
}

impl BenchSpeedups {
    /// Speedup of a model at a width.
    ///
    /// # Panics
    ///
    /// Panics if that combination was not measured.
    pub fn speedup(&self, model: SchedulingModel, width: usize) -> f64 {
        self.speedups[&(model, width)]
    }
}

/// Measures a set of models over the paper's widths for every benchmark
/// in the suite.
pub fn measure_suite(models: &[SchedulingModel]) -> Vec<BenchSpeedups> {
    measure_workloads(&suite::suite(), models)
}

/// Measures a set of models over the paper's widths for given workloads.
pub fn measure_workloads(workloads: &[Workload], models: &[SchedulingModel]) -> Vec<BenchSpeedups> {
    workloads
        .iter()
        .map(|w| {
            let base = base_cycles(w);
            let mut speedups = HashMap::new();
            let mut raw = HashMap::new();
            for &model in models {
                for &width in &WIDTHS {
                    let m = measure(w, &MeasureConfig::paper(model, width));
                    speedups.insert((model, width), base as f64 / m.cycles as f64);
                    raw.insert((model, width), m);
                }
            }
            BenchSpeedups {
                bench: w.name.clone(),
                class: w.class,
                base_cycles: base,
                speedups,
                raw,
            }
        })
        .collect()
}

/// **Figure 4**: sentinel scheduling (S) vs restricted percolation (R),
/// issue 2/4/8, all 17 benchmarks, speedup over the base machine.
pub fn figure4() -> Vec<BenchSpeedups> {
    measure_suite(&[
        SchedulingModel::RestrictedPercolation,
        SchedulingModel::Sentinel,
    ])
}

/// **Figure 5**: general percolation (G) vs sentinel (S) vs sentinel with
/// speculative stores (T).
pub fn figure5() -> Vec<BenchSpeedups> {
    measure_suite(&[
        SchedulingModel::GeneralPercolation,
        SchedulingModel::Sentinel,
        SchedulingModel::SentinelStores,
    ])
}

/// Geometric-mean improvement of `a` over `b` at `width`, for benchmarks
/// of `class` (or all if `None`): matches the paper's "average speedup
/// improvement" statistics. Returns NaN when no benchmark matches.
pub fn mean_improvement(
    rows: &[BenchSpeedups],
    a: SchedulingModel,
    b: SchedulingModel,
    width: usize,
    class: Option<BenchClass>,
) -> f64 {
    let ratios: Vec<f64> = rows
        .iter()
        .filter(|r| class.is_none_or(|c| r.class == c))
        .map(|r| r.speedup(a, width) / r.speedup(b, width))
        .collect();
    if ratios.is_empty() {
        f64::NAN
    } else {
        geo_mean(&ratios)
    }
}

/// Geometric mean.
pub fn geo_mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "geometric mean of nothing");
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// **Ablation A1**: model-T speedup (issue 8) as a function of store
/// buffer size.
pub fn ablation_store_buffer(sizes: &[usize]) -> Vec<(String, Vec<(usize, f64)>)> {
    let workloads = suite::suite();
    workloads
        .iter()
        .map(|w| {
            let base = base_cycles(w);
            let series = sizes
                .iter()
                .map(|&n| {
                    let mut cfg = MeasureConfig::paper(SchedulingModel::SentinelStores, 8);
                    cfg.store_buffer = n;
                    let m = measure(w, &cfg);
                    (n, base as f64 / m.cycles as f64)
                })
                .collect();
            (w.name.clone(), series)
        })
        .collect()
}

/// **Ablation A2**: the cost of the §3.7 recovery constraints — sentinel
/// speedup at issue 8 with and without recovery scheduling (the paper's
/// "we are currently quantifying this performance impact").
pub fn ablation_recovery() -> Vec<(String, f64, f64)> {
    let workloads = suite::suite();
    workloads
        .iter()
        .map(|w| {
            let base = base_cycles(w) as f64;
            let plain = measure(w, &MeasureConfig::paper(SchedulingModel::Sentinel, 8));
            let mut cfg = MeasureConfig::paper(SchedulingModel::Sentinel, 8);
            cfg.recovery = true;
            let rec = measure(w, &cfg);
            (
                w.name.clone(),
                base / plain.cycles as f64,
                base / rec.cycles as f64,
            )
        })
        .collect()
}

/// **Ablation A5**: instruction boosting (§2.3) vs sentinel scheduling.
/// The paper argues general percolation (and hence sentinel scheduling)
/// reaches boosting's performance without its hardware cost, and that
/// boosting is limited to a small number of branches. Measures speedup at
/// issue 8 for boosting with 1/2/4 shadow levels against R and S.
pub fn ablation_boosting() -> Vec<(String, f64, f64, f64, f64, f64)> {
    let workloads = suite::suite();
    workloads
        .iter()
        .map(|w| {
            let base = crate::runner::base_cycles(w) as f64;
            let sp = |model| base / measure(w, &MeasureConfig::paper(model, 8)).cycles as f64;
            (
                w.name.clone(),
                sp(SchedulingModel::RestrictedPercolation),
                sp(SchedulingModel::Boosting(1)),
                sp(SchedulingModel::Boosting(2)),
                sp(SchedulingModel::Boosting(4)),
                sp(SchedulingModel::Sentinel),
            )
        })
        .collect()
}

/// **Ablation A4**: superblock formation's contribution. Each benchmark is
/// split into basic blocks, profiled, and re-formed; all three variants
/// are sentinel-scheduled at issue 8. Returns
/// `(bench, split_speedup, formed_speedup, original_speedup)` over the
/// original program's base machine.
pub fn ablation_formation() -> Vec<(String, f64, f64, f64)> {
    use sentinel_prog::superblock::{form_superblocks, split_at_branches, SuperblockConfig};
    use sentinel_sim::reference::Reference;

    let workloads = suite::suite();
    workloads
        .iter()
        .map(|w| {
            let base = crate::runner::base_cycles(w) as f64;
            let original = measure(w, &MeasureConfig::paper(SchedulingModel::Sentinel, 8));

            // Split into basic blocks.
            let mut split_w = w.clone();
            split_at_branches(&mut split_w.func);
            let split = measure(
                &split_w,
                &MeasureConfig::paper(SchedulingModel::Sentinel, 8),
            );

            // Profile the split program and form superblocks.
            let mut r = Reference::new(&split_w.func);
            crate::runner::apply_memory(&split_w, r.memory_mut());
            r.run().expect("profiling run");
            let profile = r.profile().clone();
            let mut formed_w = split_w.clone();
            form_superblocks(&mut formed_w.func, &profile, &SuperblockConfig::default());
            let formed = measure(
                &formed_w,
                &MeasureConfig::paper(SchedulingModel::Sentinel, 8),
            );

            (
                w.name.clone(),
                base / split.cycles as f64,
                base / formed.cycles as f64,
                base / original.cycles as f64,
            )
        })
        .collect()
}

/// **Ablation A6**: superblock loop unrolling × scheduling model.
/// Unrolls every benchmark's loop bodies by each factor and measures
/// sentinel speedup at issue 8 (speedups over the *original* base
/// machine, so higher factors show unrolling's contribution on top of
/// speculation).
pub fn ablation_unrolling(factors: &[usize]) -> Vec<(String, Vec<(usize, f64)>)> {
    use sentinel_prog::superblock::unroll_all_loops;
    let workloads = suite::suite();
    workloads
        .iter()
        .map(|w| {
            let base = crate::runner::base_cycles(w) as f64;
            let series = factors
                .iter()
                .map(|&k| {
                    let mut wu = w.clone();
                    if k > 1 {
                        unroll_all_loops(&mut wu.func, k);
                    }
                    let m = measure(&wu, &MeasureConfig::paper(SchedulingModel::Sentinel, 8));
                    (k, base / m.cycles as f64)
                })
                .collect();
            (w.name.clone(), series)
        })
        .collect()
}

/// **Ablation A7**: cache-miss sensitivity. The paper assumes 100% hits;
/// this asks how much of a growing miss penalty speculation hides.
/// Returns per benchmark the S-over-R improvement (issue 8) at each miss
/// penalty (0 = the paper's assumption; each run's S and R share the
/// penalty and its own base machine so the ratio isolates the scheduler).
pub fn ablation_cache(penalties: &[u32]) -> Vec<(String, Vec<(u32, f64)>)> {
    use sentinel_sim::cache::CacheConfig;
    let workloads = suite::suite();
    workloads
        .iter()
        .map(|w| {
            let series = penalties
                .iter()
                .map(|&p| {
                    let cache = (p > 0).then(|| CacheConfig::small_l1(p));
                    let mut rc = MeasureConfig::paper(SchedulingModel::RestrictedPercolation, 8);
                    rc.cache = cache.clone();
                    let mut sc = MeasureConfig::paper(SchedulingModel::Sentinel, 8);
                    sc.cache = cache;
                    let r = measure(w, &rc).cycles as f64;
                    let s = measure(w, &sc).cycles as f64;
                    (p, r / s)
                })
                .collect();
            (w.name.clone(), series)
        })
        .collect()
}

/// **Ablation A9**: register pressure. The paper notes the §3.7
/// live-range extension "will tend to increase the number of registers
/// used by the register allocator"; this measures the maximum number of
/// simultaneously live registers in sentinel-scheduled code with and
/// without the recovery constraints (which add renaming-introduced
/// virtual registers and restore moves).
pub fn ablation_register_pressure() -> Vec<(String, usize, usize)> {
    use sentinel_core::{schedule_function, SchedOptions};
    use sentinel_prog::cfg::Cfg;
    use sentinel_prog::liveness::Liveness;

    let mdes = sentinel_isa::MachineDesc::paper_issue(8);
    let max_live = |func: &sentinel_prog::Function| -> usize {
        let cfg = Cfg::build(func);
        let lv = Liveness::compute(func, &cfg);
        let mut max = 0usize;
        for bid in func.layout() {
            let n = func.block(*bid).insns.len();
            for pos in 0..=n {
                max = max.max(lv.live_before(func, *bid, pos).len());
            }
        }
        max
    };

    suite::suite()
        .iter()
        .map(|w| {
            let plain = schedule_function(
                &w.func,
                &mdes,
                &SchedOptions::new(SchedulingModel::Sentinel),
            )
            .unwrap();
            let rec = schedule_function(
                &w.func,
                &mdes,
                &SchedOptions::new(SchedulingModel::Sentinel).with_recovery(),
            )
            .unwrap();
            (w.name.clone(), max_live(&plain.func), max_live(&rec.func))
        })
        .collect()
}

/// Issue-width sweep: sentinel speedup over the base machine at widths
/// 1..=16, showing where each benchmark's ILP saturates.
pub fn issue_sweep(widths: &[usize]) -> Vec<(String, Vec<(usize, f64)>)> {
    let workloads = suite::suite();
    workloads
        .iter()
        .map(|w| {
            let base = crate::runner::base_cycles(w) as f64;
            let series = widths
                .iter()
                .map(|&width| {
                    let m = measure(w, &MeasureConfig::paper(SchedulingModel::Sentinel, width));
                    (width, base / m.cycles as f64)
                })
                .collect();
            (w.name.clone(), series)
        })
        .collect()
}

/// **Ablation A8**: modulo scheduling (software pipelining) on the
/// pipelinable kernels. Returns `(kernel, acyclic_cycles,
/// pipelined_cycles, II, stages)` at issue 8; the acyclic baseline is
/// sentinel-superblock-scheduled, the pipelined version runs as
/// constructed (its overlap *is* its schedule).
pub fn ablation_pipelining() -> Vec<(String, u64, u64, u64, u64)> {
    use sentinel_core::modulo::{pipeline_all_loops, pipeline_while_loop};
    use sentinel_core::{schedule_function, SchedOptions};
    use sentinel_sim::{Machine, RunOutcome, SimConfig};
    use sentinel_workloads::kernels;

    let mdes = sentinel_isa::MachineDesc::paper_issue(8);
    let run = |w: &sentinel_workloads::Workload, func: &sentinel_prog::Function| -> u64 {
        let mut m = Machine::new(func, SimConfig::for_mdes(mdes.clone()));
        crate::runner::apply_memory(w, m.memory_mut());
        assert_eq!(m.run().unwrap(), RunOutcome::Halted);
        m.stats().cycles
    };

    let mut rows = Vec::new();
    for w in [
        kernels::copy_words(200),
        kernels::dot_product(200),
        kernels::chain_scan(200),
    ] {
        let acyclic = {
            let s = schedule_function(
                &w.func,
                &mdes,
                &SchedOptions::new(SchedulingModel::Sentinel),
            )
            .unwrap();
            run(&w, &s.func)
        };
        let mut wp = w.clone();
        let infos = pipeline_all_loops(&mut wp.func, &mdes);
        let info = if let Some(i) = infos.first() {
            *i
        } else {
            // While-loop kernels need the speculative variant.
            let body = wp.func.block_by_label("loop").unwrap();
            pipeline_while_loop(&mut wp.func, body, &mdes, true).expect("kernel is pipelinable")
        };
        let pipelined = run(&w, &wp.func);
        rows.push((w.name.clone(), acyclic, pipelined, info.ii, info.stages));
    }
    rows
}

/// **Ablation A3**: sentinel-insertion overhead — static sentinels
/// inserted, dynamic sentinel instructions executed, and their share of
/// all dynamic instructions, per benchmark at a given width.
pub fn sentinel_overhead(width: usize) -> Vec<(String, usize, u64, f64)> {
    let workloads = suite::suite();
    workloads
        .iter()
        .map(|w| {
            let m = measure(w, &MeasureConfig::paper(SchedulingModel::Sentinel, width));
            let static_sentinels = m.sched.checks_inserted + m.sched.confirms_inserted;
            let dynamic = m.stats.dyn_checks + m.stats.dyn_confirms;
            let share = dynamic as f64 / m.stats.dyn_insns as f64;
            (w.name.clone(), static_sentinels, dynamic, share)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geo_mean_basics() {
        assert!((geo_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geo_mean(&[1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "nothing")]
    fn geo_mean_empty_panics() {
        geo_mean(&[]);
    }
}
