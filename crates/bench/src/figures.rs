//! Regeneration of the paper's figures and our ablations.
//!
//! Every figure is expressed as a *plan* of [`Cell`]s handed to a
//! [`GridSession`]: the session dedups cells shared between figures
//! (the base-machine cell appears in every speedup; S×8 appears in
//! Figure 4, Figure 5, and four ablations), measures missing cells in
//! parallel, and memoizes results so `reproduce all` evaluates the
//! whole grid exactly once.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use sentinel_core::SchedulingModel;
use sentinel_workloads::{BenchClass, Workload};

use crate::grid::{default_jobs, parallel_map, Cell, GridSession};
use crate::runner::{measure, MeasureConfig, Measurement};

/// The issue rates the paper evaluates (§5.2).
pub const WIDTHS: [usize; 3] = [2, 4, 8];

/// One benchmark's speedups: `speedup[model][width] = base / cycles`.
#[derive(Debug, Clone)]
pub struct BenchSpeedups {
    /// Benchmark name.
    pub bench: String,
    /// Numeric / non-numeric.
    pub class: BenchClass,
    /// Base-machine cycles (issue 1, restricted percolation).
    pub base_cycles: u64,
    /// `(model, width) → speedup`.
    pub speedups: HashMap<(SchedulingModel, usize), f64>,
    /// `(model, width) → raw measurement`.
    pub raw: HashMap<(SchedulingModel, usize), Measurement>,
    /// `(model, width) → error` for cells that failed to measure (a
    /// panicking cell degrades to a reported row instead of aborting
    /// the run). Ordered so degraded reports render deterministically.
    pub failed: BTreeMap<(SchedulingModel, usize), String>,
}

impl BenchSpeedups {
    /// Speedup of a model at a width.
    ///
    /// # Panics
    ///
    /// Panics — naming the benchmark and the missing `(model, width)`
    /// cell — if that combination was not measured, either because it
    /// was never requested or because its cell degraded to an error
    /// row. Callers that must tolerate degraded cells use
    /// [`BenchSpeedups::try_speedup`].
    pub fn speedup(&self, model: SchedulingModel, width: usize) -> f64 {
        *self.speedups.get(&(model, width)).unwrap_or_else(|| {
            panic!(
                "{}: no measurement for ({} x{width}){}",
                self.bench,
                model.tag(),
                match self.failed.get(&(model, width)) {
                    Some(e) => format!(": cell degraded: {e}"),
                    None => String::new(),
                }
            )
        })
    }

    /// Speedup of a model at a width, or `None` for an unmeasured or
    /// degraded cell.
    pub fn try_speedup(&self, model: SchedulingModel, width: usize) -> Option<f64> {
        self.speedups.get(&(model, width)).copied()
    }
}

/// Measures a set of models over the paper's widths for every benchmark
/// in the session's workload set, sharing the session's result cache.
pub fn measure_grid(session: &GridSession, models: &[SchedulingModel]) -> Vec<BenchSpeedups> {
    let benches: Vec<String> = session.workloads().iter().map(|w| w.name.clone()).collect();
    let mut plan: Vec<Cell> = Vec::with_capacity(benches.len() * (1 + models.len() * WIDTHS.len()));
    for bench in &benches {
        plan.push(Cell::base(bench));
        for &model in models {
            for &width in &WIDTHS {
                plan.push(Cell::paper(bench, model, width));
            }
        }
    }
    let outcomes = session.eval(&plan);

    let per_bench = 1 + models.len() * WIDTHS.len();
    benches
        .iter()
        .zip(outcomes.chunks_exact(per_bench))
        .map(|(bench, chunk)| {
            let class = session.workload(bench).expect("planned bench exists").class;
            let (base_outcome, rest) = chunk.split_first().expect("chunk holds the base cell");
            let mut speedups = HashMap::new();
            let mut raw = HashMap::new();
            let mut failed = BTreeMap::new();
            let base_cycles = match base_outcome {
                Ok(m) => m.cycles,
                Err(e) => {
                    // No base machine ⇒ no speedup is computable for
                    // this benchmark; degrade every requested cell.
                    for &model in models {
                        for &width in &WIDTHS {
                            failed.insert((model, width), format!("base machine: {e}"));
                        }
                    }
                    0
                }
            };
            if base_cycles > 0 {
                let mut it = rest.iter();
                for &model in models {
                    for &width in &WIDTHS {
                        match it.next().expect("plan shape") {
                            Ok(m) => {
                                speedups
                                    .insert((model, width), base_cycles as f64 / m.cycles as f64);
                                raw.insert((model, width), m.clone());
                            }
                            Err(e) => {
                                failed.insert((model, width), e.to_string());
                            }
                        }
                    }
                }
            }
            BenchSpeedups {
                bench: bench.clone(),
                class,
                base_cycles,
                speedups,
                raw,
                failed,
            }
        })
        .collect()
}

/// Measures a set of models over the paper's widths for every benchmark
/// in the suite (one-shot session; `reproduce` holds a long-lived
/// session instead so figures share a cache).
pub fn measure_suite(models: &[SchedulingModel]) -> Vec<BenchSpeedups> {
    measure_grid(&GridSession::suite(default_jobs()), models)
}

/// Measures a set of models over the paper's widths for given workloads
/// (one-shot session over an ad-hoc workload set).
pub fn measure_workloads(workloads: &[Workload], models: &[SchedulingModel]) -> Vec<BenchSpeedups> {
    let session = GridSession::new(Arc::new(workloads.to_vec()), default_jobs());
    measure_grid(&session, models)
}

/// **Figure 4**: sentinel scheduling (S) vs restricted percolation (R),
/// issue 2/4/8, all 17 benchmarks, speedup over the base machine.
pub fn figure4(session: &GridSession) -> Vec<BenchSpeedups> {
    measure_grid(
        session,
        &[
            SchedulingModel::RestrictedPercolation,
            SchedulingModel::Sentinel,
        ],
    )
}

/// **Figure 5**: general percolation (G) vs sentinel (S) vs sentinel with
/// speculative stores (T).
pub fn figure5(session: &GridSession) -> Vec<BenchSpeedups> {
    measure_grid(
        session,
        &[
            SchedulingModel::GeneralPercolation,
            SchedulingModel::Sentinel,
            SchedulingModel::SentinelStores,
        ],
    )
}

/// Geometric-mean improvement of `a` over `b` at `width`, for benchmarks
/// of `class` (or all if `None`): matches the paper's "average speedup
/// improvement" statistics. Benchmarks with a degraded cell at either
/// point are skipped. Returns NaN when no benchmark matches.
pub fn mean_improvement(
    rows: &[BenchSpeedups],
    a: SchedulingModel,
    b: SchedulingModel,
    width: usize,
    class: Option<BenchClass>,
) -> f64 {
    let ratios: Vec<f64> = rows
        .iter()
        .filter(|r| class.is_none_or(|c| r.class == c))
        .filter_map(|r| Some(r.try_speedup(a, width)? / r.try_speedup(b, width)?))
        .collect();
    if ratios.is_empty() {
        f64::NAN
    } else {
        geo_mean(&ratios)
    }
}

/// Geometric mean.
pub fn geo_mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "geometric mean of nothing");
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// The base-machine cycles of every session benchmark, via the cache.
fn bases(session: &GridSession) -> Vec<(String, f64)> {
    let cells: Vec<Cell> = session
        .workloads()
        .iter()
        .map(|w| Cell::base(&w.name))
        .collect();
    session
        .eval(&cells)
        .into_iter()
        .zip(session.workloads())
        .map(|(o, w)| {
            let name = w.name.clone();
            let m = o.unwrap_or_else(|e| panic!("{name}: base machine failed: {e}"));
            (name, m.cycles as f64)
        })
        .collect()
}

/// **Ablation A1**: model-T speedup (issue 8) as a function of store
/// buffer size. The paper's N=8 point is shared with Figure 5's grid.
pub fn ablation_store_buffer(
    session: &GridSession,
    sizes: &[usize],
) -> Vec<(String, Vec<(usize, f64)>)> {
    let mut plan = Vec::new();
    for w in session.workloads() {
        for &n in sizes {
            let mut cell = Cell::paper(&w.name, SchedulingModel::SentinelStores, 8);
            cell.store_buffer = n;
            plan.push(cell);
        }
    }
    let outcomes = session.eval(&plan);
    bases(session)
        .into_iter()
        .zip(outcomes.chunks_exact(sizes.len()))
        .map(|((bench, base), chunk)| {
            let series = sizes
                .iter()
                .zip(chunk)
                .map(|(&n, o)| {
                    let m = o.as_ref().unwrap_or_else(|e| panic!("{bench} sb={n}: {e}"));
                    (n, base / m.cycles as f64)
                })
                .collect();
            (bench, series)
        })
        .collect()
}

/// **Ablation A2**: the cost of the §3.7 recovery constraints — sentinel
/// speedup at issue 8 with and without recovery scheduling (the paper's
/// "we are currently quantifying this performance impact"). The plain
/// S×8 point is shared with Figures 4 and 5.
pub fn ablation_recovery(session: &GridSession) -> Vec<(String, f64, f64)> {
    let mut plan = Vec::new();
    for w in session.workloads() {
        plan.push(Cell::paper(&w.name, SchedulingModel::Sentinel, 8));
        let mut rec = Cell::paper(&w.name, SchedulingModel::Sentinel, 8);
        rec.recovery = true;
        plan.push(rec);
    }
    let outcomes = session.eval(&plan);
    bases(session)
        .into_iter()
        .zip(outcomes.chunks_exact(2))
        .map(|((bench, base), pair)| {
            let cycles = |o: &crate::grid::CellOutcome| {
                o.as_ref().unwrap_or_else(|e| panic!("{bench}: {e}")).cycles as f64
            };
            let (plain, rec) = (base / cycles(&pair[0]), base / cycles(&pair[1]));
            (bench, plain, rec)
        })
        .collect()
}

/// **Ablation A5**: instruction boosting (§2.3) vs sentinel scheduling.
/// The paper argues general percolation (and hence sentinel scheduling)
/// reaches boosting's performance without its hardware cost, and that
/// boosting is limited to a small number of branches. Measures speedup at
/// issue 8 for boosting with 1/2/4 shadow levels against R and S (both
/// shared with the figure grids).
pub fn ablation_boosting(session: &GridSession) -> Vec<(String, f64, f64, f64, f64, f64)> {
    let models = [
        SchedulingModel::RestrictedPercolation,
        SchedulingModel::Boosting(1),
        SchedulingModel::Boosting(2),
        SchedulingModel::Boosting(4),
        SchedulingModel::Sentinel,
    ];
    let mut plan = Vec::new();
    for w in session.workloads() {
        for &m in &models {
            plan.push(Cell::paper(&w.name, m, 8));
        }
    }
    let outcomes = session.eval(&plan);
    bases(session)
        .into_iter()
        .zip(outcomes.chunks_exact(models.len()))
        .map(|((bench, base), chunk)| {
            let sp = |i: usize| {
                let m: &Measurement = chunk[i].as_ref().unwrap_or_else(|e| panic!("{bench}: {e}"));
                base / m.cycles as f64
            };
            let (r, b1, b2, b4, s) = (sp(0), sp(1), sp(2), sp(3), sp(4));
            (bench, r, b1, b2, b4, s)
        })
        .collect()
}

/// **Ablation A4**: superblock formation's contribution. Each benchmark is
/// split into basic blocks, profiled, and re-formed; all three variants
/// are sentinel-scheduled at issue 8. Returns
/// `(bench, split_speedup, formed_speedup, original_speedup)` over the
/// original program's base machine. The original point rides the shared
/// grid; the mutated variants are measured directly on worker threads.
pub fn ablation_formation(session: &GridSession) -> Vec<(String, f64, f64, f64)> {
    use sentinel_prog::superblock::{form_superblocks, split_at_branches, SuperblockConfig};
    use sentinel_sim::reference::Reference;

    let originals: Vec<Cell> = session
        .workloads()
        .iter()
        .map(|w| Cell::paper(&w.name, SchedulingModel::Sentinel, 8))
        .collect();
    let original_cycles: Vec<f64> = session
        .eval(&originals)
        .into_iter()
        .map(|o| o.expect("original S x8 measures").cycles as f64)
        .collect();
    let base: Vec<(String, f64)> = bases(session);

    let items: Vec<(&Workload, f64, f64)> = session
        .workloads()
        .iter()
        .zip(base.iter().zip(&original_cycles))
        .map(|(w, ((_, b), &o))| (w, *b, o))
        .collect();
    parallel_map(session.jobs(), &items, |&(w, base, original_cycles)| {
        // Split into basic blocks.
        let mut split_w = w.clone();
        split_at_branches(&mut split_w.func);
        let split = measure(
            &split_w,
            &MeasureConfig::paper(SchedulingModel::Sentinel, 8),
        )
        .expect("split program measures");

        // Profile the split program and form superblocks.
        let mut r = Reference::new(&split_w.func);
        crate::runner::apply_memory(&split_w, r.memory_mut());
        r.run().expect("profiling run");
        let profile = r.profile().clone();
        let mut formed_w = split_w.clone();
        form_superblocks(&mut formed_w.func, &profile, &SuperblockConfig::default());
        let formed = measure(
            &formed_w,
            &MeasureConfig::paper(SchedulingModel::Sentinel, 8),
        )
        .expect("formed program measures");

        (
            w.name.clone(),
            base / split.cycles as f64,
            base / formed.cycles as f64,
            base / original_cycles,
        )
    })
}

/// **Ablation A6**: superblock loop unrolling × scheduling model.
/// Unrolls every benchmark's loop bodies by each factor and measures
/// sentinel speedup at issue 8 (speedups over the *original* base
/// machine, so higher factors show unrolling's contribution on top of
/// speculation). The ×1 point is the shared S×8 grid cell; unrolled
/// variants are measured directly on worker threads.
pub fn ablation_unrolling(
    session: &GridSession,
    factors: &[usize],
) -> Vec<(String, Vec<(usize, f64)>)> {
    use sentinel_prog::superblock::unroll_all_loops;
    let plain: Vec<f64> = session
        .eval(
            &session
                .workloads()
                .iter()
                .map(|w| Cell::paper(&w.name, SchedulingModel::Sentinel, 8))
                .collect::<Vec<_>>(),
        )
        .into_iter()
        .map(|o| o.expect("S x8 measures").cycles as f64)
        .collect();
    let items: Vec<(&Workload, f64, f64)> = session
        .workloads()
        .iter()
        .zip(bases(session).iter().zip(&plain))
        .map(|(w, ((_, b), &p))| (w, *b, p))
        .collect();
    let factors_owned: Vec<usize> = factors.to_vec();
    parallel_map(session.jobs(), &items, move |&(w, base, plain_cycles)| {
        let series = factors_owned
            .iter()
            .map(|&k| {
                if k <= 1 {
                    return (k, base / plain_cycles);
                }
                let mut wu = w.clone();
                unroll_all_loops(&mut wu.func, k);
                let m = measure(&wu, &MeasureConfig::paper(SchedulingModel::Sentinel, 8))
                    .expect("unrolled program measures");
                (k, base / m.cycles as f64)
            })
            .collect();
        (w.name.clone(), series)
    })
}

/// **Ablation A7**: cache-miss sensitivity. The paper assumes 100% hits;
/// this asks how much of a growing miss penalty speculation hides.
/// Returns per benchmark the S-over-R improvement (issue 8) at each miss
/// penalty (0 = the paper's assumption, shared with Figure 4's grid;
/// each run's S and R share the penalty and its own base machine so the
/// ratio isolates the scheduler).
pub fn ablation_cache(session: &GridSession, penalties: &[u32]) -> Vec<(String, Vec<(u32, f64)>)> {
    use sentinel_sim::cache::CacheConfig;
    let mut plan = Vec::new();
    for w in session.workloads() {
        for &p in penalties {
            let cache = (p > 0).then(|| CacheConfig::small_l1(p));
            for model in [
                SchedulingModel::RestrictedPercolation,
                SchedulingModel::Sentinel,
            ] {
                let mut cell = Cell::paper(&w.name, model, 8);
                cell.cache = cache.clone();
                plan.push(cell);
            }
        }
    }
    let outcomes = session.eval(&plan);
    session
        .workloads()
        .iter()
        .zip(outcomes.chunks_exact(2 * penalties.len()))
        .map(|(w, chunk)| {
            let series = penalties
                .iter()
                .zip(chunk.chunks_exact(2))
                .map(|(&p, pair)| {
                    let cycles = |o: &crate::grid::CellOutcome| {
                        o.as_ref()
                            .unwrap_or_else(|e| panic!("{} p={p}: {e}", w.name))
                            .cycles as f64
                    };
                    (p, cycles(&pair[0]) / cycles(&pair[1]))
                })
                .collect();
            (w.name.clone(), series)
        })
        .collect()
}

/// **Ablation A9**: register pressure. The paper notes the §3.7
/// live-range extension "will tend to increase the number of registers
/// used by the register allocator"; this measures the maximum number of
/// simultaneously live registers in sentinel-scheduled code with and
/// without the recovery constraints (which add renaming-introduced
/// virtual registers and restore moves). Pure scheduling — no
/// simulation — parallelized per benchmark.
pub fn ablation_register_pressure(session: &GridSession) -> Vec<(String, usize, usize)> {
    use sentinel_core::{schedule_function, SchedOptions};
    use sentinel_prog::cfg::Cfg;
    use sentinel_prog::liveness::Liveness;

    let mdes = sentinel_isa::MachineDesc::paper_issue(8);
    let max_live = |func: &sentinel_prog::Function| -> usize {
        let cfg = Cfg::build(func);
        let lv = Liveness::compute(func, &cfg);
        let mut max = 0usize;
        for bid in func.layout() {
            let n = func.block(*bid).insns.len();
            for pos in 0..=n {
                max = max.max(lv.live_before(func, *bid, pos).len());
            }
        }
        max
    };

    parallel_map(session.jobs(), session.workloads(), |w| {
        let plain = schedule_function(
            &w.func,
            &mdes,
            &SchedOptions::new(SchedulingModel::Sentinel),
        )
        .unwrap();
        let rec = schedule_function(
            &w.func,
            &mdes,
            &SchedOptions::new(SchedulingModel::Sentinel).with_recovery(),
        )
        .unwrap();
        (w.name.clone(), max_live(&plain.func), max_live(&rec.func))
    })
}

/// Issue-width sweep: sentinel speedup over the base machine at widths
/// 1..=16, showing where each benchmark's ILP saturates. The paper
/// widths 2/4/8 are shared with the figure grids.
pub fn issue_sweep(session: &GridSession, widths: &[usize]) -> Vec<(String, Vec<(usize, f64)>)> {
    let mut plan = Vec::new();
    for w in session.workloads() {
        for &width in widths {
            plan.push(Cell::paper(&w.name, SchedulingModel::Sentinel, width));
        }
    }
    let outcomes = session.eval(&plan);
    bases(session)
        .into_iter()
        .zip(outcomes.chunks_exact(widths.len()))
        .map(|((bench, base), chunk)| {
            let series = widths
                .iter()
                .zip(chunk)
                .map(|(&width, o)| {
                    let m = o
                        .as_ref()
                        .unwrap_or_else(|e| panic!("{bench} w{width}: {e}"));
                    (width, base / m.cycles as f64)
                })
                .collect();
            (bench, series)
        })
        .collect()
}

/// **Ablation A8**: modulo scheduling (software pipelining) on the
/// pipelinable kernels. Returns `(kernel, acyclic_cycles,
/// pipelined_cycles, II, stages)` at issue 8; the acyclic baseline is
/// sentinel-superblock-scheduled, the pipelined version runs as
/// constructed (its overlap *is* its schedule). The kernels are not
/// suite benchmarks, so they are measured directly (in parallel).
pub fn ablation_pipelining(jobs: usize) -> Vec<(String, u64, u64, u64, u64)> {
    use sentinel_core::modulo::{pipeline_all_loops, pipeline_while_loop};
    use sentinel_core::{schedule_function, SchedOptions};
    use sentinel_sim::{RunOutcome, SimConfig, SimSession};
    use sentinel_workloads::kernels;

    let mdes = sentinel_isa::MachineDesc::paper_issue(8);
    let run = |w: &sentinel_workloads::Workload, func: &sentinel_prog::Function| -> u64 {
        let mut m = SimSession::for_function(func)
            .config(SimConfig::for_mdes(mdes.clone()))
            .build();
        crate::runner::apply_memory(w, m.memory_mut());
        assert_eq!(m.run().unwrap(), RunOutcome::Halted);
        m.stats().cycles
    };

    let kernels = [
        kernels::copy_words(200),
        kernels::dot_product(200),
        kernels::chain_scan(200),
    ];
    parallel_map(jobs, &kernels, |w| {
        let acyclic = {
            let s = schedule_function(
                &w.func,
                &mdes,
                &SchedOptions::new(SchedulingModel::Sentinel),
            )
            .unwrap();
            run(w, &s.func)
        };
        let mut wp = w.clone();
        let infos = pipeline_all_loops(&mut wp.func, &mdes);
        let info = if let Some(i) = infos.first() {
            *i
        } else {
            // While-loop kernels need the speculative variant.
            let body = wp.func.block_by_label("loop").unwrap();
            pipeline_while_loop(&mut wp.func, body, &mdes, true).expect("kernel is pipelinable")
        };
        let pipelined = run(w, &wp.func);
        (w.name.clone(), acyclic, pipelined, info.ii, info.stages)
    })
}

/// **Ablation A3**: sentinel-insertion overhead — static sentinels
/// inserted, dynamic sentinel instructions executed, and their share of
/// all dynamic instructions, per benchmark at a given width. Widths 2
/// and 8 are shared with the figure grids.
pub fn sentinel_overhead(session: &GridSession, width: usize) -> Vec<(String, usize, u64, f64)> {
    let plan: Vec<Cell> = session
        .workloads()
        .iter()
        .map(|w| Cell::paper(&w.name, SchedulingModel::Sentinel, width))
        .collect();
    session
        .eval(&plan)
        .into_iter()
        .zip(session.workloads())
        .map(|(o, w)| {
            let m = o.unwrap_or_else(|e| panic!("{}: {e}", w.name));
            let static_sentinels = m.sched.checks_inserted + m.sched.confirms_inserted;
            let dynamic = m.stats.dyn_checks + m.stats.dyn_confirms;
            let share = dynamic as f64 / m.stats.dyn_insns as f64;
            (w.name.clone(), static_sentinels, dynamic, share)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geo_mean_basics() {
        assert!((geo_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geo_mean(&[1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "nothing")]
    fn geo_mean_empty_panics() {
        geo_mean(&[]);
    }

    #[test]
    #[should_panic(expected = "tiny: no measurement for (T x8)")]
    fn speedup_panic_names_the_missing_cell() {
        let row = BenchSpeedups {
            bench: "tiny".into(),
            class: BenchClass::NonNumeric,
            base_cycles: 100,
            speedups: HashMap::new(),
            raw: HashMap::new(),
            failed: BTreeMap::new(),
        };
        row.speedup(SchedulingModel::SentinelStores, 8);
    }

    #[test]
    fn try_speedup_tolerates_missing_cells() {
        let row = BenchSpeedups {
            bench: "tiny".into(),
            class: BenchClass::NonNumeric,
            base_cycles: 100,
            speedups: HashMap::from([((SchedulingModel::Sentinel, 8), 2.0)]),
            raw: HashMap::new(),
            failed: BTreeMap::new(),
        };
        assert_eq!(row.try_speedup(SchedulingModel::Sentinel, 8), Some(2.0));
        assert_eq!(row.try_speedup(SchedulingModel::Sentinel, 2), None);
    }
}
