//! End-to-end tests of the `reproduce` binary's argument handling.
//! (Figure generation itself is exercised in-process by the library
//! tests and `tests/grid_determinism.rs`; spawning a full figure run in
//! a debug build would dominate the suite's wall time.)

use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_reproduce"))
}

#[test]
fn unknown_subcommand_prints_usage_and_exits_2() {
    let out = bin().arg("fig99").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown command 'fig99'"), "{stderr}");
    assert!(stderr.contains("usage: reproduce"), "{stderr}");
    assert!(out.stdout.is_empty());
}

#[test]
fn unknown_flag_prints_usage_and_exits_2() {
    let out = bin().args(["fig4", "--jbos", "2"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown flag '--jbos'"), "{stderr}");
    assert!(stderr.contains("usage: reproduce"), "{stderr}");
}

#[test]
fn bad_jobs_value_is_rejected() {
    for jobs in ["0", "-1", "many"] {
        let out = bin().args(["fig4", "--jobs", jobs]).output().unwrap();
        assert_eq!(out.status.code(), Some(2), "--jobs {jobs}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("bad --jobs"), "{stderr}");
    }
    let out = bin().args(["fig4", "--jobs"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--jobs requires a value"));
}
