//! Concurrency-determinism and fault-isolation contracts of the grid
//! evaluation engine: `--jobs 1` and `--jobs N` must produce identical
//! `Measurement` sets and byte-identical reports, each distinct cell is
//! evaluated exactly once per session, and a panicking cell degrades to
//! a reported row instead of killing the run.

use std::sync::Arc;

use sentinel_bench::cache::{EVAL_COUNTER, HIT_COUNTER, MISS_COUNTER};
use sentinel_bench::figures::{figure4, measure_grid, WIDTHS};
use sentinel_bench::grid::{Cell, GridSession};
use sentinel_bench::report::{failed_cell_report, speedup_csv};
use sentinel_core::SchedulingModel;
use sentinel_workloads::{generate, Workload, WorkloadSpec};

const FIG4_MODELS: [SchedulingModel; 2] = [
    SchedulingModel::RestrictedPercolation,
    SchedulingModel::Sentinel,
];

/// A small but non-trivial workload set: enough cells to keep four
/// workers busy, cheap enough for a debug-build test run.
fn small_workloads() -> Arc<Vec<Workload>> {
    let specs = [("det_a", 3), ("det_b", 5), ("det_c", 7), ("det_d", 11)];
    Arc::new(
        specs
            .iter()
            .map(|&(name, seed)| {
                let mut s = WorkloadSpec::test_default(name, seed);
                s.iterations = 12;
                generate(&s)
            })
            .collect(),
    )
}

fn fig4_plan(session: &GridSession) -> Vec<Cell> {
    let mut plan = Vec::new();
    for w in session.workloads() {
        plan.push(Cell::base(&w.name));
        for &model in &FIG4_MODELS {
            for &width in &WIDTHS {
                plan.push(Cell::paper(&w.name, model, width));
            }
        }
    }
    plan
}

#[test]
fn jobs_one_and_jobs_four_agree_exactly() {
    let serial = GridSession::new(small_workloads(), 1);
    let parallel = GridSession::new(small_workloads(), 4);
    let plan = fig4_plan(&serial);

    // Identical Measurement sets (Measurement is Eq over every counter),
    // in identical (request) order, regardless of thread interleaving.
    assert_eq!(serial.eval(&plan), parallel.eval(&plan));

    // Byte-identical CSV, and stable across a repeated parallel run.
    let csv_serial = speedup_csv(&measure_grid(&serial, &FIG4_MODELS), &FIG4_MODELS);
    let csv_parallel = speedup_csv(&measure_grid(&parallel, &FIG4_MODELS), &FIG4_MODELS);
    assert_eq!(csv_serial.as_bytes(), csv_parallel.as_bytes());
    let rerun = GridSession::new(small_workloads(), 4);
    let csv_rerun = speedup_csv(&measure_grid(&rerun, &FIG4_MODELS), &FIG4_MODELS);
    assert_eq!(csv_serial.as_bytes(), csv_rerun.as_bytes());
}

#[test]
fn figure_grid_hits_the_cache_on_reuse() {
    let session = GridSession::new(small_workloads(), 4);
    let rows = figure4(&session);
    assert_eq!(rows.len(), 4);

    // 4 benches × (1 base + 2 models × 3 widths) distinct cells.
    let distinct = 4 * (1 + FIG4_MODELS.len() * WIDTHS.len());
    let m = session.metrics();
    assert_eq!(m.counter(EVAL_COUNTER), distinct as u64);
    assert_eq!(m.counter(MISS_COUNTER), distinct as u64);

    // Re-running the figure is pure cache traffic: no new evaluations.
    let again = figure4(&session);
    let m = session.metrics();
    assert_eq!(m.counter(EVAL_COUNTER), distinct as u64);
    assert_eq!(m.counter(HIT_COUNTER), distinct as u64);
    assert_eq!(rows.len(), again.len());
    for (a, b) in rows.iter().zip(&again) {
        assert_eq!(a.raw, b.raw);
    }
}

#[test]
fn injected_fault_degrades_one_row_and_spares_the_rest() {
    let mut session = GridSession::new(small_workloads(), 4);
    session.set_fault_hook(Arc::new(|c: &Cell| {
        c.bench == "det_b" && c.model == SchedulingModel::Sentinel && c.width == 4
    }));
    let rows = measure_grid(&session, &FIG4_MODELS);

    let faulted = rows.iter().find(|r| r.bench == "det_b").unwrap();
    assert!(faulted.try_speedup(SchedulingModel::Sentinel, 4).is_none());
    let cause = &faulted.failed[&(SchedulingModel::Sentinel, 4)];
    assert!(cause.contains("injected fault"), "{cause}");
    // Every other cell of every bench measured normally.
    let total: usize = rows.iter().map(|r| r.speedups.len()).sum();
    assert_eq!(total, 4 * FIG4_MODELS.len() * WIDTHS.len() - 1);

    // The degraded cell is reported, not silent.
    let report = failed_cell_report(&rows);
    assert!(
        report.contains("DEGRADED det_b (S x4): injected fault"),
        "{report}"
    );
    let csv = speedup_csv(&rows, &FIG4_MODELS);
    assert!(csv.contains("det_b,non-numeric,S,4,err"), "{csv}");
}
