//! Component throughput: scheduler, both execution engines, reference
//! interpreter, and assembler, measured on suite programs.
//!
//! The engine section is the headline: it runs every workload on the
//! interpretive oracle and the pre-decoded fast engine, **fails on any
//! disagreement** (outcome, statistics, live-out registers, memory),
//! and reports simulated instructions per second for each.
//!
//! ```text
//! cargo bench --bench throughput                      # full run
//! cargo bench --bench throughput -- --quick           # CI smoke: verify + small IPS sample
//! cargo bench --bench throughput -- --json BENCH_3.json
//! ```

use std::fmt::Write as _;

use sentinel_bench::figures::{
    ablation_boosting, ablation_cache, ablation_formation, ablation_recovery,
    ablation_register_pressure, ablation_store_buffer, ablation_unrolling, figure4, figure5,
    sentinel_overhead,
};
use sentinel_bench::grid::GridSession;
use sentinel_bench::runner::{apply_memory, MeasureConfig};
use sentinel_bench::timing::{bench, group, time_fn, time_once};
use sentinel_core::{schedule_function, SchedOptions, SchedulingModel};
use sentinel_isa::MachineDesc;
use sentinel_prog::{asm, Function};
use sentinel_sim::reference::Reference;
use sentinel_sim::{Engine, SimSession};
use sentinel_workloads::{suite, Workload};

struct Cli {
    quick: bool,
    json: Option<String>,
}

fn parse_args() -> Cli {
    let mut cli = Cli {
        quick: false,
        json: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => cli.quick = true,
            "--json" => cli.json = it.next(),
            // `cargo bench` forwards its own flags (e.g. --bench); ignore.
            _ => {}
        }
    }
    cli
}

fn bench_scheduler() {
    group("scheduler");
    let mdes = MachineDesc::paper_issue(8);
    for name in ["grep", "fpppp"] {
        let w = suite::by_name(name).unwrap();
        println!("   ({} static insns)", w.func.insn_count());
        for model in SchedulingModel::all() {
            bench(&format!("{name}/{}", model.tag()), 20, || {
                schedule_function(&w.func, &mdes, &SchedOptions::new(model)).unwrap()
            });
        }
    }
}

/// Schedules `w` for the paper's sentinel model at issue 8.
fn sched_for(w: &Workload) -> (MeasureConfig, Function) {
    let cfg = MeasureConfig::paper(SchedulingModel::Sentinel, 8);
    let sched = schedule_function(
        &w.func,
        &cfg.mdes(),
        &SchedOptions::new(SchedulingModel::Sentinel),
    )
    .unwrap();
    (cfg, sched.func)
}

/// One full run of `func` on `engine`; returns dynamic instructions.
fn run_once(w: &Workload, cfg: &MeasureConfig, func: &Function, engine: Engine) -> u64 {
    let mut m = SimSession::for_function(func)
        .config(cfg.sim_config())
        .engine(engine)
        .build();
    apply_memory(w, m.memory_mut());
    m.run().unwrap();
    m.stats().dyn_insns
}

/// Runs `w` on both engines and panics on any observable difference:
/// outcome, statistics, live-out registers, or final memory.
fn assert_engines_agree(w: &Workload, cfg: &MeasureConfig, func: &Function) {
    let mut states = Vec::new();
    for engine in [Engine::Interpreter, Engine::Fast] {
        let mut m = SimSession::for_function(func)
            .config(cfg.sim_config())
            .engine(engine)
            .build();
        apply_memory(w, m.memory_mut());
        let outcome = m.run().unwrap();
        let regs: Vec<u64> = w.live_out.iter().map(|&r| m.reg(r).data).collect();
        states.push((outcome, *m.stats(), regs, m.memory().snapshot()));
    }
    assert_eq!(
        states[0], states[1],
        "{}: fast engine disagrees with the interpreter",
        w.name
    );
}

/// Per-workload engine comparison row.
struct EngineRow {
    name: String,
    dyn_insns: u64,
    interp_ips: f64,
    fast_ips: f64,
}

fn bench_engines(quick: bool) -> Vec<EngineRow> {
    group("engines (sentinel model, issue 8)");

    // Verification pass: the whole suite, both engines, every run.
    let workloads = suite::shared();
    for w in workloads.iter() {
        let (cfg, func) = sched_for(w);
        assert_engines_agree(w, &cfg, &func);
    }
    println!(
        "   (engines agree on all {} suite workloads)",
        workloads.len()
    );

    // Timing pass.
    let timed: &[&str] = if quick {
        &["compress"]
    } else {
        &["compress", "grep", "yacc", "fpppp"]
    };
    let iters = if quick { 5 } else { 30 };
    let mut rows = Vec::new();
    for name in timed {
        let w = suite::by_name(name).unwrap();
        let (cfg, func) = sched_for(&w);
        let dyn_insns = run_once(&w, &cfg, &func, Engine::Fast);
        let mut ips = [0.0f64; 2];
        for (i, engine) in [Engine::Interpreter, Engine::Fast].into_iter().enumerate() {
            let t = time_fn(iters, || run_once(&w, &cfg, &func, engine));
            ips[i] = dyn_insns as f64 / t.min.as_secs_f64();
        }
        println!(
            "{name:<14} {dyn_insns:>9} insns   interp {:>12.0} ips   fast {:>12.0} ips   x{:.2}",
            ips[0],
            ips[1],
            ips[1] / ips[0]
        );
        rows.push(EngineRow {
            name: name.to_string(),
            dyn_insns,
            interp_ips: ips[0],
            fast_ips: ips[1],
        });
    }
    rows
}

fn bench_reference() {
    group("reference interpreter");
    let w = suite::by_name("yacc").unwrap();
    bench("reference/yacc", 20, || {
        let mut r = Reference::new(&w.func);
        apply_memory(&w, r.memory_mut());
        r.run().unwrap()
    });
}

/// The full figure/ablation grid `reproduce all` evaluates (minus
/// printing and minus the modulo-pipelining study, which manages its
/// own engine-independent session).
fn reproduce_grid(engine: Engine) -> f64 {
    let mut session = GridSession::suite(sentinel_bench::grid::default_jobs());
    session.set_engine(engine);
    let ((), wall) = time_once(|| {
        figure4(&session);
        figure5(&session);
        ablation_store_buffer(&session, &[1, 2, 4, 8, 16, 32]);
        ablation_recovery(&session);
        ablation_formation(&session);
        ablation_boosting(&session);
        ablation_unrolling(&session, &[1, 2, 4]);
        ablation_cache(&session, &[0, 10, 20, 40]);
        ablation_register_pressure(&session);
        sentinel_overhead(&session, 2);
        sentinel_overhead(&session, 8);
    });
    wall.as_secs_f64()
}

fn bench_assembler() {
    group("assembler");
    let w = suite::by_name("compress").unwrap();
    let text = asm::print(&w.func);
    println!("   ({} bytes of assembly)", text.len());
    bench("print/compress", 50, || asm::print(&w.func));
    bench("parse/compress", 50, || asm::parse(&text).unwrap());
}

fn geomean(xs: impl Iterator<Item = f64>) -> f64 {
    let (sum, n) = xs.fold((0.0, 0u32), |(s, n), x| (s + x.ln(), n + 1));
    (sum / n.max(1) as f64).exp()
}

fn write_json(path: &str, rows: &[EngineRow], grid: Option<(f64, f64)>) {
    let mut j = String::from("{\n  \"bench\": \"throughput\",\n  \"engines\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            j,
            "    {{\"workload\": \"{}\", \"dyn_insns\": {}, \"interp_ips\": {:.0}, \
             \"fast_ips\": {:.0}, \"speedup\": {:.2}}}{}",
            r.name,
            r.dyn_insns,
            r.interp_ips,
            r.fast_ips,
            r.fast_ips / r.interp_ips,
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    let gm = geomean(rows.iter().map(|r| r.fast_ips / r.interp_ips));
    let _ = write!(j, "  ],\n  \"geomean_speedup\": {gm:.2}");
    if let Some((interp_s, fast_s)) = grid {
        let _ = write!(
            j,
            ",\n  \"reproduce_grid\": {{\"interpreter_wall_s\": {interp_s:.2}, \
             \"fast_wall_s\": {fast_s:.2}, \"speedup\": {:.2}}}",
            interp_s / fast_s
        );
    }
    j.push_str("\n}\n");
    std::fs::write(path, j).unwrap();
    println!("\nwrote {path}");
}

fn main() {
    let cli = parse_args();
    let rows = bench_engines(cli.quick);
    let mut grid = None;
    if !cli.quick {
        bench_scheduler();
        bench_reference();
        bench_assembler();
        group("reproduce grid (fig4+fig5+ablations), wall clock");
        let interp_s = reproduce_grid(Engine::Interpreter);
        println!("{:<36} {interp_s:>8.2}s", "grid/interpreter");
        let fast_s = reproduce_grid(Engine::Fast);
        println!("{:<36} {fast_s:>8.2}s", "grid/fast");
        grid = Some((interp_s, fast_s));
    }
    if let Some(path) = &cli.json {
        write_json(path, &rows, grid);
    }
}
