//! Component throughput: scheduler, simulator, reference interpreter, and
//! assembler, measured on suite programs.

use sentinel_bench::runner::apply_memory;
use sentinel_bench::timing::{bench, group};
use sentinel_core::{schedule_function, SchedOptions, SchedulingModel};
use sentinel_isa::MachineDesc;
use sentinel_prog::asm;
use sentinel_sim::reference::Reference;
use sentinel_sim::{Machine, SimConfig};
use sentinel_workloads::suite;

fn bench_scheduler() {
    group("scheduler");
    let mdes = MachineDesc::paper_issue(8);
    for name in ["grep", "fpppp"] {
        let w = suite::by_name(name).unwrap();
        println!("   ({} static insns)", w.func.insn_count());
        for model in SchedulingModel::all() {
            bench(&format!("{name}/{}", model.tag()), 20, || {
                schedule_function(&w.func, &mdes, &SchedOptions::new(model)).unwrap()
            });
        }
    }
}

fn bench_simulator() {
    group("simulator");
    let mdes = MachineDesc::paper_issue(8);
    let w = suite::by_name("yacc").unwrap();
    let sched = schedule_function(
        &w.func,
        &mdes,
        &SchedOptions::new(SchedulingModel::Sentinel),
    )
    .unwrap();
    // Dynamic instruction count for throughput reporting.
    let dyn_insns = {
        let mut m = Machine::new(&sched.func, SimConfig::for_mdes(mdes.clone()));
        apply_memory(&w, m.memory_mut());
        m.run().unwrap();
        m.stats().dyn_insns
    };
    println!("   ({dyn_insns} dynamic insns per run)");
    bench("machine/yacc_sentinel_w8", 20, || {
        let mut m = Machine::new(&sched.func, SimConfig::for_mdes(mdes.clone()));
        apply_memory(&w, m.memory_mut());
        m.run().unwrap()
    });
    bench("reference/yacc", 20, || {
        let mut r = Reference::new(&w.func);
        apply_memory(&w, r.memory_mut());
        r.run().unwrap()
    });
}

fn bench_assembler() {
    group("assembler");
    let w = suite::by_name("compress").unwrap();
    let text = asm::print(&w.func);
    println!("   ({} bytes of assembly)", text.len());
    bench("print/compress", 50, || asm::print(&w.func));
    bench("parse/compress", 50, || asm::parse(&text).unwrap());
}

fn main() {
    bench_scheduler();
    bench_simulator();
    bench_assembler();
}
