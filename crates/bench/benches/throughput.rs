//! Component throughput: scheduler, simulator, reference interpreter, and
//! assembler, measured on suite programs.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use sentinel_bench::runner::apply_memory;
use sentinel_core::{schedule_function, SchedOptions, SchedulingModel};
use sentinel_isa::MachineDesc;
use sentinel_prog::asm;
use sentinel_sim::reference::Reference;
use sentinel_sim::{Machine, SimConfig};
use sentinel_workloads::suite;

fn bench_scheduler(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler");
    let mdes = MachineDesc::paper_issue(8);
    for name in ["grep", "fpppp"] {
        let w = suite::by_name(name).unwrap();
        group.throughput(Throughput::Elements(w.func.insn_count() as u64));
        for model in SchedulingModel::all() {
            group.bench_function(format!("{name}/{}", model.tag()), |b| {
                b.iter(|| schedule_function(&w.func, &mdes, &SchedOptions::new(model)).unwrap())
            });
        }
    }
    group.finish();
}

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group.sample_size(20);
    let mdes = MachineDesc::paper_issue(8);
    let w = suite::by_name("yacc").unwrap();
    let sched = schedule_function(&w.func, &mdes, &SchedOptions::new(SchedulingModel::Sentinel))
        .unwrap();
    // Dynamic instruction count for throughput reporting.
    let dyn_insns = {
        let mut m = Machine::new(&sched.func, SimConfig::for_mdes(mdes.clone()));
        apply_memory(&w, m.memory_mut());
        m.run().unwrap();
        m.stats().dyn_insns
    };
    group.throughput(Throughput::Elements(dyn_insns));
    group.bench_function("machine/yacc_sentinel_w8", |b| {
        b.iter(|| {
            let mut m = Machine::new(&sched.func, SimConfig::for_mdes(mdes.clone()));
            apply_memory(&w, m.memory_mut());
            m.run().unwrap()
        })
    });
    group.bench_function("reference/yacc", |b| {
        b.iter(|| {
            let mut r = Reference::new(&w.func);
            apply_memory(&w, r.memory_mut());
            r.run().unwrap()
        })
    });
    group.finish();
}

fn bench_assembler(c: &mut Criterion) {
    let mut group = c.benchmark_group("assembler");
    let w = suite::by_name("compress").unwrap();
    let text = asm::print(&w.func);
    group.throughput(Throughput::Bytes(text.len() as u64));
    group.bench_function("print/compress", |b| b.iter(|| asm::print(&w.func)));
    group.bench_function("parse/compress", |b| b.iter(|| asm::parse(&text).unwrap()));
    group.finish();
}

criterion_group!(benches, bench_scheduler, bench_simulator, bench_assembler);
criterion_main!(benches);
