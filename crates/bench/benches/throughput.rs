//! Component throughput: scheduler, all three execution engines,
//! reference interpreter, and assembler, measured on suite programs.
//!
//! The engine section is the headline: it runs every workload on the
//! interpretive oracle, the pre-decoded fast engine, and the
//! trace-chaining turbo engine, **fails on any disagreement** (outcome,
//! statistics, live-out registers, memory), and reports simulated
//! instructions per second for each. Turbo runs reuse one decoded
//! program per workload (built outside the timed loop), matching the
//! decode-once contract the `ProgramCache` gives the grid and serve
//! workers in production.
//!
//! ```text
//! cargo bench --bench throughput                      # full run
//! cargo bench --bench throughput -- --quick           # CI smoke: verify + small IPS sample
//! cargo bench --bench throughput -- --quick --engine turbo
//! cargo bench --bench throughput -- --json BENCH_4.json
//! ```
//!
//! `--engine E` restricts the *timing* pass to one engine (the
//! verification pass always covers all three); the JSON report carries
//! a column per timed engine.

use std::fmt::Write as _;
use std::sync::Arc;

use sentinel_bench::figures::{
    ablation_boosting, ablation_cache, ablation_formation, ablation_recovery,
    ablation_register_pressure, ablation_store_buffer, ablation_unrolling, figure4, figure5,
    sentinel_overhead,
};
use sentinel_bench::grid::GridSession;
use sentinel_bench::runner::{apply_memory, MeasureConfig};
use sentinel_bench::timing::{bench, group, time_interleaved, time_once};
use sentinel_core::{schedule_function, SchedOptions, SchedulingModel};
use sentinel_isa::MachineDesc;
use sentinel_prog::{asm, Function};
use sentinel_sim::reference::Reference;
use sentinel_sim::{Engine, SimSession, TurboProgram};

use sentinel_workloads::{suite, Workload};

const ALL_ENGINES: [Engine; 3] = [Engine::Interpreter, Engine::Fast, Engine::Turbo];

struct Cli {
    quick: bool,
    json: Option<String>,
    /// Restrict the timing pass to one engine (`--engine E`).
    engine: Option<Engine>,
}

fn parse_args() -> Cli {
    let mut cli = Cli {
        quick: false,
        json: None,
        engine: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => cli.quick = true,
            "--json" => cli.json = it.next(),
            "--engine" => {
                let v = it.next().expect("--engine requires a value");
                cli.engine = Some(v.parse::<Engine>().expect("bad --engine"));
            }
            // `cargo bench` forwards its own flags (e.g. --bench); ignore.
            _ => {}
        }
    }
    cli
}

fn bench_scheduler() {
    group("scheduler");
    let mdes = MachineDesc::paper_issue(8);
    for name in ["grep", "fpppp"] {
        let w = suite::by_name(name).unwrap();
        println!("   ({} static insns)", w.func.insn_count());
        for model in SchedulingModel::all() {
            bench(&format!("{name}/{}", model.tag()), 20, || {
                schedule_function(&w.func, &mdes, &SchedOptions::new(model)).unwrap()
            });
        }
    }
}

/// Schedules `w` for the paper's sentinel model at issue 8.
fn sched_for(w: &Workload) -> (MeasureConfig, Function) {
    let cfg = MeasureConfig::paper(SchedulingModel::Sentinel, 8);
    let sched = schedule_function(
        &w.func,
        &cfg.mdes(),
        &SchedOptions::new(SchedulingModel::Sentinel),
    )
    .unwrap();
    (cfg, sched.func)
}

/// One full run of `func` on `engine`; returns dynamic instructions.
/// Turbo runs share `prog`, decoded once per workload — the steady
/// state every production path (grid, serve) reaches via the
/// `ProgramCache`.
fn run_once(
    w: &Workload,
    cfg: &MeasureConfig,
    func: &Function,
    engine: Engine,
    prog: &Arc<TurboProgram>,
) -> u64 {
    let builder = SimSession::for_function(func).config(cfg.sim_config());
    let mut m = if engine == Engine::Turbo {
        builder.program(Arc::clone(prog)).build()
    } else {
        builder.engine(engine).build()
    };
    apply_memory(w, m.memory_mut());
    m.run().unwrap();
    m.stats().dyn_insns
}

/// Runs `w` on all three engines and panics on any observable
/// difference: outcome, statistics, live-out registers, or final
/// memory.
fn assert_engines_agree(w: &Workload, cfg: &MeasureConfig, func: &Function) {
    let mut states = Vec::new();
    for engine in ALL_ENGINES {
        let mut m = SimSession::for_function(func)
            .config(cfg.sim_config())
            .engine(engine)
            .build();
        apply_memory(w, m.memory_mut());
        let outcome = m.run().unwrap();
        let regs: Vec<u64> = w.live_out.iter().map(|&r| m.reg(r).data).collect();
        states.push((outcome, *m.stats(), regs, m.memory().snapshot()));
    }
    assert_eq!(
        states[0], states[1],
        "{}: fast engine disagrees with the interpreter",
        w.name
    );
    assert_eq!(
        states[0], states[2],
        "{}: turbo engine disagrees with the interpreter",
        w.name
    );
}

/// Per-workload engine comparison row; an engine filtered out of the
/// timing pass has no entry.
struct EngineRow {
    name: String,
    dyn_insns: u64,
    /// (engine, simulated instructions per second), in `ALL_ENGINES`
    /// order, timed engines only.
    ips: Vec<(Engine, f64)>,
}

impl EngineRow {
    fn ips_of(&self, engine: Engine) -> Option<f64> {
        self.ips.iter().find(|(e, _)| *e == engine).map(|(_, v)| *v)
    }
}

fn bench_engines(quick: bool, only: Option<Engine>) -> Vec<EngineRow> {
    group("engines (sentinel model, issue 8)");

    // Verification pass: the whole suite, all three engines, every run.
    let workloads = suite::shared();
    for w in workloads.iter() {
        let (cfg, func) = sched_for(w);
        assert_engines_agree(w, &cfg, &func);
    }
    println!(
        "   (all three engines agree on all {} suite workloads)",
        workloads.len()
    );

    // Timing pass.
    let timed: &[&str] = if quick {
        &["compress"]
    } else {
        &["compress", "grep", "yacc", "fpppp"]
    };
    let engines: Vec<Engine> = ALL_ENGINES
        .into_iter()
        .filter(|e| only.is_none_or(|o| o == *e))
        .collect();
    // Each timed sample runs `reps` back-to-back executions so one
    // sample spans several scheduler quanta — the min of single runs
    // otherwise just selects the luckiest interrupt-free window, which
    // is not the same luck for engines with different run lengths.
    let (rounds, reps) = if quick { (5, 2) } else { (150, 10) };
    let mut rows = Vec::new();
    for name in timed {
        let w = suite::by_name(name).unwrap();
        let (cfg, func) = sched_for(&w);
        let prog = Arc::new(TurboProgram::new(&func, &cfg.mdes()));
        let dyn_insns = run_once(&w, &cfg, &func, Engine::Fast, &prog);
        // Engines alternate within each timing round so host contention
        // cannot bias one engine's whole sample block; the min is the
        // uncontended-time estimate for each.
        let mut fns: Vec<Box<dyn FnMut() + '_>> = engines
            .iter()
            .map(|&engine| {
                let (w, cfg, func, prog) = (&w, &cfg, &func, &prog);
                Box::new(move || {
                    for _ in 0..reps {
                        std::hint::black_box(run_once(w, cfg, func, engine, prog));
                    }
                }) as Box<dyn FnMut() + '_>
            })
            .collect();
        let times = time_interleaved(rounds, &mut fns);
        let mut ips = Vec::new();
        let mut line = format!("{name:<14} {dyn_insns:>9} insns");
        for (&engine, t) in engines.iter().zip(&times) {
            let v = (dyn_insns * reps) as f64 / t.min.as_secs_f64();
            ips.push((engine, v));
            let _ = write!(line, "   {engine} {v:>12.0} ips");
        }
        let row = EngineRow {
            name: name.to_string(),
            dyn_insns,
            ips,
        };
        if let (Some(fast), Some(turbo)) = (row.ips_of(Engine::Fast), row.ips_of(Engine::Turbo)) {
            let _ = write!(line, "   turbo/fast x{:.2}", turbo / fast);
        }
        println!("{line}");
        rows.push(row);
    }
    rows
}

fn bench_reference() {
    group("reference interpreter");
    let w = suite::by_name("yacc").unwrap();
    bench("reference/yacc", 20, || {
        let mut r = Reference::new(&w.func);
        apply_memory(&w, r.memory_mut());
        r.run().unwrap()
    });
}

/// The full figure/ablation grid `reproduce all` evaluates (minus
/// printing and minus the modulo-pipelining study, which manages its
/// own engine-independent session).
fn reproduce_grid(engine: Engine) -> f64 {
    let mut session = GridSession::suite(sentinel_bench::grid::default_jobs());
    session.set_engine(engine);
    let ((), wall) = time_once(|| {
        figure4(&session);
        figure5(&session);
        ablation_store_buffer(&session, &[1, 2, 4, 8, 16, 32]);
        ablation_recovery(&session);
        ablation_formation(&session);
        ablation_boosting(&session);
        ablation_unrolling(&session, &[1, 2, 4]);
        ablation_cache(&session, &[0, 10, 20, 40]);
        ablation_register_pressure(&session);
        sentinel_overhead(&session, 2);
        sentinel_overhead(&session, 8);
    });
    wall.as_secs_f64()
}

fn bench_assembler() {
    group("assembler");
    let w = suite::by_name("compress").unwrap();
    let text = asm::print(&w.func);
    println!("   ({} bytes of assembly)", text.len());
    bench("print/compress", 50, || asm::print(&w.func));
    bench("parse/compress", 50, || asm::parse(&text).unwrap());
}

fn geomean(xs: impl Iterator<Item = f64>) -> f64 {
    let (sum, n) = xs.fold((0.0, 0u32), |(s, n), x| (s + x.ln(), n + 1));
    (sum / n.max(1) as f64).exp()
}

/// Geomean ratio of `num` over `den` across rows where both were timed.
fn geomean_ratio(rows: &[EngineRow], num: Engine, den: Engine) -> Option<f64> {
    let ratios: Vec<f64> = rows
        .iter()
        .filter_map(|r| Some(r.ips_of(num)? / r.ips_of(den)?))
        .collect();
    (!ratios.is_empty()).then(|| geomean(ratios.iter().copied()))
}

fn write_json(path: &str, rows: &[EngineRow], grid: Option<[f64; 3]>) {
    let mut j = String::from("{\n  \"bench\": \"throughput\",\n  \"engines\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let mut fields = format!(
            "\"workload\": \"{}\", \"dyn_insns\": {}",
            r.name, r.dyn_insns
        );
        for &(engine, ips) in &r.ips {
            let _ = write!(fields, ", \"{engine}_ips\": {ips:.0}");
        }
        let _ = writeln!(
            j,
            "    {{{fields}}}{}",
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    j.push_str("  ]");
    if let Some(gm) = geomean_ratio(rows, Engine::Fast, Engine::Interpreter) {
        let _ = write!(j, ",\n  \"geomean_fast_over_interpreter\": {gm:.2}");
    }
    if let Some(gm) = geomean_ratio(rows, Engine::Turbo, Engine::Fast) {
        let _ = write!(j, ",\n  \"geomean_turbo_over_fast\": {gm:.2}");
    }
    if let Some(gm) = geomean_ratio(rows, Engine::Turbo, Engine::Interpreter) {
        let _ = write!(j, ",\n  \"geomean_turbo_over_interpreter\": {gm:.2}");
    }
    if let Some([interp_s, fast_s, turbo_s]) = grid {
        let _ = write!(
            j,
            ",\n  \"reproduce_grid\": {{\"interpreter_wall_s\": {interp_s:.2}, \
             \"fast_wall_s\": {fast_s:.2}, \"turbo_wall_s\": {turbo_s:.2}, \
             \"fast_speedup\": {:.2}, \"turbo_speedup\": {:.2}}}",
            interp_s / fast_s,
            interp_s / turbo_s
        );
    }
    j.push_str("\n}\n");
    std::fs::write(path, j).unwrap();
    println!("\nwrote {path}");
}

fn main() {
    let cli = parse_args();
    let rows = bench_engines(cli.quick, cli.engine);
    let mut grid = None;
    if !cli.quick {
        bench_scheduler();
        bench_reference();
        bench_assembler();
        group("reproduce grid (fig4+fig5+ablations), wall clock");
        let interp_s = reproduce_grid(Engine::Interpreter);
        println!("{:<36} {interp_s:>8.2}s", "grid/interpreter");
        let fast_s = reproduce_grid(Engine::Fast);
        println!("{:<36} {fast_s:>8.2}s", "grid/fast");
        let turbo_s = reproduce_grid(Engine::Turbo);
        println!("{:<36} {turbo_s:>8.2}s", "grid/turbo");
        grid = Some([interp_s, fast_s, turbo_s]);
    }
    if let Some(path) = &cli.json {
        write_json(path, &rows, grid);
    }
}
