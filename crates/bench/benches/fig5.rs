//! Figure 5 end-to-end: prints the regenerated G/S/T speedup table, then
//! times the model-T pipeline on the paper's stand-out winners.

use sentinel_bench::figures::figure5;
use sentinel_bench::report::{improvement_summary, speedup_table};
use sentinel_bench::runner::{measure, MeasureConfig};
use sentinel_bench::timing::{bench, group};
use sentinel_core::SchedulingModel;
use sentinel_workloads::suite;

fn print_figure5_once() {
    let rows = figure5();
    let models = [
        SchedulingModel::GeneralPercolation,
        SchedulingModel::Sentinel,
        SchedulingModel::SentinelStores,
    ];
    println!("\n== regenerated Figure 5 ==");
    print!("{}", speedup_table(&rows, &models));
    print!(
        "{}",
        improvement_summary(
            &rows,
            SchedulingModel::Sentinel,
            SchedulingModel::GeneralPercolation
        )
    );
    print!(
        "{}",
        improvement_summary(
            &rows,
            SchedulingModel::SentinelStores,
            SchedulingModel::Sentinel
        )
    );
}

fn main() {
    print_figure5_once();
    group("fig5_pipeline");
    for name in ["cmp", "grep", "eqntott"] {
        let w = suite::by_name(name).unwrap();
        for (tag, model) in [
            ("general", SchedulingModel::GeneralPercolation),
            ("sentinel", SchedulingModel::Sentinel),
            ("stores", SchedulingModel::SentinelStores),
        ] {
            bench(&format!("{name}/{tag}_w8"), 10, || {
                measure(&w, &MeasureConfig::paper(model, 8))
            });
        }
    }
}
