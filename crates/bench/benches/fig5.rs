//! Figure 5 end-to-end: prints the regenerated G/S/T speedup table, then
//! times the model-T pipeline on the paper's stand-out winners, and the
//! whole figure grid serial vs parallel (fresh sessions — the memoizing
//! cache would otherwise turn the second run into a no-op).

use sentinel_bench::figures::figure5;
use sentinel_bench::grid::{default_jobs, GridSession};
use sentinel_bench::report::{improvement_summary, speedup_table};
use sentinel_bench::runner::{measure, MeasureConfig};
use sentinel_bench::timing::{bench, group, time_once};
use sentinel_core::SchedulingModel;
use sentinel_workloads::suite;

fn print_figure5_once(session: &GridSession) {
    let rows = figure5(session);
    let models = [
        SchedulingModel::GeneralPercolation,
        SchedulingModel::Sentinel,
        SchedulingModel::SentinelStores,
    ];
    println!("\n== regenerated Figure 5 ==");
    print!("{}", speedup_table(&rows, &models));
    print!(
        "{}",
        improvement_summary(
            &rows,
            SchedulingModel::Sentinel,
            SchedulingModel::GeneralPercolation
        )
    );
    print!(
        "{}",
        improvement_summary(
            &rows,
            SchedulingModel::SentinelStores,
            SchedulingModel::Sentinel
        )
    );
}

fn main() {
    print_figure5_once(&GridSession::suite(default_jobs()));
    group("fig5_pipeline");
    for name in ["cmp", "grep", "eqntott"] {
        let w = suite::by_name(name).unwrap();
        for (tag, model) in [
            ("general", SchedulingModel::GeneralPercolation),
            ("sentinel", SchedulingModel::Sentinel),
            ("stores", SchedulingModel::SentinelStores),
        ] {
            bench(&format!("{name}/{tag}_w8"), 10, || {
                measure(&w, &MeasureConfig::paper(model, 8)).unwrap()
            });
        }
    }
    group("fig5_grid");
    let (_, serial) = time_once(|| figure5(&GridSession::suite(1)));
    println!("full grid, --jobs 1                  wall {serial:>10.1?}");
    let jobs = default_jobs();
    let (_, parallel) = time_once(|| figure5(&GridSession::suite(jobs)));
    println!(
        "full grid, --jobs {jobs:<2}                 wall {parallel:>10.1?}  ({:.2}x)",
        serial.as_secs_f64() / parallel.as_secs_f64().max(1e-9)
    );
}
