//! Figure 4 end-to-end: prints the regenerated S-vs-R speedup table, then
//! times the full measurement pipeline (schedule + simulate) for
//! representative benchmarks, and finally the whole figure grid serial
//! vs parallel (fresh sessions — the memoizing cache would otherwise
//! turn the second run into a no-op).

use sentinel_bench::figures::figure4;
use sentinel_bench::grid::{default_jobs, GridSession};
use sentinel_bench::report::{improvement_summary, speedup_table};
use sentinel_bench::runner::{measure, MeasureConfig};
use sentinel_bench::timing::{bench, group, time_once};
use sentinel_core::SchedulingModel;
use sentinel_workloads::suite;

fn print_figure4_once(session: &GridSession) {
    let rows = figure4(session);
    let models = [
        SchedulingModel::RestrictedPercolation,
        SchedulingModel::Sentinel,
    ];
    println!("\n== regenerated Figure 4 ==");
    print!("{}", speedup_table(&rows, &models));
    print!(
        "{}",
        improvement_summary(
            &rows,
            SchedulingModel::Sentinel,
            SchedulingModel::RestrictedPercolation
        )
    );
}

fn main() {
    print_figure4_once(&GridSession::suite(default_jobs()));
    group("fig4_pipeline");
    for name in ["grep", "doduc", "fpppp"] {
        let w = suite::by_name(name).unwrap();
        bench(&format!("{name}/restricted_w8"), 10, || {
            measure(
                &w,
                &MeasureConfig::paper(SchedulingModel::RestrictedPercolation, 8),
            )
            .unwrap()
        });
        bench(&format!("{name}/sentinel_w8"), 10, || {
            measure(&w, &MeasureConfig::paper(SchedulingModel::Sentinel, 8)).unwrap()
        });
    }
    group("fig4_grid");
    let (_, serial) = time_once(|| figure4(&GridSession::suite(1)));
    println!("full grid, --jobs 1                  wall {serial:>10.1?}");
    let jobs = default_jobs();
    let (_, parallel) = time_once(|| figure4(&GridSession::suite(jobs)));
    println!(
        "full grid, --jobs {jobs:<2}                 wall {parallel:>10.1?}  ({:.2}x)",
        serial.as_secs_f64() / parallel.as_secs_f64().max(1e-9)
    );
}
