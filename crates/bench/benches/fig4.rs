//! Figure 4 end-to-end: prints the regenerated S-vs-R speedup table, then
//! times the full measurement pipeline (schedule + simulate) for
//! representative benchmarks.

use sentinel_bench::figures::figure4;
use sentinel_bench::report::{improvement_summary, speedup_table};
use sentinel_bench::runner::{measure, MeasureConfig};
use sentinel_bench::timing::{bench, group};
use sentinel_core::SchedulingModel;
use sentinel_workloads::suite;

fn print_figure4_once() {
    let rows = figure4();
    let models = [
        SchedulingModel::RestrictedPercolation,
        SchedulingModel::Sentinel,
    ];
    println!("\n== regenerated Figure 4 ==");
    print!("{}", speedup_table(&rows, &models));
    print!(
        "{}",
        improvement_summary(
            &rows,
            SchedulingModel::Sentinel,
            SchedulingModel::RestrictedPercolation
        )
    );
}

fn main() {
    print_figure4_once();
    group("fig4_pipeline");
    for name in ["grep", "doduc", "fpppp"] {
        let w = suite::by_name(name).unwrap();
        bench(&format!("{name}/restricted_w8"), 10, || {
            measure(
                &w,
                &MeasureConfig::paper(SchedulingModel::RestrictedPercolation, 8),
            )
        });
        bench(&format!("{name}/sentinel_w8"), 10, || {
            measure(&w, &MeasureConfig::paper(SchedulingModel::Sentinel, 8))
        });
    }
}
