//! Figure 4 end-to-end: prints the regenerated S-vs-R speedup table, then
//! times the full measurement pipeline (schedule + simulate) for
//! representative benchmarks.

use criterion::{criterion_group, criterion_main, Criterion};

use sentinel_bench::figures::figure4;
use sentinel_bench::report::{improvement_summary, speedup_table};
use sentinel_bench::runner::{measure, MeasureConfig};
use sentinel_core::SchedulingModel;
use sentinel_workloads::suite;

fn print_figure4_once() {
    let rows = figure4();
    let models = [
        SchedulingModel::RestrictedPercolation,
        SchedulingModel::Sentinel,
    ];
    println!("\n== regenerated Figure 4 ==");
    print!("{}", speedup_table(&rows, &models));
    print!(
        "{}",
        improvement_summary(
            &rows,
            SchedulingModel::Sentinel,
            SchedulingModel::RestrictedPercolation
        )
    );
}

fn bench_fig4(c: &mut Criterion) {
    print_figure4_once();
    let mut group = c.benchmark_group("fig4_pipeline");
    group.sample_size(10);
    for name in ["grep", "doduc", "fpppp"] {
        let w = suite::by_name(name).unwrap();
        group.bench_function(format!("{name}/restricted_w8"), |b| {
            b.iter(|| {
                measure(
                    &w,
                    &MeasureConfig::paper(SchedulingModel::RestrictedPercolation, 8),
                )
            })
        });
        group.bench_function(format!("{name}/sentinel_w8"), |b| {
            b.iter(|| measure(&w, &MeasureConfig::paper(SchedulingModel::Sentinel, 8)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
