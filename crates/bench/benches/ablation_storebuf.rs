//! Ablation A1: model-T performance as a function of store-buffer size.
//! Prints the sweep, then times the store-heavy benchmarks at the
//! extremes.

use criterion::{criterion_group, criterion_main, Criterion};

use sentinel_bench::figures::ablation_store_buffer;
use sentinel_bench::runner::{measure, MeasureConfig};
use sentinel_core::SchedulingModel;
use sentinel_workloads::suite;

fn print_sweep_once() {
    let sizes = [1, 2, 4, 8, 16, 32];
    println!("\n== regenerated Ablation A1: T speedup (issue 8) vs store-buffer size ==");
    print!("{:<12}", "benchmark");
    for s in sizes {
        print!("{:>8}", format!("N={s}"));
    }
    println!();
    for (bench, series) in ablation_store_buffer(&sizes) {
        print!("{bench:<12}");
        for (_, sp) in series {
            print!("{sp:>8.2}");
        }
        println!();
    }
}

fn bench_storebuf(c: &mut Criterion) {
    print_sweep_once();
    let mut group = c.benchmark_group("storebuf_sizes");
    group.sample_size(10);
    let w = suite::by_name("cmp").unwrap();
    for n in [1usize, 8, 32] {
        group.bench_function(format!("cmp/T_w8_N{n}"), |b| {
            let mut cfg = MeasureConfig::paper(SchedulingModel::SentinelStores, 8);
            cfg.store_buffer = n;
            b.iter(|| measure(&w, &cfg))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_storebuf);
criterion_main!(benches);
