//! Ablation A1: model-T performance as a function of store-buffer size.
//! Prints the sweep, then times the store-heavy benchmarks at the
//! extremes.

use sentinel_bench::figures::ablation_store_buffer;
use sentinel_bench::grid::{default_jobs, GridSession};
use sentinel_bench::runner::{measure, MeasureConfig};
use sentinel_bench::timing::{bench, group};
use sentinel_core::SchedulingModel;
use sentinel_workloads::suite;

fn print_sweep_once() {
    let session = GridSession::suite(default_jobs());
    let sizes = [1, 2, 4, 8, 16, 32];
    println!("\n== regenerated Ablation A1: T speedup (issue 8) vs store-buffer size ==");
    print!("{:<12}", "benchmark");
    for s in sizes {
        print!("{:>8}", format!("N={s}"));
    }
    println!();
    for (bench, series) in ablation_store_buffer(&session, &sizes) {
        print!("{bench:<12}");
        for (_, sp) in series {
            print!("{sp:>8.2}");
        }
        println!();
    }
}

fn main() {
    print_sweep_once();
    group("storebuf_sizes");
    let w = suite::by_name("cmp").unwrap();
    for n in [1usize, 8, 32] {
        let mut cfg = MeasureConfig::paper(SchedulingModel::SentinelStores, 8);
        cfg.store_buffer = n;
        bench(&format!("cmp/T_w8_N{n}"), 10, || measure(&w, &cfg).unwrap());
    }
}
