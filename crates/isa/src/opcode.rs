//! Opcodes and their static classification.

use std::fmt;

/// Function-unit / latency classes, matching paper Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Integer ALU (1 cycle).
    IntAlu,
    /// Integer multiply (3 cycles).
    IntMul,
    /// Integer divide (10 cycles).
    IntDiv,
    /// Branch (1 cycle, 1 delay slot).
    Branch,
    /// Memory load (2 cycles).
    MemLoad,
    /// Memory store (1 cycle).
    MemStore,
    /// Floating-point ALU (3 cycles).
    FpAlu,
    /// Floating-point conversion (3 cycles).
    FpCvt,
    /// Floating-point multiply (3 cycles).
    FpMul,
    /// Floating-point divide (10 cycles).
    FpDiv,
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpClass::IntAlu => "int-alu",
            OpClass::IntMul => "int-mul",
            OpClass::IntDiv => "int-div",
            OpClass::Branch => "branch",
            OpClass::MemLoad => "mem-load",
            OpClass::MemStore => "mem-store",
            OpClass::FpAlu => "fp-alu",
            OpClass::FpCvt => "fp-cvt",
            OpClass::FpMul => "fp-mul",
            OpClass::FpDiv => "fp-div",
        };
        f.write_str(s)
    }
}

/// The instruction opcodes of the reproduction ISA.
///
/// The set mirrors the MIPS-R2000-like RISC assembly language assumed by the
/// paper (§5.1) plus the sentinel-scheduling extensions:
/// [`Opcode::CheckExcept`], [`Opcode::ConfirmStore`], [`Opcode::ClearTag`],
/// and the tag-preserving spills [`Opcode::LdTag`] / [`Opcode::StTag`].
///
/// Potentially trap-causing opcodes — those for which [`Opcode::can_trap`]
/// returns `true` — are exactly the paper's set: memory loads, memory
/// stores, integer divide, and all floating-point arithmetic, conversion,
/// and comparison instructions (§2.2, §5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variants are documented collectively above
pub enum Opcode {
    // ---- integer ALU -------------------------------------------------
    Nop,
    /// Load immediate: `li rd, imm`.
    Li,
    /// Register move: `mov rd, rs`.
    Mov,
    Add,
    Sub,
    And,
    Or,
    Xor,
    /// Shift left logical (register count).
    Sll,
    /// Shift right logical (register count).
    Srl,
    /// Shift right arithmetic (register count).
    Sra,
    /// Set-less-than (signed): `slt rd, rs1, rs2`.
    Slt,
    /// Set-equal: `seq rd, rs1, rs2`.
    Seq,
    /// Add immediate: `addi rd, rs, imm`.
    AddI,
    /// And immediate.
    AndI,
    /// Or immediate.
    OrI,
    /// Xor immediate.
    XorI,
    /// Shift left logical immediate.
    SllI,
    /// Shift right logical immediate.
    SrlI,
    /// Set-less-than immediate (signed).
    SltI,

    // ---- integer multiply / divide ------------------------------------
    Mul,
    /// Integer divide; traps on divide-by-zero and on `i64::MIN / -1`.
    Div,
    /// Integer remainder; traps like [`Opcode::Div`].
    Rem,

    // ---- floating point ------------------------------------------------
    FAdd,
    FSub,
    FMul,
    /// Floating-point divide; traps on divide-by-zero and invalid operands.
    FDiv,
    /// Floating-point move (non-trapping pure copy).
    FMov,
    /// Floating-point load immediate (bits carried in the `imm` field).
    FLi,
    /// Convert integer to floating point: `cvt.if fd, rs`.
    FCvtIF,
    /// Convert floating point to integer: `cvt.fi rd, fs`; traps on NaN /
    /// out-of-range values.
    FCvtFI,
    /// Floating-point less-than into an integer register; traps on NaN.
    FLt,
    /// Floating-point equality into an integer register; traps on NaN.
    FEq,

    // ---- memory ---------------------------------------------------------
    /// Load 64-bit word: `ld rd, imm(rs)`.
    LdW,
    /// Store 64-bit word: `st rs_val, imm(rs_base)`.
    StW,
    /// Load byte (zero-extended).
    LdB,
    /// Store byte (low 8 bits).
    StB,
    /// Floating-point load: `fld fd, imm(rs)`.
    FLd,
    /// Floating-point store: `fst fs, imm(rs)`.
    FSt,
    /// Tag-preserving register save (paper §3.2): stores a register's data
    /// *and* exception tag to memory without signaling on a set tag.
    StTag,
    /// Tag-preserving register restore (paper §3.2).
    LdTag,

    // ---- control ----------------------------------------------------------
    /// Branch if equal: `beq rs1, rs2, target`.
    Beq,
    /// Branch if not equal.
    Bne,
    /// Branch if less-than (signed).
    Blt,
    /// Branch if greater-or-equal (signed).
    Bge,
    /// Unconditional jump.
    Jump,
    /// Subroutine call. Modeled as an opaque, *irreversible* instruction
    /// (paper §3.7): it blocks speculative code motion across it and breaks
    /// restartable sequences, but transfers no control in the simulator.
    Jsr,
    /// Opaque I/O operation; irreversible like [`Opcode::Jsr`].
    Io,
    /// Stop program execution.
    Halt,

    // ---- sentinel-scheduling extensions -----------------------------------
    /// `check_exception(rs)`: the explicit sentinel (paper §3.2). Encoded as
    /// a move whose destination is the hardwired-zero register, it performs
    /// no computation; as a non-speculative instruction it signals if the
    /// source register's exception tag is set.
    CheckExcept,
    /// `confirm_store(index)`: confirms the probationary store-buffer entry
    /// `index` positions from the tail (paper §4.1).
    ConfirmStore,
    /// `clear_tag(rd)`: resets the exception tag of `rd`, inserted for
    /// possibly-uninitialized registers (paper §3.5).
    ClearTag,
}

impl Opcode {
    /// The function-unit / latency class (paper Table 3).
    pub fn class(self) -> OpClass {
        use Opcode::*;
        match self {
            Nop | Li | Mov | Add | Sub | And | Or | Xor | Sll | Srl | Sra | Slt | Seq | AddI
            | AndI | OrI | XorI | SllI | SrlI | SltI | CheckExcept | ConfirmStore | ClearTag
            | Jsr | Io | Halt => OpClass::IntAlu,
            Mul => OpClass::IntMul,
            Div | Rem => OpClass::IntDiv,
            FAdd | FSub | FMov | FLi | FLt | FEq => OpClass::FpAlu,
            FCvtIF | FCvtFI => OpClass::FpCvt,
            FMul => OpClass::FpMul,
            FDiv => OpClass::FpDiv,
            LdW | LdB | FLd | LdTag => OpClass::MemLoad,
            StW | StB | FSt | StTag => OpClass::MemStore,
            Beq | Bne | Blt | Bge | Jump => OpClass::Branch,
        }
    }

    /// Returns `true` for the paper's potential trap-causing instruction
    /// set: memory loads/stores, integer divide, and all fp arithmetic,
    /// conversion, and comparison instructions.
    ///
    /// The tag-preserving spills [`Opcode::LdTag`] / [`Opcode::StTag`] are
    /// excluded: they exist precisely to move exception state without
    /// signaling, and we model them as non-faulting accesses to the spill
    /// area.
    pub fn can_trap(self) -> bool {
        use Opcode::*;
        matches!(
            self,
            LdW | LdB
                | FLd
                | StW
                | StB
                | FSt
                | Div
                | Rem
                | FAdd
                | FSub
                | FMul
                | FDiv
                | FCvtIF
                | FCvtFI
                | FLt
                | FEq
        )
    }

    /// Returns `true` for conditional branches.
    pub fn is_cond_branch(self) -> bool {
        use Opcode::*;
        matches!(self, Beq | Bne | Blt | Bge)
    }

    /// Returns `true` for any control-transfer instruction (conditional
    /// branch, jump, or halt).
    pub fn is_control(self) -> bool {
        self.is_cond_branch() || matches!(self, Opcode::Jump | Opcode::Halt)
    }

    /// Returns `true` for memory loads (including tag-preserving restores).
    pub fn is_load(self) -> bool {
        matches!(self.class(), OpClass::MemLoad)
    }

    /// Returns `true` for memory stores (including tag-preserving saves).
    pub fn is_store(self) -> bool {
        matches!(self.class(), OpClass::MemStore)
    }

    /// Returns `true` for memory accesses of either direction.
    pub fn is_mem(self) -> bool {
        self.is_load() || self.is_store()
    }

    /// Returns `true` for *irreversible* instructions (paper §3.7): I/O,
    /// subroutine calls, and synchronization — instructions whose side
    /// effects prevent re-execution and therefore break restartable
    /// sequences and block speculative code motion across them.
    pub fn is_irreversible(self) -> bool {
        matches!(self, Opcode::Jsr | Opcode::Io)
    }

    /// Returns `true` if the architecture permits this opcode to carry the
    /// speculative modifier at all (paper Appendix: "branches, subroutine
    /// calls, and i/o instructions may not be speculatively executed").
    ///
    /// Store opcodes *are* architecturally speculatable (via the
    /// probationary store buffer of §4); whether a given *scheduling model*
    /// speculates them is decided by the scheduler, not here.
    pub fn may_be_speculative(self) -> bool {
        use Opcode::*;
        !self.is_control()
            && !self.is_irreversible()
            && !matches!(self, CheckExcept | ConfirmStore | ClearTag)
    }

    /// The assembler mnemonic.
    pub fn mnemonic(self) -> &'static str {
        use Opcode::*;
        match self {
            Nop => "nop",
            Li => "li",
            Mov => "mov",
            Add => "add",
            Sub => "sub",
            And => "and",
            Or => "or",
            Xor => "xor",
            Sll => "sll",
            Srl => "srl",
            Sra => "sra",
            Slt => "slt",
            Seq => "seq",
            AddI => "addi",
            AndI => "andi",
            OrI => "ori",
            XorI => "xori",
            SllI => "slli",
            SrlI => "srli",
            SltI => "slti",
            Mul => "mul",
            Div => "div",
            Rem => "rem",
            FAdd => "fadd",
            FSub => "fsub",
            FMul => "fmul",
            FDiv => "fdiv",
            FMov => "fmov",
            FLi => "fli",
            FCvtIF => "cvt.if",
            FCvtFI => "cvt.fi",
            FLt => "flt",
            FEq => "feq",
            LdW => "ld",
            StW => "st",
            LdB => "ldb",
            StB => "stb",
            FLd => "fld",
            FSt => "fst",
            StTag => "st.tag",
            LdTag => "ld.tag",
            Beq => "beq",
            Bne => "bne",
            Blt => "blt",
            Bge => "bge",
            Jump => "jump",
            Jsr => "jsr",
            Io => "io",
            Halt => "halt",
            CheckExcept => "check",
            ConfirmStore => "confirm",
            ClearTag => "clrtag",
        }
    }

    /// All opcodes, in declaration order. Useful for exhaustive tests and
    /// the assembler's mnemonic table.
    pub fn all() -> &'static [Opcode] {
        use Opcode::*;
        &[
            Nop,
            Li,
            Mov,
            Add,
            Sub,
            And,
            Or,
            Xor,
            Sll,
            Srl,
            Sra,
            Slt,
            Seq,
            AddI,
            AndI,
            OrI,
            XorI,
            SllI,
            SrlI,
            SltI,
            Mul,
            Div,
            Rem,
            FAdd,
            FSub,
            FMul,
            FDiv,
            FMov,
            FLi,
            FCvtIF,
            FCvtFI,
            FLt,
            FEq,
            LdW,
            StW,
            LdB,
            StB,
            FLd,
            FSt,
            StTag,
            LdTag,
            Beq,
            Bne,
            Blt,
            Bge,
            Jump,
            Jsr,
            Io,
            Halt,
            CheckExcept,
            ConfirmStore,
            ClearTag,
        ]
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trap_set_matches_paper() {
        // Paper §5.1: "trap on exceptions for memory load, memory store,
        // integer divide, and all floating point instructions."
        for op in Opcode::all() {
            let expected = match op.class() {
                OpClass::MemLoad | OpClass::MemStore => {
                    !matches!(op, Opcode::LdTag | Opcode::StTag)
                }
                OpClass::IntDiv => true,
                OpClass::FpAlu | OpClass::FpCvt | OpClass::FpMul | OpClass::FpDiv => {
                    !matches!(op, Opcode::FMov | Opcode::FLi)
                }
                _ => false,
            };
            assert_eq!(op.can_trap(), expected, "trap classification of {op}");
        }
    }

    #[test]
    fn control_ops_never_speculative() {
        for op in Opcode::all() {
            if op.is_control() || op.is_irreversible() {
                assert!(!op.may_be_speculative(), "{op} must not be speculative");
            }
        }
        assert!(!Opcode::CheckExcept.may_be_speculative());
        assert!(!Opcode::ConfirmStore.may_be_speculative());
        // Stores are architecturally speculatable (probationary entries).
        assert!(Opcode::StW.may_be_speculative());
    }

    #[test]
    fn mnemonics_unique() {
        let mut seen = std::collections::HashSet::new();
        for op in Opcode::all() {
            assert!(seen.insert(op.mnemonic()), "duplicate mnemonic {op}");
        }
    }

    #[test]
    fn class_assignments() {
        assert_eq!(Opcode::Add.class(), OpClass::IntAlu);
        assert_eq!(Opcode::Mul.class(), OpClass::IntMul);
        assert_eq!(Opcode::Div.class(), OpClass::IntDiv);
        assert_eq!(Opcode::LdW.class(), OpClass::MemLoad);
        assert_eq!(Opcode::StW.class(), OpClass::MemStore);
        assert_eq!(Opcode::FAdd.class(), OpClass::FpAlu);
        assert_eq!(Opcode::FCvtIF.class(), OpClass::FpCvt);
        assert_eq!(Opcode::FMul.class(), OpClass::FpMul);
        assert_eq!(Opcode::FDiv.class(), OpClass::FpDiv);
        assert_eq!(Opcode::Beq.class(), OpClass::Branch);
    }

    #[test]
    fn mem_predicates() {
        assert!(Opcode::LdW.is_load());
        assert!(!Opcode::LdW.is_store());
        assert!(Opcode::FSt.is_store());
        assert!(Opcode::StTag.is_mem());
        assert!(!Opcode::Add.is_mem());
    }
}
