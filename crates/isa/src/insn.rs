//! Instructions.

use std::fmt;

use crate::{BlockId, Opcode, Reg};

/// Unique identifier of an instruction within a function.
///
/// Ids are assigned by the program builder and survive scheduling: the
/// scheduler uses them to track each instruction's *home block* and to
/// connect speculated instructions to their sentinels, and the simulator
/// reports them as the architectural "PC" of an instruction (the paper's
/// PC History Queue, §3.2, exists to recover exactly this value).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InsnId(pub u32);

impl InsnId {
    /// Sentinel value for an instruction not yet inserted into a function.
    pub const UNASSIGNED: InsnId = InsnId(u32::MAX);

    /// Returns the raw id.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for InsnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

/// A machine instruction.
///
/// Instructions use a three-address form with up to two register sources,
/// one immediate, an optional register destination, and an optional branch
/// target. The [`Insn::speculative`] flag is the paper's *speculative
/// modifier* bit (§3.2): the compiler sets it on every instruction moved
/// above one or more branches, and the hardware uses it to defer exception
/// signaling through the register exception tags.
///
/// # Examples
///
/// ```
/// use sentinel_isa::{Insn, Reg};
///
/// // r1 = mem(r2+0), speculated above a branch:
/// let i = Insn::ld_w(Reg::int(1), Reg::int(2), 0).speculated();
/// assert!(i.speculative);
/// assert_eq!(i.to_string(), "ld.s r1, 0(r2)");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Insn {
    /// Unique id within the containing function ([`InsnId::UNASSIGNED`]
    /// until inserted).
    pub id: InsnId,
    /// The opcode.
    pub op: Opcode,
    /// Destination register, if any. A destination of `r0` is
    /// architecturally discarded.
    pub dest: Option<Reg>,
    /// First source register. For stores this is the *value* operand.
    pub src1: Option<Reg>,
    /// Second source register. For memory operations this is the *base
    /// address* operand.
    pub src2: Option<Reg>,
    /// Immediate operand: constant for `li`/`addi`-style ops, address
    /// offset for memory ops, store-buffer index for `confirm`, and the
    /// raw `f64` bits for `fli`.
    pub imm: i64,
    /// Branch target for control-transfer instructions.
    pub target: Option<BlockId>,
    /// The speculative modifier (paper §3.2).
    pub speculative: bool,
    /// Boosting level (paper §2.3): the number of branches this
    /// instruction was *boosted* above. Non-zero only under the
    /// instruction-boosting scheduling model; its result is buffered in
    /// the shadow register file (or shadow store buffer) until that many
    /// branches resolve as correctly predicted. Mutually exclusive with
    /// [`Insn::speculative`].
    pub boost: u8,
}

impl Insn {
    /// Creates a bare instruction with no operands.
    pub fn new(op: Opcode) -> Insn {
        Insn {
            id: InsnId::UNASSIGNED,
            op,
            dest: None,
            src1: None,
            src2: None,
            imm: 0,
            target: None,
            speculative: false,
            boost: 0,
        }
    }

    // ---- construction helpers ------------------------------------------

    /// `nop`.
    pub fn nop() -> Insn {
        Insn::new(Opcode::Nop)
    }

    /// `li rd, imm`.
    pub fn li(rd: Reg, imm: i64) -> Insn {
        Insn {
            dest: Some(rd),
            imm,
            ..Insn::new(Opcode::Li)
        }
    }

    /// `fli fd, value` (bits carried in the immediate field).
    pub fn fli(fd: Reg, value: f64) -> Insn {
        Insn {
            dest: Some(fd),
            imm: value.to_bits() as i64,
            ..Insn::new(Opcode::FLi)
        }
    }

    /// `mov rd, rs`.
    pub fn mov(rd: Reg, rs: Reg) -> Insn {
        Insn {
            dest: Some(rd),
            src1: Some(rs),
            ..Insn::new(Opcode::Mov)
        }
    }

    /// `fmov fd, fs`.
    pub fn fmov(fd: Reg, fs: Reg) -> Insn {
        Insn {
            dest: Some(fd),
            src1: Some(fs),
            ..Insn::new(Opcode::FMov)
        }
    }

    /// Three-register ALU form `op rd, rs1, rs2` (also used for fp ops and
    /// fp compares).
    pub fn alu(op: Opcode, rd: Reg, rs1: Reg, rs2: Reg) -> Insn {
        Insn {
            dest: Some(rd),
            src1: Some(rs1),
            src2: Some(rs2),
            ..Insn::new(op)
        }
    }

    /// Register-immediate ALU form `op rd, rs, imm`.
    pub fn alui(op: Opcode, rd: Reg, rs: Reg, imm: i64) -> Insn {
        Insn {
            dest: Some(rd),
            src1: Some(rs),
            imm,
            ..Insn::new(op)
        }
    }

    /// `addi rd, rs, imm`.
    pub fn addi(rd: Reg, rs: Reg, imm: i64) -> Insn {
        Insn::alui(Opcode::AddI, rd, rs, imm)
    }

    /// Word load `ld rd, imm(base)`.
    pub fn ld_w(rd: Reg, base: Reg, imm: i64) -> Insn {
        Insn {
            dest: Some(rd),
            src2: Some(base),
            imm,
            ..Insn::new(Opcode::LdW)
        }
    }

    /// Byte load `ldb rd, imm(base)`.
    pub fn ld_b(rd: Reg, base: Reg, imm: i64) -> Insn {
        Insn {
            dest: Some(rd),
            src2: Some(base),
            imm,
            ..Insn::new(Opcode::LdB)
        }
    }

    /// Fp load `fld fd, imm(base)`.
    pub fn fld(fd: Reg, base: Reg, imm: i64) -> Insn {
        Insn {
            dest: Some(fd),
            src2: Some(base),
            imm,
            ..Insn::new(Opcode::FLd)
        }
    }

    /// Word store `st val, imm(base)`.
    pub fn st_w(val: Reg, base: Reg, imm: i64) -> Insn {
        Insn {
            src1: Some(val),
            src2: Some(base),
            imm,
            ..Insn::new(Opcode::StW)
        }
    }

    /// Byte store `stb val, imm(base)`.
    pub fn st_b(val: Reg, base: Reg, imm: i64) -> Insn {
        Insn {
            src1: Some(val),
            src2: Some(base),
            imm,
            ..Insn::new(Opcode::StB)
        }
    }

    /// Fp store `fst val, imm(base)`.
    pub fn fst(val: Reg, base: Reg, imm: i64) -> Insn {
        Insn {
            src1: Some(val),
            src2: Some(base),
            imm,
            ..Insn::new(Opcode::FSt)
        }
    }

    /// Tag-preserving save `st.tag rs, imm(base)` (paper §3.2).
    pub fn st_tag(val: Reg, base: Reg, imm: i64) -> Insn {
        Insn {
            src1: Some(val),
            src2: Some(base),
            imm,
            ..Insn::new(Opcode::StTag)
        }
    }

    /// Tag-preserving restore `ld.tag rd, imm(base)` (paper §3.2).
    pub fn ld_tag(rd: Reg, base: Reg, imm: i64) -> Insn {
        Insn {
            dest: Some(rd),
            src2: Some(base),
            imm,
            ..Insn::new(Opcode::LdTag)
        }
    }

    /// Conditional branch `op rs1, rs2, target`.
    pub fn branch(op: Opcode, rs1: Reg, rs2: Reg, target: BlockId) -> Insn {
        debug_assert!(op.is_cond_branch());
        Insn {
            src1: Some(rs1),
            src2: Some(rs2),
            target: Some(target),
            ..Insn::new(op)
        }
    }

    /// `jump target`.
    pub fn jump(target: BlockId) -> Insn {
        Insn {
            target: Some(target),
            ..Insn::new(Opcode::Jump)
        }
    }

    /// `jsr` — opaque subroutine call (irreversible, paper §3.7).
    pub fn jsr() -> Insn {
        Insn::new(Opcode::Jsr)
    }

    /// `io` — opaque I/O operation (irreversible, paper §3.7).
    pub fn io() -> Insn {
        Insn::new(Opcode::Io)
    }

    /// `halt`.
    pub fn halt() -> Insn {
        Insn::new(Opcode::Halt)
    }

    /// `check_exception(rs)` — the explicit sentinel (paper §3.2). The
    /// destination is the hardwired-zero register, as the paper suggests
    /// for MIPS-like ISAs.
    pub fn check_exception(rs: Reg) -> Insn {
        Insn {
            dest: Some(Reg::ZERO),
            src1: Some(rs),
            ..Insn::new(Opcode::CheckExcept)
        }
    }

    /// `confirm_store(index)` — confirms the probationary store-buffer
    /// entry `index` positions from the tail (paper §4.1).
    pub fn confirm_store(index: u32) -> Insn {
        Insn {
            imm: index as i64,
            ..Insn::new(Opcode::ConfirmStore)
        }
    }

    /// `clear_tag(rd)` — resets `rd`'s exception tag (paper §3.5).
    pub fn clear_tag(rd: Reg) -> Insn {
        Insn {
            dest: Some(rd),
            ..Insn::new(Opcode::ClearTag)
        }
    }

    // ---- modifiers -------------------------------------------------------

    /// Returns the instruction with the speculative modifier set.
    pub fn speculated(mut self) -> Insn {
        self.speculative = true;
        self
    }

    /// Returns the instruction boosted above `levels` branches (§2.3).
    pub fn boosted(mut self, levels: u8) -> Insn {
        self.boost = levels;
        self
    }

    /// Returns the instruction with the given id.
    pub fn with_id(mut self, id: InsnId) -> Insn {
        self.id = id;
        self
    }

    // ---- accessors -------------------------------------------------------

    /// The fp-immediate view of the `imm` field (for [`Opcode::FLi`]).
    pub fn fimm(&self) -> f64 {
        f64::from_bits(self.imm as u64)
    }

    /// The architectural destination: `dest`, except that writes to the
    /// hardwired-zero register define nothing.
    pub fn def(&self) -> Option<Reg> {
        self.dest.filter(|r| !r.is_zero())
    }

    /// Source registers in operand order (first, then second), skipping
    /// `r0` uses (which always read zero with a clear tag).
    pub fn uses(&self) -> impl Iterator<Item = Reg> + '_ {
        [self.src1, self.src2]
            .into_iter()
            .flatten()
            .filter(|r| !r.is_zero())
    }

    /// Source registers in operand order including `r0`.
    pub fn raw_srcs(&self) -> impl Iterator<Item = Reg> + '_ {
        [self.src1, self.src2].into_iter().flatten()
    }

    /// Replaces every use of `from` with `to`. Returns `true` if anything
    /// changed.
    pub fn rename_use(&mut self, from: Reg, to: Reg) -> bool {
        let mut changed = false;
        if self.src1 == Some(from) {
            self.src1 = Some(to);
            changed = true;
        }
        if self.src2 == Some(from) {
            self.src2 = Some(to);
            changed = true;
        }
        changed
    }

    /// Replaces the destination if it equals `from`. Returns `true` if it
    /// changed.
    pub fn rename_def(&mut self, from: Reg, to: Reg) -> bool {
        if self.dest == Some(from) {
            self.dest = Some(to);
            true
        } else {
            false
        }
    }
}

impl fmt::Display for Insn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Opcode::*;
        let m = self.op.mnemonic();
        let boost_suffix;
        let s = if self.speculative {
            ".s"
        } else if self.boost > 0 {
            boost_suffix = format!(".b{}", self.boost);
            boost_suffix.as_str()
        } else {
            ""
        };
        match self.op {
            Nop | Jsr | Io | Halt => write!(f, "{m}{s}"),
            Li => write!(f, "{m}{s} {}, {}", self.dest.unwrap(), self.imm),
            FLi => write!(f, "{m}{s} {}, {}", self.dest.unwrap(), self.fimm()),
            Mov | FMov | FCvtIF | FCvtFI => {
                write!(f, "{m}{s} {}, {}", self.dest.unwrap(), self.src1.unwrap())
            }
            AddI | AndI | OrI | XorI | SllI | SrlI | SltI => write!(
                f,
                "{m}{s} {}, {}, {}",
                self.dest.unwrap(),
                self.src1.unwrap(),
                self.imm
            ),
            LdW | LdB | FLd | LdTag => write!(
                f,
                "{m}{s} {}, {}({})",
                self.dest.unwrap(),
                self.imm,
                self.src2.unwrap()
            ),
            StW | StB | FSt | StTag => write!(
                f,
                "{m}{s} {}, {}({})",
                self.src1.unwrap(),
                self.imm,
                self.src2.unwrap()
            ),
            Beq | Bne | Blt | Bge => write!(
                f,
                "{m}{s} {}, {}, {}",
                self.src1.unwrap(),
                self.src2.unwrap(),
                self.target.unwrap()
            ),
            Jump => write!(f, "{m}{s} {}", self.target.unwrap()),
            CheckExcept => write!(f, "{m}{s} {}", self.src1.unwrap()),
            ConfirmStore => write!(f, "{m}{s} {}", self.imm),
            ClearTag => write!(f, "{m}{s} {}", self.dest.unwrap()),
            _ => {
                // Generic three-register form.
                write!(f, "{m}{s} {}", self.dest.unwrap())?;
                for r in self.raw_srcs() {
                    write!(f, ", {r}")?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn def_ignores_zero_register() {
        let check = Insn::check_exception(Reg::int(5));
        assert_eq!(check.def(), None);
        assert_eq!(check.uses().collect::<Vec<_>>(), vec![Reg::int(5)]);

        let add = Insn::alu(Opcode::Add, Reg::int(1), Reg::int(2), Reg::int(3));
        assert_eq!(add.def(), Some(Reg::int(1)));
    }

    #[test]
    fn uses_skip_zero_register() {
        let b = Insn::branch(Opcode::Beq, Reg::int(2), Reg::ZERO, BlockId(1));
        assert_eq!(b.uses().collect::<Vec<_>>(), vec![Reg::int(2)]);
        assert_eq!(b.raw_srcs().count(), 2);
    }

    #[test]
    fn store_operand_roles() {
        let st = Insn::st_w(Reg::int(4), Reg::int(2), 8);
        assert_eq!(st.src1, Some(Reg::int(4)), "value operand");
        assert_eq!(st.src2, Some(Reg::int(2)), "base operand");
        assert_eq!(st.def(), None);
    }

    #[test]
    fn rename_helpers() {
        let mut i = Insn::alu(Opcode::Add, Reg::int(1), Reg::int(2), Reg::int(2));
        assert!(i.rename_use(Reg::int(2), Reg::int(9)));
        assert_eq!(i.src1, Some(Reg::int(9)));
        assert_eq!(i.src2, Some(Reg::int(9)));
        assert!(!i.rename_use(Reg::int(2), Reg::int(9)));
        assert!(i.rename_def(Reg::int(1), Reg::int(10)));
        assert_eq!(i.dest, Some(Reg::int(10)));
    }

    #[test]
    fn fli_roundtrips_bits() {
        let i = Insn::fli(Reg::fp(1), 3.75);
        assert_eq!(i.fimm(), 3.75);
        let nan = Insn::fli(Reg::fp(1), f64::NAN);
        assert!(nan.fimm().is_nan());
    }

    #[test]
    fn display_forms() {
        assert_eq!(
            Insn::ld_w(Reg::int(1), Reg::int(2), 0).to_string(),
            "ld r1, 0(r2)"
        );
        assert_eq!(
            Insn::st_w(Reg::int(4), Reg::int(2), 4)
                .speculated()
                .to_string(),
            "st.s r4, 4(r2)"
        );
        assert_eq!(
            Insn::branch(Opcode::Beq, Reg::int(2), Reg::ZERO, BlockId(3)).to_string(),
            "beq r2, r0, B3"
        );
        assert_eq!(Insn::check_exception(Reg::int(5)).to_string(), "check r5");
        assert_eq!(Insn::confirm_store(2).to_string(), "confirm 2");
        assert_eq!(
            Insn::alu(Opcode::Add, Reg::int(4), Reg::int(1), Reg::int(3)).to_string(),
            "add r4, r1, r3"
        );
        assert_eq!(Insn::li(Reg::int(7), -3).to_string(), "li r7, -3");
    }

    #[test]
    fn speculated_sets_flag_only() {
        let i = Insn::ld_w(Reg::int(1), Reg::int(2), 0);
        let s = i.clone().speculated();
        assert!(!i.speculative && s.speculative);
        assert_eq!(i.op, s.op);
    }

    #[test]
    fn boosted_display_and_flag() {
        let i = Insn::ld_w(Reg::int(1), Reg::int(2), 0).boosted(2);
        assert_eq!(i.boost, 2);
        assert!(!i.speculative);
        assert_eq!(i.to_string(), "ld.b2 r1, 0(r2)");
        assert_eq!(Insn::nop().boost, 0);
    }
}
