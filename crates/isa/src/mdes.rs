//! Machine description: the architectural parameters the scheduler and
//! simulator agree on (paper §5.1, Table 3).

use std::fmt;

use crate::{OpClass, Opcode};

/// Deterministic instruction latencies, indexed by [`OpClass`].
///
/// The default is paper Table 3:
///
/// | class          | latency |
/// |----------------|---------|
/// | Int ALU        | 1       |
/// | Int multiply   | 3       |
/// | Int divide     | 10      |
/// | branch         | 1 (+1 slot) |
/// | memory load    | 2       |
/// | memory store   | 1       |
/// | FP ALU         | 3       |
/// | FP conversion  | 3       |
/// | FP multiply    | 3       |
/// | FP divide      | 10      |
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyTable {
    int_alu: u32,
    int_mul: u32,
    int_div: u32,
    branch: u32,
    mem_load: u32,
    mem_store: u32,
    fp_alu: u32,
    fp_cvt: u32,
    fp_mul: u32,
    fp_div: u32,
}

impl LatencyTable {
    /// Paper Table 3 latencies.
    pub fn paper() -> LatencyTable {
        LatencyTable {
            int_alu: 1,
            int_mul: 3,
            int_div: 10,
            branch: 1,
            mem_load: 2,
            mem_store: 1,
            fp_alu: 3,
            fp_cvt: 3,
            fp_mul: 3,
            fp_div: 10,
        }
    }

    /// Uniform unit latencies (useful for the paper's worked examples,
    /// §3.4 and §3.7, which assume one cycle per instruction).
    pub fn unit() -> LatencyTable {
        LatencyTable {
            int_alu: 1,
            int_mul: 1,
            int_div: 1,
            branch: 1,
            mem_load: 1,
            mem_store: 1,
            fp_alu: 1,
            fp_cvt: 1,
            fp_mul: 1,
            fp_div: 1,
        }
    }

    /// Latency of an operation class, in cycles.
    pub fn of(&self, class: OpClass) -> u32 {
        match class {
            OpClass::IntAlu => self.int_alu,
            OpClass::IntMul => self.int_mul,
            OpClass::IntDiv => self.int_div,
            OpClass::Branch => self.branch,
            OpClass::MemLoad => self.mem_load,
            OpClass::MemStore => self.mem_store,
            OpClass::FpAlu => self.fp_alu,
            OpClass::FpCvt => self.fp_cvt,
            OpClass::FpMul => self.fp_mul,
            OpClass::FpDiv => self.fp_div,
        }
    }

    /// Overrides the latency of one class (for ablations).
    pub fn with(mut self, class: OpClass, latency: u32) -> LatencyTable {
        assert!(latency >= 1, "latency must be at least one cycle");
        let slot = match class {
            OpClass::IntAlu => &mut self.int_alu,
            OpClass::IntMul => &mut self.int_mul,
            OpClass::IntDiv => &mut self.int_div,
            OpClass::Branch => &mut self.branch,
            OpClass::MemLoad => &mut self.mem_load,
            OpClass::MemStore => &mut self.mem_store,
            OpClass::FpAlu => &mut self.fp_alu,
            OpClass::FpCvt => &mut self.fp_cvt,
            OpClass::FpMul => &mut self.fp_mul,
            OpClass::FpDiv => &mut self.fp_div,
        };
        *slot = latency;
        self
    }
}

impl Default for LatencyTable {
    fn default() -> Self {
        LatencyTable::paper()
    }
}

/// The machine description consumed by both the scheduler and the
/// simulator.
///
/// Mirrors the paper's evaluation machine (§5.1): an in-order
/// VLIW/superscalar with CRAY-1-style interlocking, deterministic
/// latencies, 64 integer + 64 floating-point registers, an 8-entry store
/// buffer, and an issue rate of 1, 2, 4, or 8 with *no* restriction on the
/// combination of operations issued per cycle (§5.2) other than one taken
/// branch redirect per cycle.
///
/// # Examples
///
/// ```
/// use sentinel_isa::{MachineDesc, Opcode};
///
/// let m = MachineDesc::paper_issue(4);
/// assert_eq!(m.issue_width(), 4);
/// assert_eq!(m.latency(Opcode::FDiv), 10);
/// assert_eq!(m.store_buffer_size(), 8);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineDesc {
    issue_width: usize,
    branches_per_cycle: usize,
    int_regs: usize,
    fp_regs: usize,
    store_buffer_size: usize,
    latencies: LatencyTable,
}

impl MachineDesc {
    /// The paper's machine at a given issue rate (1, 2, 4, or 8 in the
    /// paper; any positive width is accepted for sweeps).
    ///
    /// # Panics
    ///
    /// Panics if `issue_width` is zero.
    pub fn paper_issue(issue_width: usize) -> MachineDesc {
        MachineDescBuilder::new().issue_width(issue_width).build()
    }

    /// The paper's machine with every latency forced to one cycle — the
    /// standard unit-latency test machine shared by scheduler and
    /// simulator tests, where schedule lengths are easy to reason about
    /// by hand.
    ///
    /// # Panics
    ///
    /// Panics if `issue_width` is zero.
    pub fn unit_issue(issue_width: usize) -> MachineDesc {
        MachineDescBuilder::new()
            .issue_width(issue_width)
            .latencies(LatencyTable::unit())
            .build()
    }

    /// The paper's *base machine*: issue rate 1 (speedups in Figures 4 and
    /// 5 are computed relative to this machine running restricted
    /// percolation code).
    pub fn base() -> MachineDesc {
        MachineDesc::paper_issue(1)
    }

    /// Starts a builder initialized with the paper's parameters.
    pub fn builder() -> MachineDescBuilder {
        MachineDescBuilder::new()
    }

    /// Maximum instructions fetched/issued per cycle.
    pub fn issue_width(&self) -> usize {
        self.issue_width
    }

    /// Maximum branches issued per cycle.
    pub fn branches_per_cycle(&self) -> usize {
        self.branches_per_cycle
    }

    /// Architectural integer register count.
    pub fn int_regs(&self) -> usize {
        self.int_regs
    }

    /// Architectural floating-point register count.
    pub fn fp_regs(&self) -> usize {
        self.fp_regs
    }

    /// Store buffer entries (`N`). Paper §4.2: a speculative store must be
    /// confirmed or cancelled within `N − 1` stores of itself to avoid
    /// deadlock, so this is an input to the scheduler as well as the
    /// simulator.
    pub fn store_buffer_size(&self) -> usize {
        self.store_buffer_size
    }

    /// The latency table.
    pub fn latencies(&self) -> &LatencyTable {
        &self.latencies
    }

    /// Latency of an opcode, in cycles.
    pub fn latency(&self, op: Opcode) -> u32 {
        self.latencies.of(op.class())
    }
}

impl Default for MachineDesc {
    fn default() -> Self {
        MachineDesc::paper_issue(8)
    }
}

impl fmt::Display for MachineDesc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "issue-{} machine ({} int / {} fp regs, {}-entry store buffer)",
            self.issue_width, self.int_regs, self.fp_regs, self.store_buffer_size
        )
    }
}

/// Builder for [`MachineDesc`], defaulting to the paper's parameters.
///
/// # Examples
///
/// ```
/// use sentinel_isa::MachineDesc;
///
/// let m = MachineDesc::builder()
///     .issue_width(2)
///     .store_buffer_size(4)
///     .build();
/// assert_eq!(m.store_buffer_size(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct MachineDescBuilder {
    issue_width: usize,
    branches_per_cycle: usize,
    int_regs: usize,
    fp_regs: usize,
    store_buffer_size: usize,
    latencies: LatencyTable,
}

impl MachineDescBuilder {
    /// Creates a builder with the paper's defaults (issue 8).
    pub fn new() -> MachineDescBuilder {
        MachineDescBuilder {
            issue_width: 8,
            branches_per_cycle: 1,
            int_regs: 64,
            fp_regs: 64,
            store_buffer_size: 8,
            latencies: LatencyTable::paper(),
        }
    }

    /// Sets the issue width.
    pub fn issue_width(mut self, width: usize) -> Self {
        self.issue_width = width;
        self
    }

    /// Sets the number of branches issuable per cycle.
    pub fn branches_per_cycle(mut self, n: usize) -> Self {
        self.branches_per_cycle = n;
        self
    }

    /// Sets the integer register count.
    pub fn int_regs(mut self, n: usize) -> Self {
        self.int_regs = n;
        self
    }

    /// Sets the floating-point register count.
    pub fn fp_regs(mut self, n: usize) -> Self {
        self.fp_regs = n;
        self
    }

    /// Sets the store-buffer entry count.
    pub fn store_buffer_size(mut self, n: usize) -> Self {
        self.store_buffer_size = n;
        self
    }

    /// Replaces the latency table.
    pub fn latencies(mut self, table: LatencyTable) -> Self {
        self.latencies = table;
        self
    }

    /// Builds the machine description.
    ///
    /// # Panics
    ///
    /// Panics if the issue width, branch limit, register counts, or store
    /// buffer size is zero.
    pub fn build(self) -> MachineDesc {
        assert!(self.issue_width >= 1, "issue width must be positive");
        assert!(
            self.branches_per_cycle >= 1,
            "branch limit must be positive"
        );
        assert!(
            self.int_regs >= 1 && self.fp_regs >= 1,
            "register files must be non-empty"
        );
        assert!(
            self.store_buffer_size >= 1,
            "store buffer must have at least one entry"
        );
        MachineDesc {
            issue_width: self.issue_width,
            branches_per_cycle: self.branches_per_cycle,
            int_regs: self.int_regs,
            fp_regs: self.fp_regs,
            store_buffer_size: self.store_buffer_size,
            latencies: self.latencies,
        }
    }
}

impl Default for MachineDescBuilder {
    fn default() -> Self {
        MachineDescBuilder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Opcode;

    #[test]
    fn table3_latencies() {
        let m = MachineDesc::paper_issue(8);
        assert_eq!(m.latency(Opcode::Add), 1);
        assert_eq!(m.latency(Opcode::Mul), 3);
        assert_eq!(m.latency(Opcode::Div), 10);
        assert_eq!(m.latency(Opcode::Beq), 1);
        assert_eq!(m.latency(Opcode::LdW), 2);
        assert_eq!(m.latency(Opcode::StW), 1);
        assert_eq!(m.latency(Opcode::FAdd), 3);
        assert_eq!(m.latency(Opcode::FCvtIF), 3);
        assert_eq!(m.latency(Opcode::FMul), 3);
        assert_eq!(m.latency(Opcode::FDiv), 10);
    }

    #[test]
    fn paper_machine_parameters() {
        let m = MachineDesc::paper_issue(4);
        assert_eq!(m.issue_width(), 4);
        assert_eq!(m.int_regs(), 64);
        assert_eq!(m.fp_regs(), 64);
        assert_eq!(m.store_buffer_size(), 8);
        assert_eq!(m.branches_per_cycle(), 1);
        assert_eq!(MachineDesc::base().issue_width(), 1);
    }

    #[test]
    fn builder_overrides() {
        let m = MachineDesc::builder()
            .issue_width(2)
            .store_buffer_size(16)
            .int_regs(32)
            .latencies(LatencyTable::unit())
            .build();
        assert_eq!(m.issue_width(), 2);
        assert_eq!(m.store_buffer_size(), 16);
        assert_eq!(m.int_regs(), 32);
        assert_eq!(m.latency(Opcode::FDiv), 1);
    }

    #[test]
    fn latency_table_with_override() {
        let t = LatencyTable::paper().with(OpClass::MemLoad, 4);
        assert_eq!(t.of(OpClass::MemLoad), 4);
        assert_eq!(t.of(OpClass::IntAlu), 1);
    }

    #[test]
    #[should_panic(expected = "issue width")]
    fn zero_issue_width_panics() {
        let _ = MachineDesc::paper_issue(0);
    }

    #[test]
    fn display_mentions_parameters() {
        let s = MachineDesc::paper_issue(8).to_string();
        assert!(s.contains("issue-8"));
        assert!(s.contains("store buffer"));
    }
}
