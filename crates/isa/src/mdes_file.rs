//! Machine-description files.
//!
//! Paper §5.1: "The instruction scheduler takes as an input a machine
//! description file that characterizes the instruction set, the
//! microarchitecture (including the number of instructions that can be
//! fetched/issued in a cycle and the instruction latencies), and the code
//! scheduling model." This module provides that file format:
//!
//! ```text
//! # the paper's machine at issue 8
//! issue_width        8
//! branches_per_cycle 1
//! int_regs           64
//! fp_regs            64
//! store_buffer       8
//! latency int-alu    1
//! latency mem-load   2
//! …
//! ```
//!
//! Unspecified fields keep the paper's defaults; `print_mdes` emits a
//! complete, re-parseable description.

use std::fmt::Write as _;

use crate::{LatencyTable, MachineDesc, OpClass};

/// All operation classes, in Table 3 order.
pub const OP_CLASSES: [OpClass; 10] = [
    OpClass::IntAlu,
    OpClass::IntMul,
    OpClass::IntDiv,
    OpClass::Branch,
    OpClass::MemLoad,
    OpClass::MemStore,
    OpClass::FpAlu,
    OpClass::FpCvt,
    OpClass::FpMul,
    OpClass::FpDiv,
];

/// A machine-description parse error with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MdesParseError {
    /// 1-based line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for MdesParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for MdesParseError {}

fn err(line: usize, message: impl Into<String>) -> MdesParseError {
    MdesParseError {
        line,
        message: message.into(),
    }
}

fn parse_class(s: &str, line: usize) -> Result<OpClass, MdesParseError> {
    OP_CLASSES
        .iter()
        .copied()
        .find(|c| c.to_string() == s)
        .ok_or_else(|| err(line, format!("unknown operation class '{s}'")))
}

/// Parses a machine description, starting from the paper's defaults.
///
/// # Errors
///
/// See [`MdesParseError`].
///
/// # Examples
///
/// ```
/// use sentinel_isa::mdes_file::parse_mdes;
/// use sentinel_isa::Opcode;
///
/// let m = parse_mdes("issue_width 4\nlatency mem-load 3\n")?;
/// assert_eq!(m.issue_width(), 4);
/// assert_eq!(m.latency(Opcode::LdW), 3);
/// # Ok::<(), sentinel_isa::mdes_file::MdesParseError>(())
/// ```
pub fn parse_mdes(text: &str) -> Result<MachineDesc, MdesParseError> {
    let mut issue = 8usize;
    let mut branches = 1usize;
    let mut int_regs = 64usize;
    let mut fp_regs = 64usize;
    let mut store_buffer = 8usize;
    let mut latencies = LatencyTable::paper();

    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let code = raw.split('#').next().unwrap_or("").trim();
        if code.is_empty() {
            continue;
        }
        let mut parts = code.split_whitespace();
        let key = parts.next().unwrap();
        let parse_usize = |tok: Option<&str>| -> Result<usize, MdesParseError> {
            let tok = tok.ok_or_else(|| err(line, format!("'{key}' needs a value")))?;
            tok.parse()
                .map_err(|_| err(line, format!("bad value '{tok}'")))
        };
        match key {
            "issue_width" => issue = parse_usize(parts.next())?,
            "branches_per_cycle" => branches = parse_usize(parts.next())?,
            "int_regs" => int_regs = parse_usize(parts.next())?,
            "fp_regs" => fp_regs = parse_usize(parts.next())?,
            "store_buffer" => store_buffer = parse_usize(parts.next())?,
            "latency" => {
                let class_tok = parts
                    .next()
                    .ok_or_else(|| err(line, "'latency' needs a class and a value"))?;
                let class = parse_class(class_tok, line)?;
                let v = parse_usize(parts.next())?;
                if v == 0 {
                    return Err(err(line, "latency must be at least 1"));
                }
                latencies = latencies.with(class, v as u32);
            }
            other => return Err(err(line, format!("unknown key '{other}'"))),
        }
        if let Some(extra) = parts.next() {
            return Err(err(line, format!("unexpected trailing token '{extra}'")));
        }
    }
    if issue == 0 || branches == 0 || int_regs == 0 || fp_regs == 0 || store_buffer == 0 {
        return Err(err(0, "all machine parameters must be positive"));
    }
    Ok(MachineDesc::builder()
        .issue_width(issue)
        .branches_per_cycle(branches)
        .int_regs(int_regs)
        .fp_regs(fp_regs)
        .store_buffer_size(store_buffer)
        .latencies(latencies)
        .build())
}

/// Prints a complete machine description (re-parseable).
pub fn print_mdes(m: &MachineDesc) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "issue_width {}", m.issue_width());
    let _ = writeln!(out, "branches_per_cycle {}", m.branches_per_cycle());
    let _ = writeln!(out, "int_regs {}", m.int_regs());
    let _ = writeln!(out, "fp_regs {}", m.fp_regs());
    let _ = writeln!(out, "store_buffer {}", m.store_buffer_size());
    for class in OP_CLASSES {
        let _ = writeln!(out, "latency {} {}", class, m.latencies().of(class));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Opcode;

    #[test]
    fn empty_text_gives_paper_machine() {
        let m = parse_mdes("").unwrap();
        assert_eq!(m, MachineDesc::paper_issue(8));
    }

    #[test]
    fn overrides_apply() {
        let m =
            parse_mdes("# custom\nissue_width 2\nstore_buffer 4\nlatency mem-load 5\n").unwrap();
        assert_eq!(m.issue_width(), 2);
        assert_eq!(m.store_buffer_size(), 4);
        assert_eq!(m.latency(Opcode::LdW), 5);
        assert_eq!(m.latency(Opcode::FDiv), 10, "defaults kept");
    }

    #[test]
    fn roundtrip_print_parse() {
        let m = MachineDesc::builder()
            .issue_width(4)
            .branches_per_cycle(2)
            .int_regs(32)
            .fp_regs(16)
            .store_buffer_size(12)
            .latencies(LatencyTable::paper().with(OpClass::FpMul, 7))
            .build();
        let text = print_mdes(&m);
        let back = parse_mdes(&text).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_mdes("issue_width 4\nfrobnicate 9\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("frobnicate"));
        let e = parse_mdes("latency warp-drive 3\n").unwrap_err();
        assert!(e.message.contains("warp-drive"));
        let e = parse_mdes("latency int-alu 0\n").unwrap_err();
        assert!(e.message.contains("at least 1"));
        let e = parse_mdes("issue_width 4 5\n").unwrap_err();
        assert!(e.message.contains("trailing"));
        let e = parse_mdes("issue_width\n").unwrap_err();
        assert!(e.message.contains("needs a value"));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let m = parse_mdes("\n# full comment\nissue_width 16 # trailing comment\n\n").unwrap();
        assert_eq!(m.issue_width(), 16);
    }
}
