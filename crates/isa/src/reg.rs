//! Architectural registers.

use std::fmt;

/// The two architectural register classes of the paper's machine
/// (64 integer and 64 floating-point registers, paper §5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RegClass {
    /// Integer register file (`r0`..`r63`). `r0` is hardwired to zero.
    Int,
    /// Floating-point register file (`f0`..`f63`).
    Fp,
}

impl fmt::Display for RegClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegClass::Int => write!(f, "int"),
            RegClass::Fp => write!(f, "fp"),
        }
    }
}

/// An architectural register: a class plus an index.
///
/// Indices above the machine's architectural count (64 per class on the
/// paper's machine) are *virtual* registers used by the scheduler's renaming
/// transformations before register allocation; the simulator sizes its
/// register file to the largest index actually used so that pre-allocation
/// code remains executable.
///
/// Integer register 0 ([`Reg::ZERO`]) is hardwired to zero: writes to it are
/// discarded and its exception tag can never be set. The paper uses exactly
/// this property to encode `check_exception` as a move to `r0` (§3.2).
///
/// # Examples
///
/// ```
/// use sentinel_isa::{Reg, RegClass};
///
/// let r4 = Reg::int(4);
/// assert_eq!(r4.class(), RegClass::Int);
/// assert_eq!(r4.to_string(), "r4");
/// assert!(Reg::ZERO.is_zero());
/// assert_eq!(Reg::fp(2).to_string(), "f2");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg {
    class: RegClass,
    index: u16,
}

impl Reg {
    /// The hardwired-zero integer register `r0`.
    pub const ZERO: Reg = Reg {
        class: RegClass::Int,
        index: 0,
    };

    /// Creates an integer register `r<index>`.
    pub const fn int(index: u16) -> Reg {
        Reg {
            class: RegClass::Int,
            index,
        }
    }

    /// Creates a floating-point register `f<index>`.
    pub const fn fp(index: u16) -> Reg {
        Reg {
            class: RegClass::Fp,
            index,
        }
    }

    /// Returns the register class.
    pub fn class(self) -> RegClass {
        self.class
    }

    /// Returns the index within the class.
    pub fn index(self) -> u16 {
        self.index
    }

    /// Returns `true` if this is the hardwired-zero register `r0`.
    pub fn is_zero(self) -> bool {
        self == Reg::ZERO
    }

    /// Returns `true` for an integer register.
    pub fn is_int(self) -> bool {
        self.class == RegClass::Int
    }

    /// Returns `true` for a floating-point register.
    pub fn is_fp(self) -> bool {
        self.class == RegClass::Fp
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.class {
            RegClass::Int => write!(f, "r{}", self.index),
            RegClass::Fp => write!(f, "f{}", self.index),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_register_identity() {
        assert!(Reg::ZERO.is_zero());
        assert!(Reg::int(0).is_zero());
        assert!(!Reg::int(1).is_zero());
        // f0 is an ordinary fp register, not the zero register.
        assert!(!Reg::fp(0).is_zero());
    }

    #[test]
    fn class_predicates() {
        assert!(Reg::int(3).is_int());
        assert!(!Reg::int(3).is_fp());
        assert!(Reg::fp(3).is_fp());
        assert_eq!(Reg::fp(3).index(), 3);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Reg::int(63).to_string(), "r63");
        assert_eq!(Reg::fp(0).to_string(), "f0");
        assert_eq!(RegClass::Int.to_string(), "int");
        assert_eq!(RegClass::Fp.to_string(), "fp");
    }

    #[test]
    fn ordering_groups_by_class() {
        // Int sorts before Fp; within a class, by index.
        assert!(Reg::int(63) < Reg::fp(0));
        assert!(Reg::int(1) < Reg::int(2));
    }
}
