//! Binary instruction encoding.
//!
//! The paper's first architectural extension is "an additional bit in the
//! opcode field of an instruction to represent a speculatively executed
//! instruction" (§3.2). This module makes that concrete: a wide
//! (two-64-bit-word) VLIW-style encoding with an explicit **speculative
//! modifier bit**, a 3-bit **boost level** field (§2.3), and a full
//! 64-bit immediate slot (constant-extender style, as wide VLIW encodings
//! provide).
//!
//! Word 0 layout (LSB first):
//!
//! ```text
//! bits  0..6   opcode ordinal
//! bit   6      speculative modifier
//! bits  7..10  boost level (0-7)
//! bits 10..18  dest  operand: [present|class|index(6)]
//! bits 18..26  src1  operand
//! bits 26..34  src2  operand
//! bit  34      has branch target
//! bits 35..63  branch target block id (28 bits)
//! ```
//!
//! Word 1 is the raw 64-bit immediate.
//!
//! Only *architectural* registers (index < 64) are encodable: programs
//! still carrying the scheduler's virtual registers must run register
//! allocation first.

use crate::{BlockId, Insn, InsnId, Opcode, Reg, RegClass};

/// Encoding failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncodeError {
    /// A register index exceeds the 6-bit architectural field (virtual
    /// registers must be allocated before encoding).
    RegisterOutOfRange(Reg),
    /// A branch target block id exceeds the 28-bit field.
    TargetOutOfRange(BlockId),
    /// Boost level exceeds the 3-bit field.
    BoostOutOfRange(u8),
}

impl std::fmt::Display for EncodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EncodeError::RegisterOutOfRange(r) => {
                write!(f, "register {r} does not fit the architectural encoding")
            }
            EncodeError::TargetOutOfRange(b) => write!(f, "branch target {b} out of range"),
            EncodeError::BoostOutOfRange(k) => write!(f, "boost level {k} out of range"),
        }
    }
}

impl std::error::Error for EncodeError {}

/// Decoding failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The opcode ordinal does not name an opcode.
    BadOpcode(u8),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadOpcode(o) => write!(f, "unknown opcode ordinal {o}"),
        }
    }
}

impl std::error::Error for DecodeError {}

fn opcode_ordinal(op: Opcode) -> u64 {
    Opcode::all()
        .iter()
        .position(|o| *o == op)
        .expect("opcode in table") as u64
}

fn encode_operand(r: Option<Reg>) -> Result<u64, EncodeError> {
    match r {
        None => Ok(0),
        Some(r) => {
            if r.index() >= 64 {
                return Err(EncodeError::RegisterOutOfRange(r));
            }
            let class = match r.class() {
                RegClass::Int => 0u64,
                RegClass::Fp => 1u64,
            };
            Ok(0b1000_0000 | (class << 6) | r.index() as u64)
        }
    }
}

fn decode_operand(bits: u64) -> Option<Reg> {
    if bits & 0b1000_0000 == 0 {
        return None;
    }
    let index = (bits & 0x3F) as u16;
    if bits & 0b0100_0000 != 0 {
        Some(Reg::fp(index))
    } else {
        Some(Reg::int(index))
    }
}

/// Encodes one instruction into two 64-bit words.
///
/// # Errors
///
/// See [`EncodeError`]. The instruction id is *not* encoded (it is a
/// compiler-side artifact); decoding yields [`InsnId::UNASSIGNED`].
///
/// # Examples
///
/// ```
/// use sentinel_isa::encode::{decode_insn, encode_insn};
/// use sentinel_isa::{Insn, Reg};
///
/// let ld = Insn::ld_w(Reg::int(1), Reg::int(2), 16).speculated();
/// let words = encode_insn(&ld)?;
/// let back = decode_insn(words)?;
/// assert!(back.speculative);
/// assert_eq!(back.imm, 16);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn encode_insn(insn: &Insn) -> Result<[u64; 2], EncodeError> {
    if insn.boost > 7 {
        return Err(EncodeError::BoostOutOfRange(insn.boost));
    }
    let mut w0 = opcode_ordinal(insn.op);
    debug_assert!(w0 < 64, "opcode table exceeds 6 bits");
    if insn.speculative {
        w0 |= 1 << 6;
    }
    w0 |= (insn.boost as u64) << 7;
    w0 |= encode_operand(insn.dest)? << 10;
    w0 |= encode_operand(insn.src1)? << 18;
    w0 |= encode_operand(insn.src2)? << 26;
    if let Some(t) = insn.target {
        if u64::from(t.0) >= 1 << 28 {
            return Err(EncodeError::TargetOutOfRange(t));
        }
        w0 |= 1 << 34;
        w0 |= u64::from(t.0) << 35;
    }
    Ok([w0, insn.imm as u64])
}

/// Decodes two words into an instruction (id unassigned).
///
/// # Errors
///
/// See [`DecodeError`].
pub fn decode_insn(words: [u64; 2]) -> Result<Insn, DecodeError> {
    let [w0, w1] = words;
    let ordinal = (w0 & 0x3F) as u8;
    let op = *Opcode::all()
        .get(ordinal as usize)
        .ok_or(DecodeError::BadOpcode(ordinal))?;
    let mut insn = Insn::new(op);
    insn.speculative = w0 & (1 << 6) != 0;
    insn.boost = ((w0 >> 7) & 0b111) as u8;
    insn.dest = decode_operand((w0 >> 10) & 0xFF);
    insn.src1 = decode_operand((w0 >> 18) & 0xFF);
    insn.src2 = decode_operand((w0 >> 26) & 0xFF);
    if w0 & (1 << 34) != 0 {
        insn.target = Some(BlockId(((w0 >> 35) & ((1 << 28) - 1)) as u32));
    }
    insn.imm = w1 as i64;
    insn.id = InsnId::UNASSIGNED;
    Ok(insn)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(insn: Insn) -> Insn {
        let words = encode_insn(&insn).expect("encode");
        decode_insn(words).expect("decode")
    }

    fn eq_modulo_id(a: &Insn, b: &Insn) -> bool {
        a.op == b.op
            && a.dest == b.dest
            && a.src1 == b.src1
            && a.src2 == b.src2
            && a.imm == b.imm
            && a.target == b.target
            && a.speculative == b.speculative
            && a.boost == b.boost
    }

    #[test]
    fn roundtrips_every_opcode_shape() {
        let r = Reg::int(5);
        let q = Reg::int(63);
        let fr = Reg::fp(0);
        let fq = Reg::fp(63);
        let samples = vec![
            Insn::nop(),
            Insn::li(r, -1),
            Insn::li(r, i64::MAX),
            Insn::li(r, i64::MIN),
            Insn::fli(fr, 2.5),
            Insn::alu(Opcode::Add, r, q, q),
            Insn::alu(Opcode::FMul, fr, fq, fq),
            Insn::ld_w(r, q, 0x7FFF),
            Insn::st_w(r, q, -8),
            Insn::branch(Opcode::Blt, r, q, BlockId(12345)),
            Insn::jump(BlockId((1 << 28) - 1)),
            Insn::check_exception(r),
            Insn::confirm_store(7),
            Insn::clear_tag(fq),
            Insn::ld_w(r, q, 0).speculated(),
            Insn::st_w(r, q, 0).boosted(7),
            Insn::jsr(),
            Insn::halt(),
        ];
        for s in samples {
            let back = roundtrip(s.clone());
            assert!(eq_modulo_id(&s, &back), "{s} != {back}");
        }
    }

    #[test]
    fn speculative_bit_is_bit_6() {
        let plain = encode_insn(&Insn::ld_w(Reg::int(1), Reg::int(2), 0)).unwrap();
        let spec = encode_insn(&Insn::ld_w(Reg::int(1), Reg::int(2), 0).speculated()).unwrap();
        assert_eq!(
            plain[0] ^ spec[0],
            1 << 6,
            "exactly the modifier bit differs"
        );
        assert_eq!(plain[1], spec[1]);
    }

    #[test]
    fn virtual_registers_rejected() {
        let i = Insn::addi(Reg::int(100), Reg::int(1), 1);
        assert_eq!(
            encode_insn(&i),
            Err(EncodeError::RegisterOutOfRange(Reg::int(100)))
        );
    }

    #[test]
    fn out_of_range_boost_and_target_rejected() {
        let b = Insn::li(Reg::int(1), 0).boosted(8);
        assert_eq!(encode_insn(&b), Err(EncodeError::BoostOutOfRange(8)));
        let j = Insn::jump(BlockId(1 << 28));
        assert_eq!(
            encode_insn(&j),
            Err(EncodeError::TargetOutOfRange(BlockId(1 << 28)))
        );
    }

    #[test]
    fn bad_opcode_rejected() {
        assert_eq!(decode_insn([63, 0]), Err(DecodeError::BadOpcode(63)));
    }

    #[test]
    fn fp_and_int_operand_classes_distinguished() {
        let i = Insn::alu(Opcode::FAdd, Reg::fp(3), Reg::fp(3), Reg::fp(3));
        let back = roundtrip(i.clone());
        assert_eq!(back.dest, Some(Reg::fp(3)));
        let j = Insn::alu(Opcode::Add, Reg::int(3), Reg::int(3), Reg::int(3));
        assert_eq!(roundtrip(j).dest, Some(Reg::int(3)));
    }

    #[test]
    fn fli_bits_survive() {
        for v in [0.0, -0.0, f64::NAN, f64::INFINITY, 1.5e-300] {
            let i = Insn::fli(Reg::fp(1), v);
            let back = roundtrip(i.clone());
            assert_eq!(back.imm, i.imm, "bits of {v}");
        }
    }
}
