//! Instruction set architecture for the sentinel scheduling reproduction.
//!
//! This crate defines the RISC instruction set assumed by the paper
//! *Sentinel Scheduling for VLIW and Superscalar Processors* (Mahlke et al.,
//! ASPLOS 1992): a MIPS-R2000-like load/store ISA extended with
//!
//! * a **speculative modifier** bit on every instruction ([`Insn::speculative`]),
//! * a **`check_exception(reg)`** instruction ([`Opcode::CheckExcept`]) used
//!   as the explicit sentinel for speculated *unprotected* instructions,
//! * a **`confirm_store(index)`** instruction ([`Opcode::ConfirmStore`]) used
//!   as the sentinel for speculative stores (paper §4),
//! * **tag-preserving spill instructions** ([`Opcode::LdTag`] /
//!   [`Opcode::StTag`]) that save and restore a register's data *and*
//!   exception tag without signaling (paper §3.2), and
//! * a **`clear_tag(reg)`** instruction ([`Opcode::ClearTag`]) inserted by the
//!   compiler for possibly-uninitialized registers (paper §3.5).
//!
//! The machine description ([`MachineDesc`]) captures the evaluation
//! parameters of paper §5.1: issue rate, deterministic instruction latencies
//! (paper Table 3), register file sizes, and the store buffer size.
//!
//! # Examples
//!
//! ```
//! use sentinel_isa::{Insn, MachineDesc, Opcode, Reg};
//!
//! let mdes = MachineDesc::paper_issue(8);
//! let load = Insn::ld_w(Reg::int(1), Reg::int(2), 0);
//! assert!(load.op.can_trap());
//! assert_eq!(mdes.latency(load.op), 2); // Table 3: memory load = 2 cycles
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod insn;
mod mdes;
mod opcode;
mod reg;

pub mod encode;
pub mod mdes_file;

pub use insn::{Insn, InsnId};
pub use mdes::{LatencyTable, MachineDesc, MachineDescBuilder};
pub use opcode::{OpClass, Opcode};
pub use reg::{Reg, RegClass};

/// Identifier of a basic block inside a function's layout.
///
/// Branch instructions name their targets by `BlockId`; the program crate
/// resolves textual labels to ids. Blocks are laid out in program order, so
/// the fall-through successor of block `n` is the next block in layout order
/// (not necessarily `n + 1` after transformations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u32);

impl BlockId {
    /// Returns the raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for BlockId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "B{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_id_display_and_index() {
        let b = BlockId(7);
        assert_eq!(b.to_string(), "B7");
        assert_eq!(b.index(), 7);
        assert!(BlockId(1) < BlockId(2));
    }
}
